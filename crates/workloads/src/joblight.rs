//! job-light-shaped benchmark over an IMDB-like schema.
//!
//! The real job-light workload consists of 70 queries, each joining `title`
//! with one to four of the satellite tables (`movie_companies`, `cast_info`,
//! `movie_info`, `movie_info_idx`, `movie_keyword`) on `movie_id`, with
//! simple range/equality predicates. The templates here are generated
//! programmatically with the same structure and the same size distribution.

use crate::generator as gen;
use crate::template::{Benchmark, ParamDomain, ParamOp, PredicateSpec, QueryTemplate};
use qcfe_db::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Satellite tables joinable to `title`.
pub const SATELLITES: [&str; 5] = [
    "movie_companies",
    "cast_info",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
];

/// Base row counts at scale 1.0 (downscaled from the real IMDB sizes by
/// roughly 50x so that scale = 1.0 stays laptop friendly).
fn base_rows(table: &str) -> usize {
    match table {
        "title" => 50_000,
        "movie_companies" => 52_000,
        "cast_info" => 72_000,
        "movie_info" => 60_000,
        "movie_info_idx" => 27_000,
        "movie_keyword" => 45_000,
        _ => 10_000,
    }
}

/// Rows for a table at the given scale.
pub fn rows_at_scale(table: &str, scale: f64) -> usize {
    ((base_rows(table) as f64 * scale) as usize).max(200)
}

/// Build the IMDB-subset catalog used by job-light.
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableBuilder::new("title")
            .column("id", DataType::Int)
            .column("kind_id", DataType::Int)
            .column("production_year", DataType::Int)
            .primary_key("id")
            .index("production_year"),
    );
    c.add_table(
        TableBuilder::new("movie_companies")
            .column("id", DataType::Int)
            .column("movie_id", DataType::Int)
            .column("company_id", DataType::Int)
            .column("company_type_id", DataType::Int)
            .primary_key("id")
            .index("movie_id"),
    );
    c.add_table(
        TableBuilder::new("cast_info")
            .column("id", DataType::Int)
            .column("movie_id", DataType::Int)
            .column("person_id", DataType::Int)
            .column("role_id", DataType::Int)
            .primary_key("id")
            .index("movie_id"),
    );
    c.add_table(
        TableBuilder::new("movie_info")
            .column("id", DataType::Int)
            .column("movie_id", DataType::Int)
            .column("info_type_id", DataType::Int)
            .primary_key("id")
            .index("movie_id"),
    );
    c.add_table(
        TableBuilder::new("movie_info_idx")
            .column("id", DataType::Int)
            .column("movie_id", DataType::Int)
            .column("info_type_id", DataType::Int)
            .primary_key("id")
            .index("movie_id"),
    );
    c.add_table(
        TableBuilder::new("movie_keyword")
            .column("id", DataType::Int)
            .column("movie_id", DataType::Int)
            .column("keyword_id", DataType::Int)
            .primary_key("id")
            .index("movie_id"),
    );
    c
}

/// Generate data for every table at the given scale.
pub fn generate_data(scale: f64, seed: u64) -> Vec<TableData> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_title = rows_at_scale("title", scale);

    let title = TableData::new(vec![
        ColumnVector::Int(gen::key_column(n_title)),
        ColumnVector::Int(gen::int_column(
            &mut rng,
            n_title,
            1,
            7,
            gen::Skew::Zipf(1.0),
        )),
        ColumnVector::Int(gen::int_column(
            &mut rng,
            n_title,
            1880,
            2019,
            gen::Skew::Zipf(0.4),
        )),
    ]);

    let satellite = |rng: &mut StdRng, table: &str, extra_card: i64, extra_skew: gen::Skew| {
        let n = rows_at_scale(table, scale);
        TableData::new(vec![
            ColumnVector::Int(gen::key_column(n)),
            ColumnVector::Int(gen::fk_column(rng, n, n_title, gen::Skew::Zipf(0.7))),
            ColumnVector::Int(gen::int_column(rng, n, 1, extra_card, extra_skew)),
            // fourth column only for tables that have one; added below
        ])
    };

    let movie_companies = {
        let n = rows_at_scale("movie_companies", scale);
        TableData::new(vec![
            ColumnVector::Int(gen::key_column(n)),
            ColumnVector::Int(gen::fk_column(&mut rng, n, n_title, gen::Skew::Zipf(0.7))),
            ColumnVector::Int(gen::int_column(&mut rng, n, 1, 5000, gen::Skew::Zipf(1.0))),
            ColumnVector::Int(gen::int_column(&mut rng, n, 1, 2, gen::Skew::Uniform)),
        ])
    };
    let cast_info = {
        let n = rows_at_scale("cast_info", scale);
        TableData::new(vec![
            ColumnVector::Int(gen::key_column(n)),
            ColumnVector::Int(gen::fk_column(&mut rng, n, n_title, gen::Skew::Zipf(0.7))),
            ColumnVector::Int(gen::int_column(
                &mut rng,
                n,
                1,
                100_000,
                gen::Skew::Zipf(0.9),
            )),
            ColumnVector::Int(gen::int_column(&mut rng, n, 1, 11, gen::Skew::Zipf(0.8))),
        ])
    };
    let movie_info = satellite(&mut rng, "movie_info", 113, gen::Skew::Zipf(1.0));
    let movie_info_idx = satellite(&mut rng, "movie_info_idx", 113, gen::Skew::Zipf(1.0));
    let movie_keyword = {
        let n = rows_at_scale("movie_keyword", scale);
        TableData::new(vec![
            ColumnVector::Int(gen::key_column(n)),
            ColumnVector::Int(gen::fk_column(&mut rng, n, n_title, gen::Skew::Zipf(0.7))),
            ColumnVector::Int(gen::int_column(
                &mut rng,
                n,
                1,
                20_000,
                gen::Skew::Zipf(1.1),
            )),
        ])
    };

    vec![
        title,
        movie_companies,
        cast_info,
        movie_info,
        movie_info_idx,
        movie_keyword,
    ]
}

fn title_year_pred() -> PredicateSpec {
    PredicateSpec::always(
        ColumnRef::new("title", "production_year"),
        ParamOp::Compare(None),
        ParamDomain::IntRange {
            min: 1950,
            max: 2015,
        },
    )
}

fn satellite_pred(table: &str) -> Option<PredicateSpec> {
    let (column, max) = match table {
        "movie_companies" => ("company_type_id", 2),
        "cast_info" => ("role_id", 11),
        "movie_info" | "movie_info_idx" => ("info_type_id", 113),
        "movie_keyword" => ("keyword_id", 20_000),
        _ => return None,
    };
    Some(PredicateSpec::sometimes(
        ColumnRef::new(table, column),
        if table == "movie_keyword" {
            ParamOp::Compare(None)
        } else {
            ParamOp::Eq
        },
        ParamDomain::IntRange { min: 1, max },
        0.7,
    ))
}

/// The 70 job-light-style templates: every non-empty subset of satellites of
/// size 1–4 combined with a few predicate variants, truncated to 70.
pub fn templates() -> Vec<QueryTemplate> {
    let mut out = Vec::new();
    let mut id = 0usize;

    // Enumerate subsets of the 5 satellites with 1..=4 members.
    for mask in 1u32..(1 << SATELLITES.len()) {
        let members: Vec<&str> = SATELLITES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, t)| *t)
            .collect();
        if members.len() > 4 {
            continue;
        }
        // Two predicate variants per join shape: with and without the
        // title.kind_id filter.
        for variant in 0..3 {
            if out.len() >= 70 {
                break;
            }
            id += 1;
            let mut predicates = vec![title_year_pred()];
            if variant >= 1 {
                predicates.push(PredicateSpec::always(
                    ColumnRef::new("title", "kind_id"),
                    ParamOp::Eq,
                    ParamDomain::IntRange { min: 1, max: 7 },
                ));
            }
            if variant == 2 {
                for m in &members {
                    if let Some(p) = satellite_pred(m) {
                        predicates.push(p);
                    }
                }
            }
            let mut tables = vec!["title".to_string()];
            tables.extend(members.iter().map(|m| m.to_string()));
            let joins = members
                .iter()
                .map(|m| {
                    JoinCondition::new(
                        ColumnRef::new("title", "id"),
                        ColumnRef::new(*m, "movie_id"),
                    )
                })
                .collect();
            out.push(QueryTemplate {
                id,
                name: format!("joblight_{id:02}_{}", members.join("_")),
                tables,
                joins,
                predicates,
                group_by: vec![],
                aggregates: vec![Aggregate::CountStar],
                order_by: vec![],
                limit: None,
            });
        }
        if out.len() >= 70 {
            break;
        }
    }
    out
}

/// Build the job-light-style benchmark at a given scale.
pub fn benchmark(scale: f64, seed: u64) -> Benchmark {
    Benchmark {
        name: "job-light".into(),
        catalog: catalog(),
        data: generate_data(scale, seed),
        templates: templates(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn catalog_has_title_and_satellites() {
        let c = catalog();
        assert_eq!(c.table_count(), 6);
        assert!(c.table_by_name("title").is_some());
        for s in SATELLITES {
            let t = c.table_by_name(s).unwrap();
            assert!(
                t.column_index("movie_id").is_some(),
                "{s} must have movie_id"
            );
            assert!(t.has_index(t.column_index("movie_id").unwrap()));
        }
    }

    #[test]
    fn templates_have_job_light_shape() {
        let ts = templates();
        assert_eq!(ts.len(), 70, "job-light has 70 queries");
        for t in &ts {
            assert_eq!(t.tables[0], "title");
            assert_eq!(t.joins.len(), t.tables.len() - 1);
            assert!(t.tables.len() >= 2 && t.tables.len() <= 5);
            assert_eq!(t.aggregates, vec![Aggregate::CountStar]);
        }
        // all join sizes 1..=4 appear
        let sizes: std::collections::HashSet<usize> = ts.iter().map(|t| t.joins.len()).collect();
        assert!(
            sizes.contains(&1) && sizes.contains(&2) && sizes.contains(&3) && sizes.contains(&4)
        );
    }

    #[test]
    fn data_generates_and_queries_execute() {
        let bench = benchmark(0.01, 3);
        assert_eq!(bench.data.len(), 6);
        let db = bench.build_database(DbEnvironment::reference());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for t in bench.templates.iter().step_by(9) {
            let q = t.instantiate(&mut rng);
            let executed = db.execute(&q, &mut rng).expect("query should run");
            assert!(executed.total_ms > 0.0);
            assert!(executed.root.node_count() >= 2 + t.joins.len());
        }
    }
}

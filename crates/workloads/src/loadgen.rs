//! A closed-loop load generator for driving online services with benchmark
//! queries.
//!
//! Each client thread instantiates queries from the benchmark's templates
//! and calls a user-supplied `submit` function synchronously — the next
//! request is only issued once the previous one completed (a closed loop),
//! which is how the serving layer's backpressure is meant to be exercised.
//! The generator is generic over `submit` so this crate stays independent
//! of the serving stack: `qcfe-serve` tests and benches pass a closure that
//! plans the query and calls the service handle.

use crate::template::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Instant;

/// Closed-loop run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Base seed; client `i` draws queries from `seed + i`.
    pub seed: u64,
}

impl ClosedLoopConfig {
    /// Convenience constructor.
    pub fn new(clients: usize, requests_per_client: usize, seed: u64) -> Self {
        ClosedLoopConfig {
            clients,
            requests_per_client,
            seed,
        }
    }
}

/// Aggregate outcome of a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Wall-clock duration of the whole run in seconds.
    pub wall_s: f64,
    /// Successfully answered requests.
    pub completed: usize,
    /// Failed requests.
    pub errors: usize,
    /// Client-observed end-to-end latency of every completed request (ms).
    pub latencies_ms: Vec<f64>,
    /// The value returned by `submit` for every completed request (for an
    /// estimation service: the predicted cost in ms).
    pub estimates: Vec<f64>,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.wall_s
        }
    }

    /// Latency percentile (0–100) over completed requests, in ms.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Mean latency over completed requests, in ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }
}

/// Drive `submit` from `config.clients` closed-loop client threads, each
/// issuing `config.requests_per_client` benchmark queries.
///
/// `submit` receives an instantiated [`crate::template::Benchmark`] query
/// and returns the service's answer, or an error string for failed
/// requests (failures are counted, not retried).
pub fn run_closed_loop<F>(benchmark: &Benchmark, config: &ClosedLoopConfig, submit: F) -> LoadReport
where
    F: Fn(qcfe_db::query::Query) -> Result<f64, String> + Send + Sync,
{
    let results: Mutex<(Vec<f64>, Vec<f64>, usize)> = Mutex::new((Vec::new(), Vec::new(), 0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients {
            let submit = &submit;
            let results = &results;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client as u64));
                let mut latencies = Vec::with_capacity(config.requests_per_client);
                let mut estimates = Vec::with_capacity(config.requests_per_client);
                let mut errors = 0usize;
                for _ in 0..config.requests_per_client {
                    let query = benchmark.random_query(&mut rng);
                    let issued = Instant::now();
                    match submit(query) {
                        Ok(estimate) => {
                            latencies.push(issued.elapsed().as_secs_f64() * 1e3);
                            estimates.push(estimate);
                        }
                        Err(_) => errors += 1,
                    }
                }
                let mut all = results.lock().expect("loadgen results poisoned");
                all.0.extend(latencies);
                all.1.extend(estimates);
                all.2 += errors;
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let (latencies_ms, estimates, errors) = results.into_inner().expect("loadgen results poisoned");
    LoadReport {
        wall_s,
        completed: latencies_ms.len(),
        errors,
        latencies_ms,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchmarkKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn closed_loop_issues_the_configured_request_count() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let served = AtomicUsize::new(0);
        let config = ClosedLoopConfig::new(4, 25, 7);
        let report = run_closed_loop(&bench, &config, |query| {
            served.fetch_add(1, Ordering::Relaxed);
            // every template produces a plannable query object
            assert!(!query.tables.is_empty());
            Ok(1.5)
        });
        assert_eq!(served.load(Ordering::Relaxed), 100);
        assert_eq!(report.completed, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.estimates.len(), 100);
        assert!(report.estimates.iter().all(|&e| e == 1.5));
        assert!(report.throughput_qps() > 0.0);
        assert!(report.mean_latency_ms() >= 0.0);
        assert!(report.latency_percentile_ms(50.0) <= report.latency_percentile_ms(99.0));
    }

    #[test]
    fn errors_are_counted_not_retried() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let calls = AtomicUsize::new(0);
        let config = ClosedLoopConfig::new(2, 10, 3);
        let report = run_closed_loop(&bench, &config, |_| {
            if calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                Err("boom".into())
            } else {
                Ok(1.0)
            }
        });
        assert_eq!(report.completed + report.errors, 20);
        assert_eq!(report.errors, 10);
    }

    #[test]
    fn empty_report_percentiles_are_zero() {
        let report = LoadReport {
            wall_s: 0.0,
            completed: 0,
            errors: 0,
            latencies_ms: Vec::new(),
            estimates: Vec::new(),
        };
        assert_eq!(report.throughput_qps(), 0.0);
        assert_eq!(report.latency_percentile_ms(99.0), 0.0);
        assert_eq!(report.mean_latency_ms(), 0.0);
    }
}

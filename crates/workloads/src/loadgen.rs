//! A closed-loop load generator for driving online services with benchmark
//! queries.
//!
//! Each client thread instantiates queries from the benchmark's templates
//! and calls a user-supplied `submit` function synchronously — the next
//! request is only issued once the previous one completed (a closed loop),
//! which is how the serving layer's backpressure is meant to be exercised.
//! The generator is generic over `submit` so this crate stays independent
//! of the serving stack: `qcfe-serve` tests and benches pass a closure that
//! plans the query and calls the service handle.
//!
//! [`run_feedback_loop`] is the refinement-aware variant: its closure
//! reports an *observed* execution label next to every estimate (typically
//! by executing the query on the simulator and streaming the
//! `ExecutedQuery` back through the gateway's `record_execution`), and the
//! resulting [`FeedbackReport`] can score estimate accuracy — the
//! before/after evidence of the paper's Table VII refinement loop.

use crate::template::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Instant;

/// Closed-loop run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Base seed; client `i` draws queries from `seed + i`.
    pub seed: u64,
}

impl ClosedLoopConfig {
    /// Convenience constructor.
    pub fn new(clients: usize, requests_per_client: usize, seed: u64) -> Self {
        ClosedLoopConfig {
            clients,
            requests_per_client,
            seed,
        }
    }
}

/// Aggregate outcome of a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Wall-clock duration of the whole run in seconds.
    pub wall_s: f64,
    /// Successfully answered requests.
    pub completed: usize,
    /// Failed requests.
    pub errors: usize,
    /// Client-observed end-to-end latency of every completed request (ms).
    pub latencies_ms: Vec<f64>,
    /// The value returned by `submit` for every completed request (for an
    /// estimation service: the predicted cost in ms).
    pub estimates: Vec<f64>,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.wall_s
        }
    }

    /// Latency percentile (0–100) over completed requests, in ms.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Mean latency over completed requests, in ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }
}

/// Drive `submit` from `config.clients` closed-loop client threads, each
/// issuing `config.requests_per_client` benchmark queries.
///
/// `submit` receives an instantiated [`crate::template::Benchmark`] query
/// and returns the service's answer, or an error string for failed
/// requests (failures are counted, not retried).
pub fn run_closed_loop<F>(benchmark: &Benchmark, config: &ClosedLoopConfig, submit: F) -> LoadReport
where
    F: Fn(qcfe_db::query::Query) -> Result<f64, String> + Send + Sync,
{
    let results: Mutex<(Vec<f64>, Vec<f64>, usize)> = Mutex::new((Vec::new(), Vec::new(), 0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients {
            let submit = &submit;
            let results = &results;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client as u64));
                let mut latencies = Vec::with_capacity(config.requests_per_client);
                let mut estimates = Vec::with_capacity(config.requests_per_client);
                let mut errors = 0usize;
                for _ in 0..config.requests_per_client {
                    let query = benchmark.random_query(&mut rng);
                    let issued = Instant::now();
                    match submit(query) {
                        Ok(estimate) => {
                            latencies.push(issued.elapsed().as_secs_f64() * 1e3);
                            estimates.push(estimate);
                        }
                        Err(_) => errors += 1,
                    }
                }
                let mut all = results.lock().expect("loadgen results poisoned");
                all.0.extend(latencies);
                all.1.extend(estimates);
                all.2 += errors;
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let (latencies_ms, estimates, errors) = results.into_inner().expect("loadgen results poisoned");
    LoadReport {
        wall_s,
        completed: latencies_ms.len(),
        errors,
        latencies_ms,
        estimates,
    }
}

/// One completed request of a feedback-driven closed loop: what the
/// service estimated and what the execution actually cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedEstimate {
    /// The service's predicted latency (ms).
    pub estimate_ms: f64,
    /// The observed (executed) latency the estimate is judged against (ms).
    pub observed_ms: f64,
}

impl ObservedEstimate {
    /// The pair's q-error: `max(estimate/observed, observed/estimate)`,
    /// ≥ 1, with 1 meaning a perfect estimate. Non-positive values clamp
    /// to a tiny floor so degenerate labels cannot produce infinities.
    pub fn q_error(&self) -> f64 {
        let estimate = self.estimate_ms.max(1e-9);
        let observed = self.observed_ms.max(1e-9);
        (estimate / observed).max(observed / estimate)
    }
}

/// Aggregate outcome of a feedback-driven closed-loop run
/// ([`run_feedback_loop`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackReport {
    /// Wall-clock duration of the whole run in seconds.
    pub wall_s: f64,
    /// Failed requests.
    pub errors: usize,
    /// Estimate/observation pair of every completed request.
    pub pairs: Vec<ObservedEstimate>,
}

impl FeedbackReport {
    /// Successfully answered requests.
    pub fn completed(&self) -> usize {
        self.pairs.len()
    }

    /// Completed requests per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / self.wall_s
        }
    }

    /// Mean q-error across completed requests (0 when nothing completed).
    pub fn mean_q_error(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs
            .iter()
            .map(ObservedEstimate::q_error)
            .sum::<f64>()
            / self.pairs.len() as f64
    }

    /// Median q-error across completed requests (0 when nothing completed).
    pub fn median_q_error(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let mut qs: Vec<f64> = self.pairs.iter().map(ObservedEstimate::q_error).collect();
        qs.sort_by(|a, b| a.total_cmp(b));
        qs[qs.len() / 2]
    }
}

/// Drive a feedback-aware closed loop: like [`run_closed_loop`], but the
/// `submit` closure returns an [`ObservedEstimate`] — the estimate *and*
/// the observed execution label — so the report can score accuracy.
///
/// The query stream is the same seeded draw as [`run_closed_loop`] with
/// the same `config`, so two runs with identical seeds submit identical
/// queries: measure estimate error under a transferred snapshot, stream
/// the labels through the gateway's feedback path, re-run with the same
/// seed, and the error delta is the refinement effect, nothing else.
pub fn run_feedback_loop<F>(
    benchmark: &Benchmark,
    config: &ClosedLoopConfig,
    submit: F,
) -> FeedbackReport
where
    F: Fn(qcfe_db::query::Query) -> Result<ObservedEstimate, String> + Send + Sync,
{
    let results: Mutex<(Vec<ObservedEstimate>, usize)> = Mutex::new((Vec::new(), 0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients {
            let submit = &submit;
            let results = &results;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client as u64));
                let mut pairs = Vec::with_capacity(config.requests_per_client);
                let mut errors = 0usize;
                for _ in 0..config.requests_per_client {
                    let query = benchmark.random_query(&mut rng);
                    match submit(query) {
                        Ok(pair) => pairs.push(pair),
                        Err(_) => errors += 1,
                    }
                }
                let mut all = results.lock().expect("loadgen results poisoned");
                all.0.extend(pairs);
                all.1 += errors;
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let (pairs, errors) = results.into_inner().expect("loadgen results poisoned");
    FeedbackReport {
        wall_s,
        errors,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchmarkKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn closed_loop_issues_the_configured_request_count() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let served = AtomicUsize::new(0);
        let config = ClosedLoopConfig::new(4, 25, 7);
        let report = run_closed_loop(&bench, &config, |query| {
            served.fetch_add(1, Ordering::Relaxed);
            // every template produces a plannable query object
            assert!(!query.tables.is_empty());
            Ok(1.5)
        });
        assert_eq!(served.load(Ordering::Relaxed), 100);
        assert_eq!(report.completed, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.estimates.len(), 100);
        assert!(report.estimates.iter().all(|&e| e == 1.5));
        assert!(report.throughput_qps() > 0.0);
        assert!(report.mean_latency_ms() >= 0.0);
        assert!(report.latency_percentile_ms(50.0) <= report.latency_percentile_ms(99.0));
    }

    #[test]
    fn errors_are_counted_not_retried() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let calls = AtomicUsize::new(0);
        let config = ClosedLoopConfig::new(2, 10, 3);
        let report = run_closed_loop(&bench, &config, |_| {
            if calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                Err("boom".into())
            } else {
                Ok(1.0)
            }
        });
        assert_eq!(report.completed + report.errors, 20);
        assert_eq!(report.errors, 10);
    }

    #[test]
    fn feedback_loop_scores_estimates_against_observations() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let config = ClosedLoopConfig::new(2, 20, 11);
        let calls = AtomicUsize::new(0);
        let report = run_feedback_loop(&bench, &config, |query| {
            assert!(!query.tables.is_empty());
            // Alternate a perfect estimate with a 2x overestimate.
            if calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                Ok(ObservedEstimate {
                    estimate_ms: 4.0,
                    observed_ms: 4.0,
                })
            } else {
                Ok(ObservedEstimate {
                    estimate_ms: 8.0,
                    observed_ms: 4.0,
                })
            }
        });
        assert_eq!(report.completed(), 40);
        assert_eq!(report.errors, 0);
        assert!((report.mean_q_error() - 1.5).abs() < 1e-9);
        assert!(report.median_q_error() >= 1.0);
        assert!(report.throughput_qps() > 0.0);
        // q-error basics: symmetric, ≥ 1, exact on perfect pairs.
        let perfect = ObservedEstimate {
            estimate_ms: 3.0,
            observed_ms: 3.0,
        };
        assert_eq!(perfect.q_error(), 1.0);
        let over = ObservedEstimate {
            estimate_ms: 9.0,
            observed_ms: 3.0,
        };
        let under = ObservedEstimate {
            estimate_ms: 3.0,
            observed_ms: 9.0,
        };
        assert_eq!(over.q_error(), under.q_error());
    }

    #[test]
    fn feedback_loop_repeats_the_query_stream_for_equal_seeds() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let config = ClosedLoopConfig::new(1, 15, 23);
        let collect = |_tag: &str| {
            let seen = Mutex::new(Vec::new());
            run_feedback_loop(&bench, &config, |query| {
                seen.lock().unwrap().push(format!("{query:?}"));
                Ok(ObservedEstimate {
                    estimate_ms: 1.0,
                    observed_ms: 1.0,
                })
            });
            seen.into_inner().unwrap()
        };
        assert_eq!(
            collect("a"),
            collect("b"),
            "same seed must submit the same queries — the before/after \
             error comparison depends on it"
        );
    }

    #[test]
    fn empty_feedback_report_is_zeroed() {
        let report = FeedbackReport {
            wall_s: 0.0,
            errors: 0,
            pairs: Vec::new(),
        };
        assert_eq!(report.completed(), 0);
        assert_eq!(report.mean_q_error(), 0.0);
        assert_eq!(report.median_q_error(), 0.0);
        assert_eq!(report.throughput_qps(), 0.0);
    }

    #[test]
    fn empty_report_percentiles_are_zero() {
        let report = LoadReport {
            wall_s: 0.0,
            completed: 0,
            errors: 0,
            latencies_ms: Vec::new(),
            estimates: Vec::new(),
        };
        assert_eq!(report.throughput_qps(), 0.0);
        assert_eq!(report.latency_percentile_ms(99.0), 0.0);
        assert_eq!(report.mean_latency_ms(), 0.0);
    }
}

//! A closed-loop load generator for driving online services with benchmark
//! queries.
//!
//! Each client thread instantiates queries from the benchmark's templates
//! and calls a user-supplied `submit` function synchronously — the next
//! request is only issued once the previous one completed (a closed loop),
//! which is how the serving layer's backpressure is meant to be exercised.
//! The generator is generic over `submit` so this crate stays independent
//! of the serving stack: `qcfe-serve` tests and benches pass a closure that
//! plans the query and calls the service handle.
//!
//! [`run_feedback_loop`] is the refinement-aware variant: its closure
//! reports an *observed* execution label next to every estimate (typically
//! by executing the query on the simulator and streaming the
//! `ExecutedQuery` back through the gateway's `record_execution`), and the
//! resulting [`FeedbackReport`] can score estimate accuracy — the
//! before/after evidence of the paper's Table VII refinement loop.
//!
//! [`run_multi_tenant_mix`] drives several tenant lanes at once — the
//! adversarial shape a multi-tenant scheduler is judged under: one greedy
//! lane flooding without deadlines next to compliant lanes carrying them.
//! Failures come back typed ([`SubmitError`]) so the per-lane
//! [`TenantLoadReport`] can separate quota sheds from deadline drops.

use crate::template::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Closed-loop run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Base seed; client `i` draws queries from `seed + i`.
    pub seed: u64,
}

impl ClosedLoopConfig {
    /// Convenience constructor.
    pub fn new(clients: usize, requests_per_client: usize, seed: u64) -> Self {
        ClosedLoopConfig {
            clients,
            requests_per_client,
            seed,
        }
    }
}

/// Aggregate outcome of a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Wall-clock duration of the whole run in seconds.
    pub wall_s: f64,
    /// Successfully answered requests.
    pub completed: usize,
    /// Failed requests.
    pub errors: usize,
    /// Client-observed end-to-end latency of every completed request (ms).
    pub latencies_ms: Vec<f64>,
    /// The value returned by `submit` for every completed request (for an
    /// estimation service: the predicted cost in ms).
    pub estimates: Vec<f64>,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.wall_s
        }
    }

    /// Latency percentile (0–100) over completed requests, in ms.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Mean latency over completed requests, in ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }
}

/// Drive `submit` from `config.clients` closed-loop client threads, each
/// issuing `config.requests_per_client` benchmark queries.
///
/// `submit` receives an instantiated [`crate::template::Benchmark`] query
/// and returns the service's answer, or an error string for failed
/// requests (failures are counted, not retried).
pub fn run_closed_loop<F>(benchmark: &Benchmark, config: &ClosedLoopConfig, submit: F) -> LoadReport
where
    F: Fn(qcfe_db::query::Query) -> Result<f64, String> + Send + Sync,
{
    let results: Mutex<(Vec<f64>, Vec<f64>, usize)> = Mutex::new((Vec::new(), Vec::new(), 0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients {
            let submit = &submit;
            let results = &results;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client as u64));
                let mut latencies = Vec::with_capacity(config.requests_per_client);
                let mut estimates = Vec::with_capacity(config.requests_per_client);
                let mut errors = 0usize;
                for _ in 0..config.requests_per_client {
                    let query = benchmark.random_query(&mut rng);
                    let issued = Instant::now();
                    match submit(query) {
                        Ok(estimate) => {
                            latencies.push(issued.elapsed().as_secs_f64() * 1e3);
                            estimates.push(estimate);
                        }
                        Err(_) => errors += 1,
                    }
                }
                let mut all = results.lock().expect("loadgen results poisoned");
                all.0.extend(latencies);
                all.1.extend(estimates);
                all.2 += errors;
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let (latencies_ms, estimates, errors) = results.into_inner().expect("loadgen results poisoned");
    LoadReport {
        wall_s,
        completed: latencies_ms.len(),
        errors,
        latencies_ms,
        estimates,
    }
}

/// Drive `submit` from `clients` closed-loop threads for (at least)
/// `duration` of wall clock, instead of a fixed request count.
///
/// This is the shape failure drills want: the load keeps flowing *while*
/// something is done to the serving side (a replica killed, a config
/// flipped), and the report captures every request issued across the
/// event. Each client checks the clock between requests, so the run ends
/// one in-flight request after the duration elapses — `submit` must
/// therefore fail typed rather than hang for the bound to hold.
pub fn run_timed_loop<F>(
    benchmark: &Benchmark,
    clients: usize,
    duration: Duration,
    seed: u64,
    submit: F,
) -> LoadReport
where
    F: Fn(qcfe_db::query::Query) -> Result<f64, String> + Send + Sync,
{
    let results: Mutex<(Vec<f64>, Vec<f64>, usize)> = Mutex::new((Vec::new(), Vec::new(), 0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let submit = &submit;
            let results = &results;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(client as u64));
                let mut latencies = Vec::new();
                let mut estimates = Vec::new();
                let mut errors = 0usize;
                while start.elapsed() < duration {
                    let query = benchmark.random_query(&mut rng);
                    let issued = Instant::now();
                    match submit(query) {
                        Ok(estimate) => {
                            latencies.push(issued.elapsed().as_secs_f64() * 1e3);
                            estimates.push(estimate);
                        }
                        Err(_) => errors += 1,
                    }
                }
                let mut all = results.lock().expect("loadgen results poisoned");
                all.0.extend(latencies);
                all.1.extend(estimates);
                all.2 += errors;
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let (latencies_ms, estimates, errors) = results.into_inner().expect("loadgen results poisoned");
    LoadReport {
        wall_s,
        completed: latencies_ms.len(),
        errors,
        latencies_ms,
        estimates,
    }
}

/// One tenant's lane in a [`run_multi_tenant_mix`] run.
///
/// The tenant id is a plain `u32` (this crate sits below the serving
/// stack); the serving layer's `TenantId` wraps the same integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLoad {
    /// The tenant the lane's requests are accounted to (0 = anonymous).
    pub tenant: u32,
    /// Concurrent closed-loop client threads in this lane.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// The deadline every request of the lane carries (`None` for a
    /// greedy, deadline-less lane).
    pub deadline: Option<Duration>,
}

impl TenantLoad {
    /// A greedy lane: no deadline, as fast as the closed loop allows.
    pub fn greedy(tenant: u32, clients: usize, requests_per_client: usize) -> Self {
        TenantLoad {
            tenant,
            clients,
            requests_per_client,
            deadline: None,
        }
    }

    /// A compliant lane whose every request carries `deadline`.
    pub fn compliant(
        tenant: u32,
        clients: usize,
        requests_per_client: usize,
        deadline: Duration,
    ) -> Self {
        TenantLoad {
            tenant,
            clients,
            requests_per_client,
            deadline: Some(deadline),
        }
    }
}

/// A typed submission failure, so reports can attribute each error to the
/// scheduler decision that caused it instead of folding everything into
/// one opaque count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The request was shed — queue or tenant quota full.
    Shed,
    /// The request's deadline expired before an answer.
    DeadlineExceeded,
    /// Any other failure, rendered.
    Other(String),
}

/// Per-tenant outcome of a [`run_multi_tenant_mix`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLoadReport {
    /// The lane's tenant id.
    pub tenant: u32,
    /// Requests the lane attempted (clients × requests_per_client).
    pub attempted: usize,
    /// Successfully answered requests.
    pub completed: usize,
    /// Requests shed by admission (queue or quota full).
    pub shed: usize,
    /// Requests that failed their deadline.
    pub deadline_failures: usize,
    /// Failures that were neither sheds nor deadline drops.
    pub other_errors: usize,
    /// Client-observed end-to-end latency of every completed request (ms).
    pub latencies_ms: Vec<f64>,
}

impl TenantLoadReport {
    /// Latency percentile (0–100) over the lane's completed requests, ms.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Completed ÷ attempted — the lane's goodput fraction.
    pub fn goodput(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.completed as f64 / self.attempted as f64
        }
    }
}

/// Aggregate outcome of a [`run_multi_tenant_mix`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantReport {
    /// Wall-clock duration of the whole mixed run in seconds.
    pub wall_s: f64,
    /// One report per lane, in the order the lanes were given.
    pub lanes: Vec<TenantLoadReport>,
}

impl MultiTenantReport {
    /// The lane report for `tenant` (first match).
    pub fn lane(&self, tenant: u32) -> Option<&TenantLoadReport> {
        self.lanes.iter().find(|lane| lane.tenant == tenant)
    }
}

/// Drive every lane's closed-loop clients *concurrently* against one
/// service and report per-lane outcomes.
///
/// `submit` receives the lane's tenant id, the lane's deadline and an
/// instantiated benchmark query; it returns the estimate or a typed
/// [`SubmitError`]. Client seeds are derived deterministically from
/// `seed`, the lane index and the client index, so two runs over the same
/// lanes submit the same queries — the property the scheduling benchmark's
/// FIFO-versus-EDF comparison rests on.
pub fn run_multi_tenant_mix<F>(
    benchmark: &Benchmark,
    lanes: &[TenantLoad],
    seed: u64,
    submit: F,
) -> MultiTenantReport
where
    F: Fn(u32, Option<Duration>, qcfe_db::query::Query) -> Result<f64, SubmitError> + Send + Sync,
{
    let results: Vec<Mutex<TenantLoadReport>> = lanes
        .iter()
        .map(|lane| {
            Mutex::new(TenantLoadReport {
                tenant: lane.tenant,
                attempted: 0,
                completed: 0,
                shed: 0,
                deadline_failures: 0,
                other_errors: 0,
                latencies_ms: Vec::new(),
            })
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (lane_index, lane) in lanes.iter().enumerate() {
            for client in 0..lane.clients {
                let submit = &submit;
                let results = &results;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        seed.wrapping_add((lane_index as u64) << 32)
                            .wrapping_add(client as u64),
                    );
                    let mut latencies = Vec::with_capacity(lane.requests_per_client);
                    let (mut shed, mut expired, mut other) = (0usize, 0usize, 0usize);
                    for _ in 0..lane.requests_per_client {
                        let query = benchmark.random_query(&mut rng);
                        let issued = Instant::now();
                        match submit(lane.tenant, lane.deadline, query) {
                            Ok(_) => latencies.push(issued.elapsed().as_secs_f64() * 1e3),
                            Err(SubmitError::Shed) => shed += 1,
                            Err(SubmitError::DeadlineExceeded) => expired += 1,
                            Err(SubmitError::Other(_)) => other += 1,
                        }
                    }
                    let mut report = results[lane_index].lock().expect("lane poisoned");
                    report.attempted += lane.requests_per_client;
                    report.completed += latencies.len();
                    report.shed += shed;
                    report.deadline_failures += expired;
                    report.other_errors += other;
                    report.latencies_ms.extend(latencies);
                });
            }
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    MultiTenantReport {
        wall_s,
        lanes: results
            .into_iter()
            .map(|lane| lane.into_inner().expect("lane poisoned"))
            .collect(),
    }
}

/// One completed request of a feedback-driven closed loop: what the
/// service estimated and what the execution actually cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedEstimate {
    /// The service's predicted latency (ms).
    pub estimate_ms: f64,
    /// The observed (executed) latency the estimate is judged against (ms).
    pub observed_ms: f64,
}

impl ObservedEstimate {
    /// The pair's q-error: `max(estimate/observed, observed/estimate)`,
    /// ≥ 1, with 1 meaning a perfect estimate. Non-positive values clamp
    /// to a tiny floor so degenerate labels cannot produce infinities.
    pub fn q_error(&self) -> f64 {
        let estimate = self.estimate_ms.max(1e-9);
        let observed = self.observed_ms.max(1e-9);
        (estimate / observed).max(observed / estimate)
    }
}

/// Aggregate outcome of a feedback-driven closed-loop run
/// ([`run_feedback_loop`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackReport {
    /// Wall-clock duration of the whole run in seconds.
    pub wall_s: f64,
    /// Failed requests.
    pub errors: usize,
    /// Estimate/observation pair of every completed request.
    pub pairs: Vec<ObservedEstimate>,
}

impl FeedbackReport {
    /// Successfully answered requests.
    pub fn completed(&self) -> usize {
        self.pairs.len()
    }

    /// Completed requests per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / self.wall_s
        }
    }

    /// Mean q-error across completed requests (0 when nothing completed).
    pub fn mean_q_error(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs
            .iter()
            .map(ObservedEstimate::q_error)
            .sum::<f64>()
            / self.pairs.len() as f64
    }

    /// Median q-error across completed requests (0 when nothing completed).
    pub fn median_q_error(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let mut qs: Vec<f64> = self.pairs.iter().map(ObservedEstimate::q_error).collect();
        qs.sort_by(|a, b| a.total_cmp(b));
        qs[qs.len() / 2]
    }
}

/// Drive a feedback-aware closed loop: like [`run_closed_loop`], but the
/// `submit` closure returns an [`ObservedEstimate`] — the estimate *and*
/// the observed execution label — so the report can score accuracy.
///
/// The query stream is the same seeded draw as [`run_closed_loop`] with
/// the same `config`, so two runs with identical seeds submit identical
/// queries: measure estimate error under a transferred snapshot, stream
/// the labels through the gateway's feedback path, re-run with the same
/// seed, and the error delta is the refinement effect, nothing else.
pub fn run_feedback_loop<F>(
    benchmark: &Benchmark,
    config: &ClosedLoopConfig,
    submit: F,
) -> FeedbackReport
where
    F: Fn(qcfe_db::query::Query) -> Result<ObservedEstimate, String> + Send + Sync,
{
    let results: Mutex<(Vec<ObservedEstimate>, usize)> = Mutex::new((Vec::new(), 0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients {
            let submit = &submit;
            let results = &results;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client as u64));
                let mut pairs = Vec::with_capacity(config.requests_per_client);
                let mut errors = 0usize;
                for _ in 0..config.requests_per_client {
                    let query = benchmark.random_query(&mut rng);
                    match submit(query) {
                        Ok(pair) => pairs.push(pair),
                        Err(_) => errors += 1,
                    }
                }
                let mut all = results.lock().expect("loadgen results poisoned");
                all.0.extend(pairs);
                all.1 += errors;
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let (pairs, errors) = results.into_inner().expect("loadgen results poisoned");
    FeedbackReport {
        wall_s,
        errors,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchmarkKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn closed_loop_issues_the_configured_request_count() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let served = AtomicUsize::new(0);
        let config = ClosedLoopConfig::new(4, 25, 7);
        let report = run_closed_loop(&bench, &config, |query| {
            served.fetch_add(1, Ordering::Relaxed);
            // every template produces a plannable query object
            assert!(!query.tables.is_empty());
            Ok(1.5)
        });
        assert_eq!(served.load(Ordering::Relaxed), 100);
        assert_eq!(report.completed, 100);
        assert_eq!(report.errors, 0);
        assert_eq!(report.estimates.len(), 100);
        assert!(report.estimates.iter().all(|&e| e == 1.5));
        assert!(report.throughput_qps() > 0.0);
        assert!(report.mean_latency_ms() >= 0.0);
        assert!(report.latency_percentile_ms(50.0) <= report.latency_percentile_ms(99.0));
    }

    #[test]
    fn errors_are_counted_not_retried() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let calls = AtomicUsize::new(0);
        let config = ClosedLoopConfig::new(2, 10, 3);
        let report = run_closed_loop(&bench, &config, |_| {
            if calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                Err("boom".into())
            } else {
                Ok(1.0)
            }
        });
        assert_eq!(report.completed + report.errors, 20);
        assert_eq!(report.errors, 10);
    }

    #[test]
    fn feedback_loop_scores_estimates_against_observations() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let config = ClosedLoopConfig::new(2, 20, 11);
        let calls = AtomicUsize::new(0);
        let report = run_feedback_loop(&bench, &config, |query| {
            assert!(!query.tables.is_empty());
            // Alternate a perfect estimate with a 2x overestimate.
            if calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                Ok(ObservedEstimate {
                    estimate_ms: 4.0,
                    observed_ms: 4.0,
                })
            } else {
                Ok(ObservedEstimate {
                    estimate_ms: 8.0,
                    observed_ms: 4.0,
                })
            }
        });
        assert_eq!(report.completed(), 40);
        assert_eq!(report.errors, 0);
        assert!((report.mean_q_error() - 1.5).abs() < 1e-9);
        assert!(report.median_q_error() >= 1.0);
        assert!(report.throughput_qps() > 0.0);
        // q-error basics: symmetric, ≥ 1, exact on perfect pairs.
        let perfect = ObservedEstimate {
            estimate_ms: 3.0,
            observed_ms: 3.0,
        };
        assert_eq!(perfect.q_error(), 1.0);
        let over = ObservedEstimate {
            estimate_ms: 9.0,
            observed_ms: 3.0,
        };
        let under = ObservedEstimate {
            estimate_ms: 3.0,
            observed_ms: 9.0,
        };
        assert_eq!(over.q_error(), under.q_error());
    }

    #[test]
    fn feedback_loop_repeats_the_query_stream_for_equal_seeds() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let config = ClosedLoopConfig::new(1, 15, 23);
        let collect = |_tag: &str| {
            let seen = Mutex::new(Vec::new());
            run_feedback_loop(&bench, &config, |query| {
                seen.lock().unwrap().push(format!("{query:?}"));
                Ok(ObservedEstimate {
                    estimate_ms: 1.0,
                    observed_ms: 1.0,
                })
            });
            seen.into_inner().unwrap()
        };
        assert_eq!(
            collect("a"),
            collect("b"),
            "same seed must submit the same queries — the before/after \
             error comparison depends on it"
        );
    }

    #[test]
    fn multi_tenant_mix_attributes_outcomes_per_lane() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let lanes = [
            TenantLoad::greedy(1, 2, 10),
            TenantLoad::compliant(2, 1, 10, Duration::from_millis(5)),
        ];
        let report = run_multi_tenant_mix(&bench, &lanes, 17, |tenant, deadline, query| {
            assert!(!query.tables.is_empty());
            match tenant {
                // The greedy lane carries no deadline and gets shed half
                // the time.
                1 => {
                    assert_eq!(deadline, None);
                    if query.limit.unwrap_or(0) % 2 == 0 {
                        Err(SubmitError::Shed)
                    } else {
                        Ok(1.0)
                    }
                }
                // The compliant lane carries its deadline and loses one
                // request to it.
                2 => {
                    assert_eq!(deadline, Some(Duration::from_millis(5)));
                    Ok(2.0)
                }
                other => Err(SubmitError::Other(format!("unknown tenant {other}"))),
            }
        });
        assert_eq!(report.lanes.len(), 2);
        let greedy = report.lane(1).expect("greedy lane");
        assert_eq!(greedy.attempted, 20);
        assert_eq!(greedy.completed + greedy.shed, 20);
        assert!(greedy.shed > 0, "some greedy requests must be shed");
        assert_eq!(greedy.deadline_failures, 0);
        let compliant = report.lane(2).expect("compliant lane");
        assert_eq!(compliant.attempted, 10);
        assert_eq!(compliant.completed, 10);
        assert!((compliant.goodput() - 1.0).abs() < 1e-12);
        assert!(compliant.latency_percentile_ms(99.0) >= compliant.latency_percentile_ms(50.0));
    }

    #[test]
    fn multi_tenant_mix_repeats_queries_for_equal_seeds() {
        let bench = BenchmarkKind::Sysbench.build(0.001, 1);
        let lanes = [TenantLoad::greedy(3, 1, 8)];
        let collect = || {
            let seen = Mutex::new(Vec::new());
            run_multi_tenant_mix(&bench, &lanes, 29, |_, _, query| {
                seen.lock().unwrap().push(format!("{query:?}"));
                Ok(1.0)
            });
            seen.into_inner().unwrap()
        };
        assert_eq!(
            collect(),
            collect(),
            "same seed must submit the same queries — the FIFO-vs-EDF \
             benchmark comparison depends on it"
        );
    }

    #[test]
    fn empty_feedback_report_is_zeroed() {
        let report = FeedbackReport {
            wall_s: 0.0,
            errors: 0,
            pairs: Vec::new(),
        };
        assert_eq!(report.completed(), 0);
        assert_eq!(report.mean_q_error(), 0.0);
        assert_eq!(report.median_q_error(), 0.0);
        assert_eq!(report.throughput_qps(), 0.0);
    }

    #[test]
    fn empty_report_percentiles_are_zero() {
        let report = LoadReport {
            wall_s: 0.0,
            completed: 0,
            errors: 0,
            latencies_ms: Vec::new(),
            estimates: Vec::new(),
        };
        assert_eq!(report.throughput_qps(), 0.0);
        assert_eq!(report.latency_percentile_ms(99.0), 0.0);
        assert_eq!(report.mean_latency_ms(), 0.0);
    }
}

//! Sysbench-style OLTP benchmark: a single `sbtest1` table and the
//! `oltp_read_only` query mix (point selects, simple/sum/order/distinct
//! range queries).

use crate::generator as gen;
use crate::template::{Benchmark, ParamDomain, ParamOp, PredicateSpec, QueryTemplate};
use qcfe_db::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default table size used by the paper (5,000,000 rows); scaled down by the
/// `scale` argument of [`benchmark`].
pub const FULL_TABLE_SIZE: usize = 5_000_000;

/// Rows at the given scale (min 1000 so range queries stay meaningful).
pub fn rows_at_scale(scale: f64) -> usize {
    ((FULL_TABLE_SIZE as f64 * scale) as usize).max(1000)
}

/// Build the sysbench catalog (a single table, as in `oltp_common.lua`).
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableBuilder::new("sbtest1")
            .column("id", DataType::Int)
            .column("k", DataType::Int)
            .column("c", DataType::Text)
            .column("pad", DataType::Text)
            .primary_key("id")
            .index("k"),
    );
    c
}

/// Generate the `sbtest1` data.
pub fn generate_data(scale: f64, seed: u64) -> Vec<TableData> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows_at_scale(scale);
    vec![TableData::new(vec![
        ColumnVector::Int(gen::key_column(n)),
        ColumnVector::Int(gen::int_column(
            &mut rng,
            n,
            0,
            n as i64 / 2,
            gen::Skew::Zipf(0.9),
        )),
        ColumnVector::Text(gen::text_column(&mut rng, n, "c", 997)),
        ColumnVector::Text(gen::text_column(&mut rng, n, "pad", 97)),
    ])]
}

/// The five query shapes of `oltp_read_only.lua`.
pub fn templates_for(rows: usize) -> Vec<QueryTemplate> {
    let id_domain = ParamDomain::IntRange {
        min: 0,
        max: rows.saturating_sub(100).max(1) as i64,
    };
    let idc = ColumnRef::new("sbtest1", "id");
    let kc = ColumnRef::new("sbtest1", "k");
    let cc = ColumnRef::new("sbtest1", "c");

    vec![
        // 1. Point selects: SELECT c FROM sbtest1 WHERE id = ?
        QueryTemplate {
            id: 1,
            name: "point_select".into(),
            tables: vec!["sbtest1".into()],
            joins: vec![],
            predicates: vec![PredicateSpec::always(
                idc.clone(),
                ParamOp::Eq,
                id_domain.clone(),
            )],
            group_by: vec![],
            aggregates: vec![],
            order_by: vec![],
            limit: None,
        },
        // 2. Simple ranges: WHERE id BETWEEN ? AND ?+99
        QueryTemplate {
            id: 2,
            name: "simple_range".into(),
            tables: vec!["sbtest1".into()],
            joins: vec![],
            predicates: vec![PredicateSpec::always(
                idc.clone(),
                ParamOp::Between { width: 99 },
                id_domain.clone(),
            )],
            group_by: vec![],
            aggregates: vec![],
            order_by: vec![],
            limit: None,
        },
        // 3. Sum ranges: SELECT SUM(k) WHERE id BETWEEN ...
        QueryTemplate {
            id: 3,
            name: "sum_range".into(),
            tables: vec!["sbtest1".into()],
            joins: vec![],
            predicates: vec![PredicateSpec::always(
                idc.clone(),
                ParamOp::Between { width: 99 },
                id_domain.clone(),
            )],
            group_by: vec![],
            aggregates: vec![Aggregate::Sum(kc.clone())],
            order_by: vec![],
            limit: None,
        },
        // 4. Order ranges: SELECT c WHERE id BETWEEN ... ORDER BY c
        QueryTemplate {
            id: 4,
            name: "order_range".into(),
            tables: vec!["sbtest1".into()],
            joins: vec![],
            predicates: vec![PredicateSpec::always(
                idc.clone(),
                ParamOp::Between { width: 99 },
                id_domain.clone(),
            )],
            group_by: vec![],
            aggregates: vec![],
            order_by: vec![cc.clone()],
            limit: None,
        },
        // 5. Distinct ranges: SELECT DISTINCT c WHERE id BETWEEN ... ORDER BY c
        //    (DISTINCT modelled as GROUP BY c).
        QueryTemplate {
            id: 5,
            name: "distinct_range".into(),
            tables: vec!["sbtest1".into()],
            joins: vec![],
            predicates: vec![PredicateSpec::always(
                idc,
                ParamOp::Between { width: 99 },
                id_domain,
            )],
            group_by: vec![cc.clone()],
            aggregates: vec![Aggregate::CountStar],
            order_by: vec![cc],
            limit: None,
        },
    ]
}

/// Build the sysbench benchmark at a given scale.
pub fn benchmark(scale: f64, seed: u64) -> Benchmark {
    let data = generate_data(scale, seed);
    let rows = data[0].row_count();
    Benchmark {
        name: "sysbench".into(),
        catalog: catalog(),
        data,
        templates: templates_for(rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn catalog_matches_oltp_common() {
        let c = catalog();
        assert_eq!(c.table_count(), 1);
        let t = c.table_by_name("sbtest1").unwrap();
        assert_eq!(t.columns.len(), 4);
        assert_eq!(t.primary_key, Some(0));
        assert!(t.has_index(1), "secondary index on k");
    }

    #[test]
    fn five_read_only_templates() {
        let ts = templates_for(10_000);
        assert_eq!(ts.len(), 5);
        let names: Vec<&str> = ts.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "point_select",
                "simple_range",
                "sum_range",
                "order_range",
                "distinct_range"
            ]
        );
        assert!(ts.iter().all(|t| t.tables == vec!["sbtest1".to_string()]));
    }

    #[test]
    fn queries_execute_with_sensible_cardinalities() {
        let bench = benchmark(0.002, 21);
        let rows = bench.data[0].row_count();
        assert!(rows >= 1000);
        let db = bench.build_database(DbEnvironment::reference());
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);

        // point select returns exactly one row
        let q = bench.templates[0].instantiate(&mut rng);
        let e = db.execute(&q, &mut rng).unwrap();
        assert_eq!(e.root.actual_rows, 1.0);

        // simple range returns about 100 rows
        let q = bench.templates[1].instantiate(&mut rng);
        let e = db.execute(&q, &mut rng).unwrap();
        assert!(
            e.root.actual_rows >= 50.0 && e.root.actual_rows <= 100.0,
            "{}",
            e.root.actual_rows
        );

        // distinct range produces a sort + aggregate in the plan
        let q = bench.templates[4].instantiate(&mut rng);
        let plan = db.plan(&q).unwrap();
        let kinds = plan.operator_kinds();
        assert!(kinds.contains(&OperatorKind::Sort));
        assert!(kinds.contains(&OperatorKind::Aggregate));
    }
}

//! Parameterised query templates and the `Benchmark` bundle.
//!
//! A [`QueryTemplate`] fixes the structural part of a query (tables, join
//! graph, grouping, ordering) and leaves predicate constants to be drawn at
//! instantiation time — exactly how TPC-H query templates and the job-light
//! workload behave, and the representation the paper's Algorithm 1 consumes
//! ("original query templates").

use qcfe_db::prelude::*;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The domain a predicate parameter is drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamDomain {
    /// Integer range (inclusive).
    IntRange {
        /// Minimum value.
        min: i64,
        /// Maximum value.
        max: i64,
    },
    /// Float range.
    FloatRange {
        /// Minimum value.
        min: f64,
        /// Maximum value.
        max: f64,
    },
    /// Date range in days since epoch (inclusive).
    DateRange {
        /// Minimum day.
        min: i64,
        /// Maximum day.
        max: i64,
    },
    /// One of a fixed list of values.
    Choice(Vec<Value>),
    /// A LIKE pattern built as `%<word>%` from one of the listed words.
    LikeWords(Vec<String>),
}

impl ParamDomain {
    /// Draw one literal from the domain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Value {
        match self {
            ParamDomain::IntRange { min, max } => Value::Int(rng.gen_range(*min..=*max.max(min))),
            ParamDomain::FloatRange { min, max } => {
                Value::Float(rng.gen_range(*min..max.max(min + 1e-9)))
            }
            ParamDomain::DateRange { min, max } => Value::Date(rng.gen_range(*min..=*max.max(min))),
            ParamDomain::Choice(values) => values[rng.gen_range(0..values.len())].clone(),
            ParamDomain::LikeWords(words) => {
                Value::Text(words[rng.gen_range(0..words.len())].clone())
            }
        }
    }
}

/// The shape of a parameterised predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamOp {
    /// A single comparison with a random operator from the given set
    /// (`None` = any of `<, <=, >, >=, =`).
    Compare(Option<CompareOp>),
    /// `BETWEEN x AND x + width`.
    Between {
        /// Width of the interval in domain units.
        width: i64,
    },
    /// `IN (k random values)`.
    In {
        /// Number of list elements.
        k: usize,
    },
    /// `LIKE '%word%'`.
    Like,
    /// Equality (point predicate).
    Eq,
}

/// A parameterised predicate slot of a template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredicateSpec {
    /// The constrained column.
    pub column: ColumnRef,
    /// The predicate shape.
    pub op: ParamOp,
    /// The literal domain.
    pub domain: ParamDomain,
    /// Probability that this predicate is included at instantiation time
    /// (1.0 = always), matching optional predicates in benchmark templates.
    pub probability: f64,
}

impl PredicateSpec {
    /// A predicate that is always included.
    pub fn always(column: ColumnRef, op: ParamOp, domain: ParamDomain) -> Self {
        PredicateSpec {
            column,
            op,
            domain,
            probability: 1.0,
        }
    }

    /// A predicate included with the given probability.
    pub fn sometimes(
        column: ColumnRef,
        op: ParamOp,
        domain: ParamDomain,
        probability: f64,
    ) -> Self {
        PredicateSpec {
            column,
            op,
            domain,
            probability,
        }
    }

    /// Instantiate the predicate (or `None` if it was probabilistically
    /// dropped).
    pub fn instantiate<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Predicate> {
        if self.probability < 1.0 && !rng.gen_bool(self.probability) {
            return None;
        }
        Some(match self.op {
            ParamOp::Compare(fixed) => {
                let op = fixed.unwrap_or_else(|| {
                    *[
                        CompareOp::Lt,
                        CompareOp::Le,
                        CompareOp::Gt,
                        CompareOp::Ge,
                        CompareOp::Eq,
                    ]
                    .get(rng.gen_range(0..5usize))
                    .expect("in range")
                });
                Predicate::Compare {
                    column: self.column.clone(),
                    op,
                    value: self.domain.sample(rng),
                }
            }
            ParamOp::Eq => Predicate::Compare {
                column: self.column.clone(),
                op: CompareOp::Eq,
                value: self.domain.sample(rng),
            },
            ParamOp::Between { width } => {
                let low = self.domain.sample(rng);
                let high = match &low {
                    Value::Int(v) => Value::Int(v + width),
                    Value::Date(v) => Value::Date(v + width),
                    Value::Float(v) => Value::Float(v + width as f64),
                    other => other.clone(),
                };
                Predicate::Between {
                    column: self.column.clone(),
                    low,
                    high,
                }
            }
            ParamOp::In { k } => {
                let values = (0..k.max(1)).map(|_| self.domain.sample(rng)).collect();
                Predicate::InList {
                    column: self.column.clone(),
                    values,
                }
            }
            ParamOp::Like => {
                let word = match self.domain.sample(rng) {
                    Value::Text(w) => w,
                    other => other.to_sql(),
                };
                Predicate::Like {
                    column: self.column.clone(),
                    pattern: format!("%{word}%"),
                }
            }
        })
    }
}

/// A parameterised query template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Template id within its benchmark (e.g. TPC-H query number).
    pub id: usize,
    /// Human-readable name, e.g. `"q1_pricing_summary"`.
    pub name: String,
    /// Tables in the FROM clause.
    pub tables: Vec<String>,
    /// Join conditions.
    pub joins: Vec<JoinCondition>,
    /// Parameterised predicates.
    pub predicates: Vec<PredicateSpec>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// Aggregates in the SELECT list.
    pub aggregates: Vec<Aggregate>,
    /// ORDER BY columns.
    pub order_by: Vec<ColumnRef>,
    /// LIMIT, if any.
    pub limit: Option<u64>,
}

impl QueryTemplate {
    /// Instantiate the template into a concrete query with random literals.
    pub fn instantiate<R: Rng + ?Sized>(&self, rng: &mut R) -> Query {
        Query {
            tables: self.tables.clone(),
            joins: self.joins.clone(),
            predicates: self
                .predicates
                .iter()
                .filter_map(|p| p.instantiate(rng))
                .collect(),
            group_by: self.group_by.clone(),
            aggregates: self.aggregates.clone(),
            order_by: self.order_by.clone(),
            limit: self.limit,
        }
    }

    /// Render one representative SQL text of the template (with literals
    /// replaced by a sample); used by the simplified-template parser.
    pub fn representative_sql<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        self.instantiate(rng).to_sql()
    }
}

/// A complete benchmark: schema, data and query templates.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (`"tpch"`, `"job-light"`, `"sysbench"`).
    pub name: String,
    /// Catalog of tables.
    pub catalog: Catalog,
    /// Data per table, in table-id order.
    pub data: Vec<TableData>,
    /// Query templates.
    pub templates: Vec<QueryTemplate>,
}

impl Benchmark {
    /// Build a database instance of this benchmark under an environment.
    /// Data is cloned so the same benchmark can back many environments.
    pub fn build_database(&self, env: DbEnvironment) -> Database {
        Database::build(self.catalog.clone(), self.data.clone(), env)
    }

    /// Instantiate a random query from a random template.
    pub fn random_query<R: Rng + ?Sized>(&self, rng: &mut R) -> Query {
        let t = &self.templates[rng.gen_range(0..self.templates.len())];
        t.instantiate(rng)
    }

    /// Instantiate `count` queries round-robin across the templates
    /// (the paper's "40 × 22 queries per configuration" pattern).
    pub fn queries_round_robin<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Query> {
        (0..count)
            .map(|i| self.templates[i % self.templates.len()].instantiate(rng))
            .collect()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.data.iter().map(|d| d.row_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn domains_sample_within_bounds() {
        let mut r = rng();
        for _ in 0..50 {
            match (ParamDomain::IntRange { min: 5, max: 10 }).sample(&mut r) {
                Value::Int(v) => assert!((5..=10).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
            match (ParamDomain::DateRange { min: 100, max: 200 }).sample(&mut r) {
                Value::Date(v) => assert!((100..=200).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
        }
        let choice = ParamDomain::Choice(vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(
            choice.sample(&mut r),
            Value::Int(1) | Value::Int(2)
        ));
        assert!(matches!(
            ParamDomain::LikeWords(vec!["green".into()]).sample(&mut r),
            Value::Text(_)
        ));
    }

    #[test]
    fn predicate_specs_instantiate_each_shape() {
        let mut r = rng();
        let col = ColumnRef::new("t", "c");
        let spec = PredicateSpec::always(
            col.clone(),
            ParamOp::Between { width: 10 },
            ParamDomain::IntRange { min: 0, max: 100 },
        );
        assert!(matches!(
            spec.instantiate(&mut r),
            Some(Predicate::Between { .. })
        ));
        let spec = PredicateSpec::always(
            col.clone(),
            ParamOp::In { k: 3 },
            ParamDomain::IntRange { min: 0, max: 10 },
        );
        match spec.instantiate(&mut r) {
            Some(Predicate::InList { values, .. }) => assert_eq!(values.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        let spec = PredicateSpec::always(
            col.clone(),
            ParamOp::Like,
            ParamDomain::LikeWords(vec!["steel".into()]),
        );
        match spec.instantiate(&mut r) {
            Some(Predicate::Like { pattern, .. }) => assert_eq!(pattern, "%steel%"),
            other => panic!("unexpected {other:?}"),
        }
        let never = PredicateSpec::sometimes(
            col,
            ParamOp::Eq,
            ParamDomain::IntRange { min: 0, max: 1 },
            0.0,
        );
        assert!(never.instantiate(&mut r).is_none());
    }

    #[test]
    fn template_instantiation_preserves_structure() {
        let mut r = rng();
        let template = QueryTemplate {
            id: 1,
            name: "demo".into(),
            tables: vec!["a".into(), "b".into()],
            joins: vec![JoinCondition::new(
                ColumnRef::new("a", "x"),
                ColumnRef::new("b", "y"),
            )],
            predicates: vec![PredicateSpec::always(
                ColumnRef::new("a", "v"),
                ParamOp::Compare(None),
                ParamDomain::IntRange { min: 0, max: 100 },
            )],
            group_by: vec![ColumnRef::new("b", "g")],
            aggregates: vec![Aggregate::CountStar],
            order_by: vec![],
            limit: Some(5),
        };
        let q1 = template.instantiate(&mut r);
        let q2 = template.instantiate(&mut r);
        assert_eq!(q1.tables, q2.tables);
        assert_eq!(q1.joins, q2.joins);
        assert_eq!(q1.limit, Some(5));
        // literals should differ at least sometimes across instantiations
        let sql: Vec<String> = (0..10)
            .map(|_| template.representative_sql(&mut r))
            .collect();
        let distinct: std::collections::HashSet<&String> = sql.iter().collect();
        assert!(distinct.len() > 1, "parameters should vary");
    }
}

//! Low-level synthetic data generation helpers (skewed integers, strings,
//! dates, correlated columns).

use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// Draw a Zipf-distributed value in `[1, n]` with exponent `s`.
/// Falls back to uniform when the distribution cannot be constructed.
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, n: u64, s: f64) -> u64 {
    match Zipf::new(n.max(1), s.max(0.01)) {
        Ok(dist) => dist.sample(rng) as u64,
        Err(_) => rng.gen_range(1..=n.max(1)),
    }
}

/// A skew specification for generated columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Uniform over the domain.
    Uniform,
    /// Zipf-distributed with the given exponent (1.0 = classic Zipf).
    Zipf(f64),
}

/// Generate `count` integers over `[min, max]` with the given skew.
pub fn int_column<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    min: i64,
    max: i64,
    skew: Skew,
) -> Vec<i64> {
    let span = (max - min).max(0) as u64 + 1;
    (0..count)
        .map(|_| match skew {
            Skew::Uniform => rng.gen_range(min..=max.max(min)),
            Skew::Zipf(s) => min + (zipf(rng, span, s) - 1) as i64,
        })
        .collect()
}

/// Generate a dense key column `0..count` (primary keys).
pub fn key_column(count: usize) -> Vec<i64> {
    (0..count as i64).collect()
}

/// Generate a foreign-key column referencing `0..parent_count` with skew.
pub fn fk_column<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    parent_count: usize,
    skew: Skew,
) -> Vec<i64> {
    int_column(rng, count, 0, parent_count.saturating_sub(1) as i64, skew)
}

/// Generate floats over `[min, max)` uniformly.
pub fn float_column<R: Rng + ?Sized>(rng: &mut R, count: usize, min: f64, max: f64) -> Vec<f64> {
    (0..count).map(|_| rng.gen_range(min..max)).collect()
}

/// Generate dates (days since epoch) uniformly over `[min_day, max_day]`.
pub fn date_column<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    min_day: i64,
    max_day: i64,
) -> Vec<i64> {
    (0..count)
        .map(|_| rng.gen_range(min_day..=max_day))
        .collect()
}

/// Generate strings of the form `prefix_<k>` where `k` is drawn from
/// `[0, cardinality)`, giving a text column with a controlled distinct count.
pub fn text_column<R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    prefix: &str,
    cardinality: usize,
) -> Vec<String> {
    (0..count)
        .map(|_| format!("{prefix}_{}", rng.gen_range(0..cardinality.max(1))))
        .collect()
}

/// Pick a random element of a slice.
pub fn choose<'a, T, R: Rng + ?Sized>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn key_column_is_dense() {
        let k = key_column(100);
        assert_eq!(k.len(), 100);
        assert_eq!(k[0], 0);
        assert_eq!(k[99], 99);
    }

    #[test]
    fn int_column_respects_bounds() {
        let mut r = rng();
        let vals = int_column(&mut r, 1000, 10, 20, Skew::Uniform);
        assert!(vals.iter().all(|&v| (10..=20).contains(&v)));
        let vals = int_column(&mut r, 1000, 0, 999, Skew::Zipf(1.1));
        assert!(vals.iter().all(|&v| (0..=999).contains(&v)));
    }

    #[test]
    fn zipf_skews_towards_small_values() {
        let mut r = rng();
        let vals = int_column(&mut r, 5000, 0, 999, Skew::Zipf(1.2));
        let small = vals.iter().filter(|&&v| v < 10).count();
        let large = vals.iter().filter(|&&v| v >= 990).count();
        assert!(small > large * 5, "small {small} large {large}");
    }

    #[test]
    fn fk_column_references_parent_range() {
        let mut r = rng();
        let fks = fk_column(&mut r, 500, 50, Skew::Uniform);
        assert!(fks.iter().all(|&v| (0..50).contains(&v)));
    }

    #[test]
    fn float_and_date_columns_in_range() {
        let mut r = rng();
        let fs = float_column(&mut r, 200, 1.0, 2.0);
        assert!(fs.iter().all(|&v| (1.0..2.0).contains(&v)));
        let ds = date_column(&mut r, 200, 8000, 9000);
        assert!(ds.iter().all(|&v| (8000..=9000).contains(&v)));
    }

    #[test]
    fn text_column_has_bounded_cardinality() {
        let mut r = rng();
        let ts = text_column(&mut r, 1000, "color", 7);
        let distinct: std::collections::HashSet<&String> = ts.iter().collect();
        assert!(distinct.len() <= 7);
        assert!(ts[0].starts_with("color_"));
    }

    #[test]
    fn choose_returns_member() {
        let mut r = rng();
        let items = [1, 2, 3];
        for _ in 0..10 {
            assert!(items.contains(choose(&mut r, &items)));
        }
    }
}

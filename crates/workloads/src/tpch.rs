//! TPC-H-shaped benchmark: the eight-table schema, a scaled-down synthetic
//! data generator, and 22 parameterised query templates whose join/group/sort
//! structure follows the official queries (restricted to the
//! select-project-join-aggregate fragment supported by the substrate).

use crate::generator as gen;
use crate::template::{Benchmark, ParamDomain, ParamOp, PredicateSpec, QueryTemplate};
use qcfe_db::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// First shippable date in the generated data (1992-01-01).
pub const DATE_MIN: i64 = 8035;
/// Last shippable date in the generated data (1998-12-31).
pub const DATE_MAX: i64 = 10_592;

/// Row counts at scale factor 1.0 (the official TPC-H sizes).
const SF1_ROWS: [(&str, usize); 8] = [
    ("region", 5),
    ("nation", 25),
    ("supplier", 10_000),
    ("customer", 150_000),
    ("part", 200_000),
    ("partsupp", 800_000),
    ("orders", 1_500_000),
    ("lineitem", 6_000_000),
];

/// Number of rows for a table at the given scale factor (minimum sensible
/// sizes are enforced so tiny scale factors still produce joinable data).
pub fn rows_at_scale(table: &str, scale: f64) -> usize {
    let base = SF1_ROWS
        .iter()
        .find(|(t, _)| *t == table)
        .map(|(_, n)| *n)
        .unwrap_or(1000);
    ((base as f64 * scale) as usize).max(match table {
        "region" => 5,
        "nation" => 25,
        _ => 50,
    })
}

/// Build the TPC-H catalog.
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableBuilder::new("region")
            .column("r_regionkey", DataType::Int)
            .column("r_name", DataType::Text)
            .primary_key("r_regionkey"),
    );
    c.add_table(
        TableBuilder::new("nation")
            .column("n_nationkey", DataType::Int)
            .column("n_regionkey", DataType::Int)
            .column("n_name", DataType::Text)
            .primary_key("n_nationkey")
            .index("n_regionkey"),
    );
    c.add_table(
        TableBuilder::new("supplier")
            .column("s_suppkey", DataType::Int)
            .column("s_nationkey", DataType::Int)
            .column("s_acctbal", DataType::Float)
            .primary_key("s_suppkey")
            .index("s_nationkey"),
    );
    c.add_table(
        TableBuilder::new("customer")
            .column("c_custkey", DataType::Int)
            .column("c_nationkey", DataType::Int)
            .column("c_acctbal", DataType::Float)
            .column("c_mktsegment", DataType::Text)
            .primary_key("c_custkey")
            .index("c_nationkey"),
    );
    c.add_table(
        TableBuilder::new("part")
            .column("p_partkey", DataType::Int)
            .column("p_size", DataType::Int)
            .column("p_retailprice", DataType::Float)
            .column("p_brand", DataType::Text)
            .column("p_type", DataType::Text)
            .column("p_container", DataType::Text)
            .primary_key("p_partkey"),
    );
    c.add_table(
        TableBuilder::new("partsupp")
            .column("ps_partkey", DataType::Int)
            .column("ps_suppkey", DataType::Int)
            .column("ps_availqty", DataType::Int)
            .column("ps_supplycost", DataType::Float)
            .index("ps_partkey")
            .index("ps_suppkey"),
    );
    c.add_table(
        TableBuilder::new("orders")
            .column("o_orderkey", DataType::Int)
            .column("o_custkey", DataType::Int)
            .column("o_totalprice", DataType::Float)
            .column("o_orderdate", DataType::Date)
            .column("o_orderstatus", DataType::Text)
            .column("o_orderpriority", DataType::Text)
            .primary_key("o_orderkey")
            .index("o_custkey")
            .index("o_orderdate"),
    );
    c.add_table(
        TableBuilder::new("lineitem")
            .column("l_orderkey", DataType::Int)
            .column("l_partkey", DataType::Int)
            .column("l_suppkey", DataType::Int)
            .column("l_quantity", DataType::Float)
            .column("l_extendedprice", DataType::Float)
            .column("l_discount", DataType::Float)
            .column("l_shipdate", DataType::Date)
            .column("l_returnflag", DataType::Text)
            .column("l_linestatus", DataType::Text)
            .index("l_orderkey")
            .index("l_partkey")
            .index("l_shipdate"),
    );
    c
}

/// Generate data for every table at the given scale factor.
pub fn generate_data(scale: f64, seed: u64) -> Vec<TableData> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_region = rows_at_scale("region", scale);
    let n_nation = rows_at_scale("nation", scale);
    let n_supplier = rows_at_scale("supplier", scale);
    let n_customer = rows_at_scale("customer", scale);
    let n_part = rows_at_scale("part", scale);
    let n_partsupp = rows_at_scale("partsupp", scale);
    let n_orders = rows_at_scale("orders", scale);
    let n_lineitem = rows_at_scale("lineitem", scale);

    let region = TableData::new(vec![
        ColumnVector::Int(gen::key_column(n_region)),
        ColumnVector::Text(gen::text_column(&mut rng, n_region, "region", 5)),
    ]);
    let nation = TableData::new(vec![
        ColumnVector::Int(gen::key_column(n_nation)),
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_nation,
            n_region,
            gen::Skew::Uniform,
        )),
        ColumnVector::Text(gen::text_column(&mut rng, n_nation, "nation", 25)),
    ]);
    let supplier = TableData::new(vec![
        ColumnVector::Int(gen::key_column(n_supplier)),
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_supplier,
            n_nation,
            gen::Skew::Uniform,
        )),
        ColumnVector::Float(gen::float_column(&mut rng, n_supplier, -999.0, 9999.0)),
    ]);
    let customer = TableData::new(vec![
        ColumnVector::Int(gen::key_column(n_customer)),
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_customer,
            n_nation,
            gen::Skew::Uniform,
        )),
        ColumnVector::Float(gen::float_column(&mut rng, n_customer, -999.0, 9999.0)),
        ColumnVector::Text(gen::text_column(&mut rng, n_customer, "segment", 5)),
    ]);
    let part = TableData::new(vec![
        ColumnVector::Int(gen::key_column(n_part)),
        ColumnVector::Int(gen::int_column(&mut rng, n_part, 1, 50, gen::Skew::Uniform)),
        ColumnVector::Float(gen::float_column(&mut rng, n_part, 900.0, 2100.0)),
        ColumnVector::Text(gen::text_column(&mut rng, n_part, "brand", 25)),
        ColumnVector::Text(gen::text_column(&mut rng, n_part, "type", 150)),
        ColumnVector::Text(gen::text_column(&mut rng, n_part, "container", 40)),
    ]);
    let partsupp = TableData::new(vec![
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_partsupp,
            n_part,
            gen::Skew::Uniform,
        )),
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_partsupp,
            n_supplier,
            gen::Skew::Uniform,
        )),
        ColumnVector::Int(gen::int_column(
            &mut rng,
            n_partsupp,
            1,
            9999,
            gen::Skew::Uniform,
        )),
        ColumnVector::Float(gen::float_column(&mut rng, n_partsupp, 1.0, 1000.0)),
    ]);
    let orders = TableData::new(vec![
        ColumnVector::Int(gen::key_column(n_orders)),
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_orders,
            n_customer,
            gen::Skew::Zipf(0.8),
        )),
        ColumnVector::Float(gen::float_column(&mut rng, n_orders, 850.0, 480_000.0)),
        ColumnVector::Int(gen::date_column(&mut rng, n_orders, DATE_MIN, DATE_MAX)),
        ColumnVector::Text(gen::text_column(&mut rng, n_orders, "status", 3)),
        ColumnVector::Text(gen::text_column(&mut rng, n_orders, "prio", 5)),
    ]);
    let lineitem = TableData::new(vec![
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_lineitem,
            n_orders,
            gen::Skew::Uniform,
        )),
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_lineitem,
            n_part,
            gen::Skew::Zipf(0.6),
        )),
        ColumnVector::Int(gen::fk_column(
            &mut rng,
            n_lineitem,
            n_supplier,
            gen::Skew::Uniform,
        )),
        ColumnVector::Float(gen::float_column(&mut rng, n_lineitem, 1.0, 50.0)),
        ColumnVector::Float(gen::float_column(&mut rng, n_lineitem, 900.0, 105_000.0)),
        ColumnVector::Float(gen::float_column(&mut rng, n_lineitem, 0.0, 0.1)),
        ColumnVector::Int(gen::date_column(&mut rng, n_lineitem, DATE_MIN, DATE_MAX)),
        ColumnVector::Text(gen::text_column(&mut rng, n_lineitem, "flag", 3)),
        ColumnVector::Text(gen::text_column(&mut rng, n_lineitem, "ls", 2)),
    ]);

    vec![
        region, nation, supplier, customer, part, partsupp, orders, lineitem,
    ]
}

fn cr(table: &str, column: &str) -> ColumnRef {
    ColumnRef::new(table, column)
}

fn join(lt: &str, lc: &str, rt: &str, rc: &str) -> JoinCondition {
    JoinCondition::new(cr(lt, lc), cr(rt, rc))
}

fn date_pred(table: &str, column: &str) -> PredicateSpec {
    PredicateSpec::always(
        cr(table, column),
        ParamOp::Compare(None),
        ParamDomain::DateRange {
            min: DATE_MIN,
            max: DATE_MAX,
        },
    )
}

/// The 22 query templates. Each mirrors the corresponding TPC-H query's
/// join graph, grouping and ordering, with correlated/sub-query parts
/// flattened into the supported SPJA fragment.
pub fn templates() -> Vec<QueryTemplate> {
    let mut t = Vec::with_capacity(22);

    // Q1: pricing summary report — scan lineitem, group by flags.
    t.push(QueryTemplate {
        id: 1,
        name: "q1_pricing_summary".into(),
        tables: vec!["lineitem".into()],
        joins: vec![],
        predicates: vec![date_pred("lineitem", "l_shipdate")],
        group_by: vec![
            cr("lineitem", "l_returnflag"),
            cr("lineitem", "l_linestatus"),
        ],
        aggregates: vec![
            Aggregate::Sum(cr("lineitem", "l_quantity")),
            Aggregate::Sum(cr("lineitem", "l_extendedprice")),
            Aggregate::Avg(cr("lineitem", "l_discount")),
            Aggregate::CountStar,
        ],
        order_by: vec![cr("lineitem", "l_returnflag")],
        limit: None,
    });

    // Q2: minimum cost supplier — part/partsupp/supplier/nation/region join.
    t.push(QueryTemplate {
        id: 2,
        name: "q2_min_cost_supplier".into(),
        tables: vec![
            "part".into(),
            "partsupp".into(),
            "supplier".into(),
            "nation".into(),
            "region".into(),
        ],
        joins: vec![
            join("part", "p_partkey", "partsupp", "ps_partkey"),
            join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
            join("supplier", "s_nationkey", "nation", "n_nationkey"),
            join("nation", "n_regionkey", "region", "r_regionkey"),
        ],
        predicates: vec![
            PredicateSpec::always(
                cr("part", "p_size"),
                ParamOp::Eq,
                ParamDomain::IntRange { min: 1, max: 50 },
            ),
            PredicateSpec::always(
                cr("part", "p_type"),
                ParamOp::Like,
                ParamDomain::LikeWords((0..20).map(|i| format!("type_{i}")).collect()),
            ),
        ],
        group_by: vec![],
        aggregates: vec![Aggregate::Min(cr("partsupp", "ps_supplycost"))],
        order_by: vec![],
        limit: Some(100),
    });

    // Q3: shipping priority — customer/orders/lineitem.
    t.push(QueryTemplate {
        id: 3,
        name: "q3_shipping_priority".into(),
        tables: vec!["customer".into(), "orders".into(), "lineitem".into()],
        joins: vec![
            join("customer", "c_custkey", "orders", "o_custkey"),
            join("orders", "o_orderkey", "lineitem", "l_orderkey"),
        ],
        predicates: vec![
            PredicateSpec::always(
                cr("customer", "c_mktsegment"),
                ParamOp::Eq,
                ParamDomain::Choice(
                    (0..5)
                        .map(|i| Value::Text(format!("segment_{i}")))
                        .collect(),
                ),
            ),
            date_pred("orders", "o_orderdate"),
            date_pred("lineitem", "l_shipdate"),
        ],
        group_by: vec![cr("orders", "o_orderkey"), cr("orders", "o_orderdate")],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![cr("orders", "o_orderdate")],
        limit: Some(10),
    });

    // Q4: order priority checking — orders/lineitem.
    t.push(QueryTemplate {
        id: 4,
        name: "q4_order_priority".into(),
        tables: vec!["orders".into(), "lineitem".into()],
        joins: vec![join("orders", "o_orderkey", "lineitem", "l_orderkey")],
        predicates: vec![PredicateSpec::always(
            cr("orders", "o_orderdate"),
            ParamOp::Between { width: 90 },
            ParamDomain::DateRange {
                min: DATE_MIN,
                max: DATE_MAX - 90,
            },
        )],
        group_by: vec![cr("orders", "o_orderpriority")],
        aggregates: vec![Aggregate::CountStar],
        order_by: vec![cr("orders", "o_orderpriority")],
        limit: None,
    });

    // Q5: local supplier volume — 6-way join collapsed to 5 supported tables.
    t.push(QueryTemplate {
        id: 5,
        name: "q5_local_supplier_volume".into(),
        tables: vec![
            "customer".into(),
            "orders".into(),
            "lineitem".into(),
            "supplier".into(),
            "nation".into(),
        ],
        joins: vec![
            join("customer", "c_custkey", "orders", "o_custkey"),
            join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            join("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
        predicates: vec![PredicateSpec::always(
            cr("orders", "o_orderdate"),
            ParamOp::Between { width: 365 },
            ParamDomain::DateRange {
                min: DATE_MIN,
                max: DATE_MAX - 365,
            },
        )],
        group_by: vec![cr("nation", "n_name")],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![cr("nation", "n_name")],
        limit: None,
    });

    // Q6: revenue change forecast — single-table range scan + aggregate.
    t.push(QueryTemplate {
        id: 6,
        name: "q6_forecast_revenue".into(),
        tables: vec!["lineitem".into()],
        joins: vec![],
        predicates: vec![
            PredicateSpec::always(
                cr("lineitem", "l_shipdate"),
                ParamOp::Between { width: 365 },
                ParamDomain::DateRange {
                    min: DATE_MIN,
                    max: DATE_MAX - 365,
                },
            ),
            PredicateSpec::always(
                cr("lineitem", "l_discount"),
                ParamOp::Between { width: 0 },
                ParamDomain::FloatRange {
                    min: 0.02,
                    max: 0.09,
                },
            ),
            PredicateSpec::always(
                cr("lineitem", "l_quantity"),
                ParamOp::Compare(Some(CompareOp::Lt)),
                ParamDomain::FloatRange {
                    min: 24.0,
                    max: 25.0,
                },
            ),
        ],
        group_by: vec![],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![],
        limit: None,
    });

    // Q7: volume shipping.
    t.push(QueryTemplate {
        id: 7,
        name: "q7_volume_shipping".into(),
        tables: vec![
            "supplier".into(),
            "lineitem".into(),
            "orders".into(),
            "customer".into(),
            "nation".into(),
        ],
        joins: vec![
            join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            join("customer", "c_custkey", "orders", "o_custkey"),
            join("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
        predicates: vec![date_pred("lineitem", "l_shipdate")],
        group_by: vec![cr("nation", "n_name")],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![cr("nation", "n_name")],
        limit: None,
    });

    // Q8: national market share.
    t.push(QueryTemplate {
        id: 8,
        name: "q8_market_share".into(),
        tables: vec![
            "part".into(),
            "lineitem".into(),
            "orders".into(),
            "customer".into(),
            "nation".into(),
            "region".into(),
        ],
        joins: vec![
            join("part", "p_partkey", "lineitem", "l_partkey"),
            join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            join("customer", "c_custkey", "orders", "o_custkey"),
            join("customer", "c_nationkey", "nation", "n_nationkey"),
            join("nation", "n_regionkey", "region", "r_regionkey"),
        ],
        predicates: vec![
            date_pred("orders", "o_orderdate"),
            PredicateSpec::always(
                cr("part", "p_type"),
                ParamOp::Like,
                ParamDomain::LikeWords((0..20).map(|i| format!("type_{i}")).collect()),
            ),
        ],
        group_by: vec![cr("nation", "n_name")],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![cr("nation", "n_name")],
        limit: None,
    });

    // Q9: product type profit.
    t.push(QueryTemplate {
        id: 9,
        name: "q9_product_profit".into(),
        tables: vec![
            "part".into(),
            "lineitem".into(),
            "partsupp".into(),
            "orders".into(),
            "supplier".into(),
        ],
        joins: vec![
            join("part", "p_partkey", "lineitem", "l_partkey"),
            join("partsupp", "ps_partkey", "lineitem", "l_partkey"),
            join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
        ],
        predicates: vec![PredicateSpec::always(
            cr("part", "p_brand"),
            ParamOp::Like,
            ParamDomain::LikeWords((0..25).map(|i| format!("brand_{i}")).collect()),
        )],
        group_by: vec![cr("orders", "o_orderstatus")],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![cr("orders", "o_orderstatus")],
        limit: None,
    });

    // Q10: returned item reporting.
    t.push(QueryTemplate {
        id: 10,
        name: "q10_returned_items".into(),
        tables: vec![
            "customer".into(),
            "orders".into(),
            "lineitem".into(),
            "nation".into(),
        ],
        joins: vec![
            join("customer", "c_custkey", "orders", "o_custkey"),
            join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            join("customer", "c_nationkey", "nation", "n_nationkey"),
        ],
        predicates: vec![
            PredicateSpec::always(
                cr("orders", "o_orderdate"),
                ParamOp::Between { width: 90 },
                ParamDomain::DateRange {
                    min: DATE_MIN,
                    max: DATE_MAX - 90,
                },
            ),
            PredicateSpec::always(
                cr("lineitem", "l_returnflag"),
                ParamOp::Eq,
                ParamDomain::Choice((0..3).map(|i| Value::Text(format!("flag_{i}"))).collect()),
            ),
        ],
        group_by: vec![cr("customer", "c_custkey"), cr("nation", "n_name")],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![cr("customer", "c_custkey")],
        limit: Some(20),
    });

    // Q11: important stock identification.
    t.push(QueryTemplate {
        id: 11,
        name: "q11_important_stock".into(),
        tables: vec!["partsupp".into(), "supplier".into(), "nation".into()],
        joins: vec![
            join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
            join("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
        predicates: vec![PredicateSpec::always(
            cr("nation", "n_name"),
            ParamOp::Eq,
            ParamDomain::Choice(
                (0..25)
                    .map(|i| Value::Text(format!("nation_{i}")))
                    .collect(),
            ),
        )],
        group_by: vec![cr("partsupp", "ps_partkey")],
        aggregates: vec![Aggregate::Sum(cr("partsupp", "ps_supplycost"))],
        order_by: vec![cr("partsupp", "ps_partkey")],
        limit: Some(100),
    });

    // Q12: shipping modes and order priority.
    t.push(QueryTemplate {
        id: 12,
        name: "q12_shipping_modes".into(),
        tables: vec!["orders".into(), "lineitem".into()],
        joins: vec![join("orders", "o_orderkey", "lineitem", "l_orderkey")],
        predicates: vec![
            PredicateSpec::always(
                cr("lineitem", "l_shipdate"),
                ParamOp::Between { width: 365 },
                ParamDomain::DateRange {
                    min: DATE_MIN,
                    max: DATE_MAX - 365,
                },
            ),
            PredicateSpec::always(
                cr("lineitem", "l_linestatus"),
                ParamOp::Eq,
                ParamDomain::Choice((0..2).map(|i| Value::Text(format!("ls_{i}"))).collect()),
            ),
        ],
        group_by: vec![cr("orders", "o_orderpriority")],
        aggregates: vec![Aggregate::CountStar],
        order_by: vec![cr("orders", "o_orderpriority")],
        limit: None,
    });

    // Q13: customer distribution.
    t.push(QueryTemplate {
        id: 13,
        name: "q13_customer_distribution".into(),
        tables: vec!["customer".into(), "orders".into()],
        joins: vec![join("customer", "c_custkey", "orders", "o_custkey")],
        predicates: vec![PredicateSpec::always(
            cr("orders", "o_orderpriority"),
            ParamOp::Eq,
            ParamDomain::Choice((0..5).map(|i| Value::Text(format!("prio_{i}"))).collect()),
        )],
        group_by: vec![cr("customer", "c_custkey")],
        aggregates: vec![Aggregate::CountStar],
        order_by: vec![cr("customer", "c_custkey")],
        limit: Some(50),
    });

    // Q14: promotion effect.
    t.push(QueryTemplate {
        id: 14,
        name: "q14_promotion_effect".into(),
        tables: vec!["lineitem".into(), "part".into()],
        joins: vec![join("lineitem", "l_partkey", "part", "p_partkey")],
        predicates: vec![PredicateSpec::always(
            cr("lineitem", "l_shipdate"),
            ParamOp::Between { width: 30 },
            ParamDomain::DateRange {
                min: DATE_MIN,
                max: DATE_MAX - 30,
            },
        )],
        group_by: vec![],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![],
        limit: None,
    });

    // Q15: top supplier.
    t.push(QueryTemplate {
        id: 15,
        name: "q15_top_supplier".into(),
        tables: vec!["lineitem".into(), "supplier".into()],
        joins: vec![join("lineitem", "l_suppkey", "supplier", "s_suppkey")],
        predicates: vec![PredicateSpec::always(
            cr("lineitem", "l_shipdate"),
            ParamOp::Between { width: 90 },
            ParamDomain::DateRange {
                min: DATE_MIN,
                max: DATE_MAX - 90,
            },
        )],
        group_by: vec![cr("supplier", "s_suppkey")],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![cr("supplier", "s_suppkey")],
        limit: Some(10),
    });

    // Q16: parts/supplier relationship.
    t.push(QueryTemplate {
        id: 16,
        name: "q16_parts_supplier".into(),
        tables: vec!["partsupp".into(), "part".into()],
        joins: vec![join("partsupp", "ps_partkey", "part", "p_partkey")],
        predicates: vec![
            PredicateSpec::always(
                cr("part", "p_brand"),
                ParamOp::Eq,
                ParamDomain::Choice((0..25).map(|i| Value::Text(format!("brand_{i}"))).collect()),
            ),
            PredicateSpec::always(
                cr("part", "p_size"),
                ParamOp::In { k: 8 },
                ParamDomain::IntRange { min: 1, max: 50 },
            ),
        ],
        group_by: vec![
            cr("part", "p_brand"),
            cr("part", "p_type"),
            cr("part", "p_size"),
        ],
        aggregates: vec![Aggregate::CountStar],
        order_by: vec![cr("part", "p_brand")],
        limit: None,
    });

    // Q17: small-quantity-order revenue.
    t.push(QueryTemplate {
        id: 17,
        name: "q17_small_quantity".into(),
        tables: vec!["lineitem".into(), "part".into()],
        joins: vec![join("lineitem", "l_partkey", "part", "p_partkey")],
        predicates: vec![
            PredicateSpec::always(
                cr("part", "p_brand"),
                ParamOp::Eq,
                ParamDomain::Choice((0..25).map(|i| Value::Text(format!("brand_{i}"))).collect()),
            ),
            PredicateSpec::always(
                cr("part", "p_container"),
                ParamOp::Eq,
                ParamDomain::Choice(
                    (0..40)
                        .map(|i| Value::Text(format!("container_{i}")))
                        .collect(),
                ),
            ),
            PredicateSpec::always(
                cr("lineitem", "l_quantity"),
                ParamOp::Compare(Some(CompareOp::Lt)),
                ParamDomain::FloatRange {
                    min: 2.0,
                    max: 10.0,
                },
            ),
        ],
        group_by: vec![],
        aggregates: vec![Aggregate::Avg(cr("lineitem", "l_extendedprice"))],
        order_by: vec![],
        limit: None,
    });

    // Q18: large volume customer.
    t.push(QueryTemplate {
        id: 18,
        name: "q18_large_volume_customer".into(),
        tables: vec!["customer".into(), "orders".into(), "lineitem".into()],
        joins: vec![
            join("customer", "c_custkey", "orders", "o_custkey"),
            join("orders", "o_orderkey", "lineitem", "l_orderkey"),
        ],
        predicates: vec![PredicateSpec::always(
            cr("lineitem", "l_quantity"),
            ParamOp::Compare(Some(CompareOp::Gt)),
            ParamDomain::FloatRange {
                min: 30.0,
                max: 49.0,
            },
        )],
        group_by: vec![cr("customer", "c_custkey"), cr("orders", "o_orderkey")],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_quantity"))],
        order_by: vec![cr("orders", "o_orderkey")],
        limit: Some(100),
    });

    // Q19: discounted revenue.
    t.push(QueryTemplate {
        id: 19,
        name: "q19_discounted_revenue".into(),
        tables: vec!["lineitem".into(), "part".into()],
        joins: vec![join("lineitem", "l_partkey", "part", "p_partkey")],
        predicates: vec![
            PredicateSpec::always(
                cr("part", "p_container"),
                ParamOp::In { k: 4 },
                ParamDomain::Choice(
                    (0..40)
                        .map(|i| Value::Text(format!("container_{i}")))
                        .collect(),
                ),
            ),
            PredicateSpec::always(
                cr("lineitem", "l_quantity"),
                ParamOp::Between { width: 10 },
                ParamDomain::FloatRange {
                    min: 1.0,
                    max: 30.0,
                },
            ),
            PredicateSpec::always(
                cr("part", "p_size"),
                ParamOp::Between { width: 10 },
                ParamDomain::IntRange { min: 1, max: 40 },
            ),
        ],
        group_by: vec![],
        aggregates: vec![Aggregate::Sum(cr("lineitem", "l_extendedprice"))],
        order_by: vec![],
        limit: None,
    });

    // Q20: potential part promotion.
    t.push(QueryTemplate {
        id: 20,
        name: "q20_potential_promotion".into(),
        tables: vec!["supplier".into(), "nation".into(), "partsupp".into()],
        joins: vec![
            join("supplier", "s_nationkey", "nation", "n_nationkey"),
            join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
        ],
        predicates: vec![
            PredicateSpec::always(
                cr("nation", "n_name"),
                ParamOp::Eq,
                ParamDomain::Choice(
                    (0..25)
                        .map(|i| Value::Text(format!("nation_{i}")))
                        .collect(),
                ),
            ),
            PredicateSpec::always(
                cr("partsupp", "ps_availqty"),
                ParamOp::Compare(Some(CompareOp::Gt)),
                ParamDomain::IntRange {
                    min: 100,
                    max: 9000,
                },
            ),
        ],
        group_by: vec![cr("supplier", "s_suppkey")],
        aggregates: vec![Aggregate::CountStar],
        order_by: vec![cr("supplier", "s_suppkey")],
        limit: Some(100),
    });

    // Q21: suppliers who kept orders waiting.
    t.push(QueryTemplate {
        id: 21,
        name: "q21_suppliers_waiting".into(),
        tables: vec![
            "supplier".into(),
            "lineitem".into(),
            "orders".into(),
            "nation".into(),
        ],
        joins: vec![
            join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            join("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
        predicates: vec![
            PredicateSpec::always(
                cr("orders", "o_orderstatus"),
                ParamOp::Eq,
                ParamDomain::Choice((0..3).map(|i| Value::Text(format!("status_{i}"))).collect()),
            ),
            PredicateSpec::always(
                cr("nation", "n_name"),
                ParamOp::Eq,
                ParamDomain::Choice(
                    (0..25)
                        .map(|i| Value::Text(format!("nation_{i}")))
                        .collect(),
                ),
            ),
        ],
        group_by: vec![cr("supplier", "s_suppkey")],
        aggregates: vec![Aggregate::CountStar],
        order_by: vec![cr("supplier", "s_suppkey")],
        limit: Some(100),
    });

    // Q22: global sales opportunity.
    t.push(QueryTemplate {
        id: 22,
        name: "q22_global_sales".into(),
        tables: vec!["customer".into(), "nation".into()],
        joins: vec![join("customer", "c_nationkey", "nation", "n_nationkey")],
        predicates: vec![
            PredicateSpec::always(
                cr("customer", "c_acctbal"),
                ParamOp::Compare(Some(CompareOp::Gt)),
                ParamDomain::FloatRange {
                    min: 0.0,
                    max: 5000.0,
                },
            ),
            PredicateSpec::always(
                cr("nation", "n_name"),
                ParamOp::In { k: 7 },
                ParamDomain::Choice(
                    (0..25)
                        .map(|i| Value::Text(format!("nation_{i}")))
                        .collect(),
                ),
            ),
        ],
        group_by: vec![cr("customer", "c_nationkey")],
        aggregates: vec![
            Aggregate::CountStar,
            Aggregate::Sum(cr("customer", "c_acctbal")),
        ],
        order_by: vec![cr("customer", "c_nationkey")],
        limit: None,
    });

    t
}

/// Build the full TPC-H-style benchmark at a given scale factor.
pub fn benchmark(scale: f64, seed: u64) -> Benchmark {
    Benchmark {
        name: "tpch".into(),
        catalog: catalog(),
        data: generate_data(scale, seed),
        templates: templates(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn catalog_has_eight_tables_with_keys() {
        let c = catalog();
        assert_eq!(c.table_count(), 8);
        for name in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(c.table_by_name(name).is_some(), "missing {name}");
        }
        assert!(c.table_by_name("orders").unwrap().primary_key.is_some());
        assert!(c.table_by_name("lineitem").unwrap().has_index(0));
    }

    #[test]
    fn data_respects_scale_and_schema() {
        let data = generate_data(0.001, 1);
        let c = catalog();
        assert_eq!(data.len(), c.table_count());
        for (schema, d) in c.tables().zip(&data) {
            assert_eq!(
                schema.columns.len(),
                d.column_count(),
                "table {}",
                schema.name
            );
            assert!(d.row_count() > 0);
        }
        // lineitem is the largest table
        let lineitem_rows = data[7].row_count();
        assert!(data.iter().all(|d| d.row_count() <= lineitem_rows));
        assert_eq!(rows_at_scale("region", 0.001), 5);
        assert!(rows_at_scale("lineitem", 0.001) >= 1000);
    }

    #[test]
    fn twenty_two_templates_instantiate_valid_sql() {
        let ts = templates();
        assert_eq!(ts.len(), 22);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for t in &ts {
            let q = t.instantiate(&mut rng);
            assert!(!q.tables.is_empty());
            assert_eq!(q.joins.len(), t.joins.len());
            let sql = q.to_sql();
            assert!(sql.starts_with("SELECT"), "{sql}");
            assert!(sql.contains("FROM"));
        }
        // ids are 1..=22 and unique
        let ids: std::collections::HashSet<usize> = ts.iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), 22);
    }

    #[test]
    fn benchmark_queries_plan_and_execute() {
        let bench = benchmark(0.0005, 7);
        let db = bench.build_database(DbEnvironment::reference());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        // every template must survive plan + execute on the reference env
        for t in &bench.templates {
            let q = t.instantiate(&mut rng);
            let executed = db
                .execute(&q, &mut rng)
                .unwrap_or_else(|e| panic!("template {} failed: {e}", t.name));
            assert!(executed.total_ms > 0.0, "template {}", t.name);
            assert!(executed.root.node_count() >= 1);
        }
    }
}

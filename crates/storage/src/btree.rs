//! An in-memory B+tree index mapping `i64` keys to [`TupleId`]s.
//!
//! The tree is used two ways by the database substrate:
//!
//! 1. functionally — point lookups and range scans during simulated index
//!    scans, so actual matched-tuple counts are exact;
//! 2. structurally — `height()` and `leaf_page_count()` feed the index-scan
//!    I/O model (root-to-leaf descent = random page reads, leaf traversal =
//!    mostly sequential reads).
//!
//! Duplicate keys are supported (secondary indexes on skewed benchmark
//! columns have heavy duplication).

use crate::page::TupleId;
use crate::StorageError;

/// Default branching factor. Chosen so that a node roughly corresponds to an
/// 8 KiB page holding (key, pointer) pairs of ~32 bytes each.
pub const DEFAULT_ORDER: usize = 256;

/// A B+tree node.
#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Separator keys; child `i` holds keys < `keys[i]`, the last child
        /// holds the rest.
        keys: Vec<i64>,
        children: Vec<Node>,
    },
    Leaf {
        /// Sorted keys.
        keys: Vec<i64>,
        /// One list of tuple ids per key (duplicates collapse onto one entry).
        values: Vec<Vec<TupleId>>,
    },
}

/// An in-memory B+tree.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    root: Node,
    order: usize,
    entry_count: u64,
    distinct_keys: u64,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new(DEFAULT_ORDER)
    }
}

impl BPlusTree {
    /// Create an empty tree with the given branching factor (minimum 4).
    pub fn new(order: usize) -> Self {
        BPlusTree {
            root: Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            },
            order: order.max(4),
            entry_count: 0,
            distinct_keys: 0,
        }
    }

    /// Number of (key, tuple) entries.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> u64 {
        self.distinct_keys
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> u32 {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    /// Number of leaf nodes, a proxy for leaf pages.
    pub fn leaf_page_count(&self) -> u64 {
        fn count(node: &Node) -> u64 {
            match node {
                Node::Leaf { .. } => 1,
                Node::Internal { children, .. } => children.iter().map(count).sum(),
            }
        }
        count(&self.root)
    }

    /// Insert a (key, tuple id) pair.
    pub fn insert(&mut self, key: i64, tid: TupleId) {
        let (split, inserted_new_key) = Self::insert_rec(&mut self.root, key, tid, self.order);
        if let Some((sep, right)) = split {
            // Grow a new root.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    keys: Vec::new(),
                    values: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, *right],
            };
        }
        self.entry_count += 1;
        if inserted_new_key {
            self.distinct_keys += 1;
        }
    }

    /// Recursive insert. Returns `(split, inserted_new_key)` where `split` is
    /// `Some((separator, right_sibling))` if this node overflowed.
    fn insert_rec(
        node: &mut Node,
        key: i64,
        tid: TupleId,
        order: usize,
    ) -> (Option<(i64, Box<Node>)>, bool) {
        match node {
            Node::Leaf { keys, values } => {
                let inserted_new_key = match keys.binary_search(&key) {
                    Ok(pos) => {
                        values[pos].push(tid);
                        false
                    }
                    Err(pos) => {
                        keys.insert(pos, key);
                        values.insert(pos, vec![tid]);
                        true
                    }
                };
                if keys.len() > order {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_values = values.split_off(mid);
                    let sep = right_keys[0];
                    (
                        Some((
                            sep,
                            Box::new(Node::Leaf {
                                keys: right_keys,
                                values: right_values,
                            }),
                        )),
                        inserted_new_key,
                    )
                } else {
                    (None, inserted_new_key)
                }
            }
            Node::Internal { keys, children } => {
                let child_idx = match keys.binary_search(&key) {
                    Ok(pos) => pos + 1,
                    Err(pos) => pos,
                };
                let (split, inserted_new_key) =
                    Self::insert_rec(&mut children[child_idx], key, tid, order);
                if let Some((sep, right)) = split {
                    keys.insert(child_idx, sep);
                    children.insert(child_idx + 1, *right);
                    if keys.len() > order {
                        let mid = keys.len() / 2;
                        let sep_up = keys[mid];
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove the separator moving up
                        let right_children = children.split_off(mid + 1);
                        return (
                            Some((
                                sep_up,
                                Box::new(Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                            )),
                            inserted_new_key,
                        );
                    }
                }
                (None, inserted_new_key)
            }
        }
    }

    /// Exact-match lookup; returns all tuple ids for the key.
    pub fn get(&self, key: i64) -> Result<&[TupleId], StorageError> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(&key) {
                        Ok(pos) => pos + 1,
                        Err(pos) => pos,
                    };
                    node = &children[idx];
                }
                Node::Leaf { keys, values } => {
                    return match keys.binary_search(&key) {
                        Ok(pos) => Ok(&values[pos]),
                        Err(_) => Err(StorageError::KeyNotFound(key)),
                    };
                }
            }
        }
    }

    /// Inclusive range scan; returns matching tuple ids in key order.
    pub fn range(&self, lo: i64, hi: i64) -> Vec<TupleId> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        Self::range_rec(&self.root, lo, hi, &mut out);
        out
    }

    fn range_rec(node: &Node, lo: i64, hi: i64, out: &mut Vec<TupleId>) {
        match node {
            Node::Leaf { keys, values } => {
                let start = keys.partition_point(|&k| k < lo);
                for (k, vs) in keys[start..].iter().zip(&values[start..]) {
                    if *k > hi {
                        break;
                    }
                    out.extend_from_slice(vs);
                }
            }
            Node::Internal { keys, children } => {
                // Visit every child that may overlap [lo, hi].
                let first = keys.partition_point(|&k| k <= lo);
                let first = first.min(children.len() - 1);
                for (i, child) in children.iter().enumerate().skip(first.saturating_sub(1)) {
                    // child i covers keys < keys[i] (or the tail)
                    let child_min_bound = if i == 0 { i64::MIN } else { keys[i - 1] };
                    if child_min_bound > hi {
                        break;
                    }
                    Self::range_rec(child, lo, hi, out);
                }
            }
        }
    }

    /// Number of leaf nodes a range scan over `matched` entries touches.
    pub fn leaf_pages_for_range(&self, matched: u64) -> u64 {
        if self.entry_count == 0 {
            return 1;
        }
        let per_leaf = (self.entry_count as f64 / self.leaf_page_count() as f64).max(1.0);
        ((matched as f64 / per_leaf).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> TupleId {
        TupleId::new(i / 100, (i % 100) as u16)
    }

    #[test]
    fn empty_tree_properties() {
        let t = BPlusTree::new(8);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaf_page_count(), 1);
        assert!(t.get(42).is_err());
        assert!(t.range(0, 100).is_empty());
    }

    #[test]
    fn insert_and_point_lookup() {
        let mut t = BPlusTree::new(8);
        for i in 0..1000 {
            t.insert(i, tid(i as u64));
        }
        assert_eq!(t.len(), 1000);
        for i in (0..1000).step_by(37) {
            let hits = t.get(i).unwrap();
            assert_eq!(hits, &[tid(i as u64)]);
        }
        assert!(t.get(5000).is_err());
    }

    #[test]
    fn duplicate_keys_accumulate() {
        let mut t = BPlusTree::new(8);
        for i in 0..100 {
            t.insert(7, tid(i));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(7).unwrap().len(), 100);
    }

    #[test]
    fn range_scan_returns_sorted_matches() {
        let mut t = BPlusTree::new(8);
        // insert in a scrambled order
        let mut keys: Vec<i64> = (0..2000).collect();
        let mut state = 12345u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(k, tid(k as u64));
        }
        let hits = t.range(500, 699);
        assert_eq!(hits.len(), 200);
        // every returned tid decodes back into the 500..=699 key range
        for h in &hits {
            let k = h.page * 100 + h.slot as u64;
            assert!((500..=699).contains(&(k as i64)));
        }
        assert!(t.range(10, 5).is_empty());
        assert_eq!(t.range(-100, -1).len(), 0);
        assert_eq!(t.range(0, 5000).len(), 2000);
    }

    #[test]
    fn tree_grows_in_height_and_leaves() {
        let mut t = BPlusTree::new(8);
        for i in 0..5000 {
            t.insert(i, tid(i as u64));
        }
        assert!(t.height() >= 3, "height {}", t.height());
        assert!(t.leaf_page_count() > 100);
        // structure invariant: all keys reachable
        assert_eq!(t.range(0, 4999).len(), 5000);
    }

    #[test]
    fn leaf_pages_for_range_scales_with_match_count() {
        let mut t = BPlusTree::new(64);
        for i in 0..10_000 {
            t.insert(i, tid(i as u64));
        }
        let small = t.leaf_pages_for_range(10);
        let large = t.leaf_pages_for_range(5_000);
        assert!(small >= 1);
        assert!(large > small);
        assert!(large <= t.leaf_page_count());
    }

    #[test]
    fn default_order_handles_bulk_load() {
        let mut t = BPlusTree::default();
        for i in 0..20_000 {
            t.insert(i % 997, tid(i as u64));
        }
        assert_eq!(t.len(), 20_000);
        assert_eq!(
            t.distinct_keys() as usize,
            997.min(t.distinct_keys() as usize)
        );
        let hits = t.get(3).unwrap();
        assert!(hits.len() >= 20);
    }
}

//! # qcfe-storage — storage-engine substrate
//!
//! The QCFE paper's "ignored variables" include the *storage structure*
//! (B+tree vs LSM), the *hardware* (disk and memory) and the buffer-cache
//! behaviour of the DBMS. To reproduce the paper without a running
//! PostgreSQL instance, this crate provides a small but real storage engine
//! that the `qcfe-db` execution simulator drives:
//!
//! * [`page`] — slotted pages with a fixed 8 KiB size (PostgreSQL's default),
//! * [`heap`] — heap files built from slotted pages,
//! * [`btree`] — an order-configurable B+tree index mapping integer keys to
//!   tuple ids, with range scans and height/leaf accounting,
//! * [`lsm`] — a simple leveled LSM tree used as the alternative storage
//!   format, exhibiting the higher read-amplification the paper alludes to,
//! * [`buffer`] — an LRU buffer pool that turns logical page accesses into
//!   physical reads depending on `shared_buffers`-style capacity,
//! * [`disk`] — disk/hardware profiles that translate physical I/O counts
//!   into time.
//!
//! The execution simulator asks this crate two kinds of questions: "how many
//! logical/physical page accesses does this access path perform?" and "how
//! long do those accesses take on this hardware?". Both are deterministic,
//! which keeps the experiment harness reproducible.

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod heap;
pub mod lsm;
pub mod page;

pub use btree::BPlusTree;
pub use buffer::{AccessOutcome, BufferPool, BufferPoolStats};
pub use disk::{DiskKind, DiskProfile};
pub use heap::HeapFile;
pub use lsm::LsmTree;
pub use page::{Page, PageId, SlotId, TupleId, PAGE_SIZE};

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The tuple does not fit in a page.
    TupleTooLarge {
        /// Size of the tuple that was rejected.
        size: usize,
        /// Maximum tuple size a page can hold.
        max: usize,
    },
    /// A page id was out of range for the file.
    InvalidPage(u64),
    /// A slot id was out of range for the page.
    InvalidSlot {
        /// Page on which the access was attempted.
        page: u64,
        /// Slot index that was requested.
        slot: u16,
    },
    /// A key was not found where one was required.
    KeyNotFound(i64),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::TupleTooLarge { size, max } => {
                write!(
                    f,
                    "tuple of {size} bytes exceeds the page payload limit of {max} bytes"
                )
            }
            StorageError::InvalidPage(id) => write!(f, "page {id} does not exist"),
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "slot {slot} does not exist on page {page}")
            }
            StorageError::KeyNotFound(k) => write!(f, "key {k} not found"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Physical storage format of a relation, one of the paper's
/// "ignored variables".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StorageFormat {
    /// Heap file with optional B+tree secondary indexes (PostgreSQL-style).
    HeapBTree,
    /// Log-structured merge tree (RocksDB-style), higher read amplification,
    /// cheaper writes.
    Lsm,
}

impl StorageFormat {
    /// All supported formats, useful for environment sampling.
    pub const ALL: [StorageFormat; 2] = [StorageFormat::HeapBTree, StorageFormat::Lsm];

    /// Multiplier applied to point/range read I/O relative to a plain heap +
    /// B+tree layout. LSM pays read amplification across levels.
    pub fn read_amplification(&self) -> f64 {
        match self {
            StorageFormat::HeapBTree => 1.0,
            StorageFormat::Lsm => 1.6,
        }
    }

    /// Multiplier applied to write I/O. LSM writes are cheaper (sequential).
    pub fn write_amplification(&self) -> f64 {
        match self {
            StorageFormat::HeapBTree => 1.0,
            StorageFormat::Lsm => 0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = StorageError::TupleTooLarge {
            size: 9000,
            max: 8000,
        };
        assert!(e.to_string().contains("9000"));
        assert!(StorageError::InvalidPage(7).to_string().contains('7'));
        assert!(StorageError::InvalidSlot { page: 1, slot: 2 }
            .to_string()
            .contains("slot 2"));
        assert!(StorageError::KeyNotFound(-5).to_string().contains("-5"));
    }

    #[test]
    fn storage_formats_have_sensible_amplification() {
        assert_eq!(StorageFormat::HeapBTree.read_amplification(), 1.0);
        assert!(StorageFormat::Lsm.read_amplification() > 1.0);
        assert!(StorageFormat::Lsm.write_amplification() < 1.0);
        assert_eq!(StorageFormat::ALL.len(), 2);
    }
}

//! Disk hardware profiles.
//!
//! The paper's Figure 1 shows that the *same* queries cost 2–3x more or less
//! depending on the database environment; the disk is one of the largest
//! contributors. A [`DiskProfile`] converts physical sequential/random page
//! reads into milliseconds, with per-device ratios taken from typical
//! published latencies (HDD ~ 10 ms seeks, SATA SSD ~ 100 µs, NVMe ~ 20 µs).

use serde::{Deserialize, Serialize};

/// The class of storage device backing the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskKind {
    /// Spinning disk: cheap sequential reads, very expensive random reads.
    Hdd,
    /// SATA solid-state disk.
    SataSsd,
    /// NVMe solid-state disk.
    NvmeSsd,
    /// Everything already in the OS page cache (e.g. a RAM-disk test rig).
    InMemory,
}

impl DiskKind {
    /// All supported kinds (useful when sampling environments).
    pub const ALL: [DiskKind; 4] = [
        DiskKind::Hdd,
        DiskKind::SataSsd,
        DiskKind::NvmeSsd,
        DiskKind::InMemory,
    ];
}

/// Timing model of a disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Device class.
    pub kind: DiskKind,
    /// Milliseconds to read one 8 KiB page sequentially.
    pub sequential_page_ms: f64,
    /// Milliseconds to read one 8 KiB page at a random offset.
    pub random_page_ms: f64,
    /// Milliseconds to write one 8 KiB page.
    pub write_page_ms: f64,
}

impl DiskProfile {
    /// Canonical profile for a device class.
    pub fn of(kind: DiskKind) -> Self {
        match kind {
            DiskKind::Hdd => DiskProfile {
                kind,
                sequential_page_ms: 0.05,
                random_page_ms: 4.0,
                write_page_ms: 0.08,
            },
            DiskKind::SataSsd => DiskProfile {
                kind,
                sequential_page_ms: 0.015,
                random_page_ms: 0.10,
                write_page_ms: 0.03,
            },
            DiskKind::NvmeSsd => DiskProfile {
                kind,
                sequential_page_ms: 0.004,
                random_page_ms: 0.02,
                write_page_ms: 0.008,
            },
            DiskKind::InMemory => DiskProfile {
                kind,
                sequential_page_ms: 0.0005,
                random_page_ms: 0.0008,
                write_page_ms: 0.0005,
            },
        }
    }

    /// Total read time for a mix of sequential and random physical page reads.
    pub fn read_time_ms(&self, sequential_pages: f64, random_pages: f64) -> f64 {
        sequential_pages.max(0.0) * self.sequential_page_ms
            + random_pages.max(0.0) * self.random_page_ms
    }

    /// Total write time for `pages` physical page writes.
    pub fn write_time_ms(&self, pages: f64) -> f64 {
        pages.max(0.0) * self.write_page_ms
    }

    /// Ratio of random to sequential page cost — the physical analogue of
    /// PostgreSQL's `random_page_cost / seq_page_cost`.
    pub fn random_to_sequential_ratio(&self) -> f64 {
        self.random_page_ms / self.sequential_page_ms
    }

    /// Derive a scaled profile, e.g. to model a throttled cloud volume.
    pub fn scaled(&self, factor: f64) -> DiskProfile {
        DiskProfile {
            kind: self.kind,
            sequential_page_ms: self.sequential_page_ms * factor,
            random_page_ms: self.random_page_ms * factor,
            write_page_ms: self.write_page_ms * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_profiles_are_ordered_by_speed() {
        let hdd = DiskProfile::of(DiskKind::Hdd);
        let sata = DiskProfile::of(DiskKind::SataSsd);
        let nvme = DiskProfile::of(DiskKind::NvmeSsd);
        let mem = DiskProfile::of(DiskKind::InMemory);
        assert!(hdd.random_page_ms > sata.random_page_ms);
        assert!(sata.random_page_ms > nvme.random_page_ms);
        assert!(nvme.random_page_ms > mem.random_page_ms);
    }

    #[test]
    fn hdd_has_a_large_random_penalty() {
        let hdd = DiskProfile::of(DiskKind::Hdd);
        assert!(hdd.random_to_sequential_ratio() > 20.0);
        let nvme = DiskProfile::of(DiskKind::NvmeSsd);
        assert!(nvme.random_to_sequential_ratio() < 10.0);
    }

    #[test]
    fn read_time_is_linear_in_page_counts() {
        let d = DiskProfile::of(DiskKind::SataSsd);
        let t1 = d.read_time_ms(100.0, 10.0);
        let t2 = d.read_time_ms(200.0, 20.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert_eq!(d.read_time_ms(0.0, 0.0), 0.0);
        // negative inputs are clamped rather than producing negative time
        assert_eq!(d.read_time_ms(-5.0, -5.0), 0.0);
    }

    #[test]
    fn scaled_profile_multiplies_all_latencies() {
        let d = DiskProfile::of(DiskKind::NvmeSsd).scaled(3.0);
        let base = DiskProfile::of(DiskKind::NvmeSsd);
        assert!((d.sequential_page_ms - 3.0 * base.sequential_page_ms).abs() < 1e-12);
        assert!((d.random_page_ms - 3.0 * base.random_page_ms).abs() < 1e-12);
        assert!((d.write_page_ms - 3.0 * base.write_page_ms).abs() < 1e-12);
        assert_eq!(d.kind, DiskKind::NvmeSsd);
    }

    #[test]
    fn write_time_accumulates() {
        let d = DiskProfile::of(DiskKind::Hdd);
        assert!(d.write_time_ms(10.0) > 0.0);
        assert_eq!(d.write_time_ms(-1.0), 0.0);
    }

    #[test]
    fn all_kinds_enumerated() {
        assert_eq!(DiskKind::ALL.len(), 4);
        for k in DiskKind::ALL {
            let p = DiskProfile::of(k);
            assert!(p.sequential_page_ms > 0.0);
            assert!(p.random_page_ms >= p.sequential_page_ms);
        }
    }
}

//! Heap files: an append-only sequence of slotted pages.

use crate::page::{Page, PageId, TupleId};
use crate::StorageError;

/// A heap file made of slotted pages.
///
/// The execution simulator mostly cares about the page count (sequential
/// scan I/O) and about being able to fetch tuples by [`TupleId`] (index scan
/// I/O); both are provided here along with real tuple storage so tests can
/// verify round-trips.
#[derive(Debug, Clone, Default)]
pub struct HeapFile {
    pages: Vec<Page>,
    tuple_count: u64,
}

impl HeapFile {
    /// Create an empty heap file.
    pub fn new() -> Self {
        HeapFile {
            pages: Vec::new(),
            tuple_count: 0,
        }
    }

    /// Number of pages in the file (at least 1 for cost purposes).
    pub fn page_count(&self) -> u64 {
        self.pages.len().max(1) as u64
    }

    /// Number of tuples stored.
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Append a tuple, allocating a new page when the current one is full.
    pub fn insert(&mut self, payload: &[u8]) -> Result<TupleId, StorageError> {
        if payload.len() > Page::max_tuple_size() {
            return Err(StorageError::TupleTooLarge {
                size: payload.len(),
                max: Page::max_tuple_size(),
            });
        }
        let need_new_page = match self.pages.last() {
            Some(p) => !p.fits(payload.len()),
            None => true,
        };
        if need_new_page {
            let id = self.pages.len() as PageId;
            self.pages.push(Page::new(id));
        }
        let page = self.pages.last_mut().expect("page just ensured");
        let slot = page.insert(payload)?;
        self.tuple_count += 1;
        Ok(TupleId::new(page.id(), slot))
    }

    /// Fetch a tuple by id.
    pub fn get(&self, tid: TupleId) -> Result<&[u8], StorageError> {
        let page = self
            .pages
            .get(tid.page as usize)
            .ok_or(StorageError::InvalidPage(tid.page))?;
        page.get(tid.slot)
    }

    /// Iterate over every tuple in physical order together with its id.
    pub fn scan(&self) -> impl Iterator<Item = (TupleId, &[u8])> {
        self.pages.iter().flat_map(|p| {
            let pid = p.id();
            p.iter()
                .enumerate()
                .map(move |(slot, payload)| (TupleId::new(pid, slot as u16), payload))
        })
    }

    /// Average tuple width in bytes (0 when empty).
    pub fn average_tuple_width(&self) -> f64 {
        if self.tuple_count == 0 {
            return 0.0;
        }
        let bytes: usize = self.pages.iter().map(|p| p.payload_bytes()).sum();
        bytes as f64 / self.tuple_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_heap_reports_one_page_for_costing() {
        let h = HeapFile::new();
        assert_eq!(h.page_count(), 1);
        assert_eq!(h.tuple_count(), 0);
        assert_eq!(h.average_tuple_width(), 0.0);
    }

    #[test]
    fn inserts_spill_across_pages() {
        let mut h = HeapFile::new();
        let tuple = vec![1u8; 1000];
        for _ in 0..50 {
            h.insert(&tuple).unwrap();
        }
        assert_eq!(h.tuple_count(), 50);
        assert!(h.page_count() > 5, "1000-byte tuples: ~8 per page");
        assert!((h.average_tuple_width() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn get_by_tuple_id_roundtrips() {
        let mut h = HeapFile::new();
        let mut ids = Vec::new();
        for i in 0..200u32 {
            ids.push(h.insert(&i.to_le_bytes()).unwrap());
        }
        for (i, tid) in ids.iter().enumerate() {
            let payload = h.get(*tid).unwrap();
            assert_eq!(u32::from_le_bytes(payload.try_into().unwrap()), i as u32);
        }
    }

    #[test]
    fn scan_returns_all_tuples_in_order() {
        let mut h = HeapFile::new();
        for i in 0..500u32 {
            h.insert(&i.to_le_bytes()).unwrap();
        }
        let scanned: Vec<u32> = h
            .scan()
            .map(|(_, p)| u32::from_le_bytes(p.try_into().unwrap()))
            .collect();
        assert_eq!(scanned.len(), 500);
        assert!(scanned.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn invalid_page_access_errors() {
        let h = HeapFile::new();
        assert_eq!(
            h.get(TupleId::new(3, 0)).unwrap_err(),
            StorageError::InvalidPage(3)
        );
    }

    #[test]
    fn oversized_tuple_rejected_without_allocating() {
        let mut h = HeapFile::new();
        assert!(h.insert(&vec![0u8; 10_000]).is_err());
        assert_eq!(h.tuple_count(), 0);
    }
}

//! LRU buffer pool.
//!
//! The buffer pool converts *logical* page accesses into *physical* reads:
//! pages that are already cached cost only CPU, pages that miss cost a disk
//! read. Its capacity is driven by the `shared_buffers` knob of the database
//! environment, which is one of the "ignored variables" whose influence the
//! feature snapshot has to capture.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::page::PageId;

/// Result of touching one page through the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page was already resident.
    Hit,
    /// The page had to be read from disk (and possibly evicted another page).
    Miss,
}

/// Aggregate buffer pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Number of logical accesses.
    pub accesses: u64,
    /// Number of hits.
    pub hits: u64,
    /// Number of misses (physical reads).
    pub misses: u64,
    /// Number of evictions performed.
    pub evictions: u64,
}

impl BufferPoolStats {
    /// Hit ratio in `[0, 1]` (1.0 when there were no accesses).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A table-aware page key: pages of different relations must not collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferKey {
    /// Identifier of the relation (or index) the page belongs to.
    pub relation: u32,
    /// Page number within the relation.
    pub page: PageId,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Map from key to LRU clock value.
    resident: HashMap<BufferKey, u64>,
    clock: u64,
    stats: BufferPoolStats,
}

/// An LRU buffer pool with a fixed page capacity.
///
/// The pool is thread-safe (interior mutability behind a mutex) so the
/// workload collector can label queries from multiple threads.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Create a pool with room for `capacity` pages (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity: capacity.max(1),
            inner: Mutex::new(PoolInner::default()),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Touch a single page, returning whether it hit or missed.
    pub fn access(&self, relation: u32, page: PageId) -> AccessOutcome {
        let mut inner = self.inner.lock().expect("buffer pool mutex poisoned");
        inner.clock += 1;
        inner.stats.accesses += 1;
        let key = BufferKey { relation, page };
        let clock = inner.clock;
        if let std::collections::hash_map::Entry::Occupied(mut e) = inner.resident.entry(key) {
            e.insert(clock);
            inner.stats.hits += 1;
            return AccessOutcome::Hit;
        }
        inner.stats.misses += 1;
        if inner.resident.len() >= self.capacity {
            // Evict the least recently used page.
            if let Some((&victim, _)) = inner.resident.iter().min_by_key(|(_, &ts)| ts) {
                inner.resident.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.resident.insert(key, clock);
        AccessOutcome::Miss
    }

    /// Touch a run of sequential pages `[start, start + count)` of one
    /// relation, returning the number of physical reads incurred.
    pub fn access_sequential(&self, relation: u32, start: PageId, count: u64) -> u64 {
        let mut misses = 0;
        for p in start..start.saturating_add(count) {
            if self.access(relation, p) == AccessOutcome::Miss {
                misses += 1;
            }
        }
        misses
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> BufferPoolStats {
        self.inner.lock().expect("buffer pool mutex poisoned").stats
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner
            .lock()
            .expect("buffer pool mutex poisoned")
            .resident
            .len()
    }

    /// Drop all cached pages and reset statistics (used between experiment
    /// configurations so environments do not leak cache state into each
    /// other).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("buffer pool mutex poisoned");
        inner.resident.clear();
        inner.stats = BufferPoolStats::default();
        inner.clock = 0;
    }

    /// Estimate, without touching the pool, what fraction of `pages_needed`
    /// accesses would physically hit disk for a relation of `relation_pages`
    /// pages given the pool capacity — the analytical shortcut used by the
    /// planner (Mackert–Lohman style approximation).
    pub fn expected_miss_fraction(&self, relation_pages: u64, pages_needed: u64) -> f64 {
        if pages_needed == 0 {
            return 0.0;
        }
        let cap = self.capacity as f64;
        let rel = relation_pages.max(1) as f64;
        if rel <= cap {
            // The whole relation fits: only the first touch of each page misses.
            (rel.min(pages_needed as f64) / pages_needed as f64).min(1.0)
        } else {
            // Larger than the cache: assume the cached fraction hits.
            (1.0 - cap / rel).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let pool = BufferPool::new(10);
        assert_eq!(pool.access(0, 1), AccessOutcome::Miss);
        assert_eq!(pool.access(0, 1), AccessOutcome::Hit);
        let s = pool.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let pool = BufferPool::new(3);
        for p in 0..3 {
            pool.access(0, p);
        }
        assert_eq!(pool.resident_pages(), 3);
        // touch page 0 so it becomes most recent; page 1 is now LRU
        pool.access(0, 0);
        pool.access(0, 99); // evicts page 1
        assert_eq!(pool.resident_pages(), 3);
        assert_eq!(pool.access(0, 0), AccessOutcome::Hit);
        assert_eq!(
            pool.access(0, 1),
            AccessOutcome::Miss,
            "page 1 must have been evicted"
        );
        assert!(pool.stats().evictions >= 1);
    }

    #[test]
    fn relations_do_not_collide() {
        let pool = BufferPool::new(10);
        pool.access(1, 5);
        assert_eq!(pool.access(2, 5), AccessOutcome::Miss);
        assert_eq!(pool.access(1, 5), AccessOutcome::Hit);
    }

    #[test]
    fn sequential_access_counts_misses() {
        let pool = BufferPool::new(100);
        let misses = pool.access_sequential(0, 0, 50);
        assert_eq!(misses, 50);
        let misses = pool.access_sequential(0, 0, 50);
        assert_eq!(misses, 0, "second scan is fully cached");
        let misses = pool.access_sequential(0, 0, 200);
        assert!(misses >= 150, "pages beyond capacity must miss");
    }

    #[test]
    fn clear_resets_everything() {
        let pool = BufferPool::new(4);
        pool.access_sequential(0, 0, 10);
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.stats(), BufferPoolStats::default());
        assert_eq!(pool.stats().hit_ratio(), 1.0);
    }

    #[test]
    fn expected_miss_fraction_behaviour() {
        let pool = BufferPool::new(100);
        // relation fits in cache: repeated scans mostly hit
        let f = pool.expected_miss_fraction(50, 500);
        assert!(f <= 0.1 + 1e-9);
        // relation much larger than cache: most accesses miss
        let f = pool.expected_miss_fraction(10_000, 10_000);
        assert!(f > 0.9);
        assert_eq!(pool.expected_miss_fraction(10, 0), 0.0);
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
    }
}

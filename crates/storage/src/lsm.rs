//! A simple leveled LSM tree.
//!
//! This is the "alternative storage structure" of the paper's ignored
//! variables. It is deliberately small: an in-memory memtable plus a list of
//! sorted immutable runs per level, with size-tiered flush/compaction. What
//! the cost simulator needs from it is (a) functional reads so actual
//! cardinalities stay exact and (b) structural read-amplification numbers
//! (how many runs a lookup has to consult).

use crate::page::TupleId;

/// Entries per memtable before it is flushed into level 0.
pub const DEFAULT_MEMTABLE_CAPACITY: usize = 4096;

/// Growth factor between levels.
pub const LEVEL_FANOUT: usize = 4;

/// One immutable sorted run.
#[derive(Debug, Clone, Default)]
struct SortedRun {
    /// Sorted (key, tuple id) pairs.
    entries: Vec<(i64, TupleId)>,
}

impl SortedRun {
    fn get(&self, key: i64) -> Vec<TupleId> {
        let start = self.entries.partition_point(|(k, _)| *k < key);
        self.entries[start..]
            .iter()
            .take_while(|(k, _)| *k == key)
            .map(|(_, t)| *t)
            .collect()
    }

    fn range(&self, lo: i64, hi: i64, out: &mut Vec<TupleId>) {
        let start = self.entries.partition_point(|(k, _)| *k < lo);
        for (k, t) in &self.entries[start..] {
            if *k > hi {
                break;
            }
            out.push(*t);
        }
    }
}

/// A leveled LSM tree over `i64` keys.
#[derive(Debug, Clone)]
pub struct LsmTree {
    memtable: Vec<(i64, TupleId)>,
    memtable_capacity: usize,
    /// `levels[0]` may contain several overlapping runs; deeper levels hold
    /// one (conceptually compacted) run each in this simplified model.
    levels: Vec<Vec<SortedRun>>,
    entry_count: u64,
    flush_count: u64,
    compaction_count: u64,
}

impl Default for LsmTree {
    fn default() -> Self {
        Self::new(DEFAULT_MEMTABLE_CAPACITY)
    }
}

impl LsmTree {
    /// Create an empty tree with the given memtable capacity (minimum 16).
    pub fn new(memtable_capacity: usize) -> Self {
        LsmTree {
            memtable: Vec::new(),
            memtable_capacity: memtable_capacity.max(16),
            levels: Vec::new(),
            entry_count: 0,
            flush_count: 0,
            compaction_count: 0,
        }
    }

    /// Total number of entries.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Number of levels currently materialised.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of memtable flushes so far.
    pub fn flush_count(&self) -> u64 {
        self.flush_count
    }

    /// Number of compactions so far.
    pub fn compaction_count(&self) -> u64 {
        self.compaction_count
    }

    /// Total number of sorted runs a point lookup may need to consult
    /// (memtable + all runs). This is the read-amplification proxy used by
    /// the cost model.
    pub fn run_count(&self) -> usize {
        1 + self.levels.iter().map(|l| l.len()).sum::<usize>()
    }

    /// Insert a (key, tuple id) pair.
    pub fn insert(&mut self, key: i64, tid: TupleId) {
        self.memtable.push((key, tid));
        self.entry_count += 1;
        if self.memtable.len() >= self.memtable_capacity {
            self.flush();
        }
    }

    /// Flush the memtable into level 0 and trigger compaction if needed.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let mut entries = std::mem::take(&mut self.memtable);
        entries.sort_unstable_by_key(|(k, _)| *k);
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(SortedRun { entries });
        self.flush_count += 1;
        self.maybe_compact(0);
    }

    /// Size-tiered compaction: when a level accumulates `LEVEL_FANOUT` runs
    /// they are merged into a single run one level down.
    fn maybe_compact(&mut self, level: usize) {
        if self.levels[level].len() < LEVEL_FANOUT {
            return;
        }
        let runs = std::mem::take(&mut self.levels[level]);
        let mut merged: Vec<(i64, TupleId)> = runs.into_iter().flat_map(|r| r.entries).collect();
        merged.sort_unstable_by_key(|(k, _)| *k);
        if self.levels.len() <= level + 1 {
            self.levels.push(Vec::new());
        }
        self.levels[level + 1].push(SortedRun { entries: merged });
        self.compaction_count += 1;
        self.maybe_compact(level + 1);
    }

    /// Point lookup: all tuple ids stored under `key`.
    pub fn get(&self, key: i64) -> Vec<TupleId> {
        let mut out: Vec<TupleId> = self
            .memtable
            .iter()
            .filter(|(k, _)| *k == key)
            .map(|(_, t)| *t)
            .collect();
        for level in &self.levels {
            for run in level {
                out.extend(run.get(key));
            }
        }
        out
    }

    /// Inclusive range scan.
    pub fn range(&self, lo: i64, hi: i64) -> Vec<TupleId> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        for (k, t) in &self.memtable {
            if (lo..=hi).contains(k) {
                out.push(*t);
            }
        }
        for level in &self.levels {
            for run in level {
                run.range(lo, hi, &mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> TupleId {
        TupleId::new(i, 0)
    }

    #[test]
    fn empty_tree() {
        let t = LsmTree::default();
        assert!(t.is_empty());
        assert_eq!(t.run_count(), 1);
        assert!(t.get(1).is_empty());
        assert!(t.range(0, 10).is_empty());
    }

    #[test]
    fn inserts_are_readable_before_and_after_flush() {
        let mut t = LsmTree::new(16);
        for i in 0..100 {
            t.insert(i, tid(i as u64));
        }
        assert_eq!(t.len(), 100);
        assert!(t.flush_count() > 0, "small memtable must have flushed");
        for i in (0..100).step_by(7) {
            assert_eq!(t.get(i), vec![tid(i as u64)]);
        }
    }

    #[test]
    fn range_scan_finds_all_matches_across_runs() {
        let mut t = LsmTree::new(32);
        for i in (0..1000).rev() {
            t.insert(i, tid(i as u64));
        }
        let hits = t.range(100, 199);
        assert_eq!(hits.len(), 100);
        assert!(t.range(2000, 3000).is_empty());
        assert!(t.range(50, 10).is_empty());
    }

    #[test]
    fn duplicates_are_preserved() {
        let mut t = LsmTree::new(16);
        for i in 0..64 {
            t.insert(5, tid(i));
        }
        assert_eq!(t.get(5).len(), 64);
    }

    #[test]
    fn compaction_bounds_run_count() {
        let mut t = LsmTree::new(16);
        for i in 0..10_000 {
            t.insert(i % 200, tid(i as u64));
        }
        assert!(t.compaction_count() > 0);
        // with fanout 4 and periodic compaction, runs stay manageable
        assert!(t.run_count() < 40, "run count {}", t.run_count());
        assert!(t.level_count() >= 2);
        // all data still present
        assert_eq!(t.range(0, 199).len(), 10_000);
    }

    #[test]
    fn explicit_flush_is_idempotent_when_memtable_empty() {
        let mut t = LsmTree::new(1000);
        t.insert(1, tid(1));
        t.flush();
        let flushes = t.flush_count();
        t.flush();
        assert_eq!(t.flush_count(), flushes);
        assert_eq!(t.get(1), vec![tid(1)]);
    }
}

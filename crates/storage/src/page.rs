//! Slotted pages.
//!
//! Pages follow the classic slotted layout: a header with the slot count and
//! the free-space pointer, a slot directory growing from the front, and tuple
//! payloads growing from the back. The page size is fixed at 8 KiB, matching
//! PostgreSQL's default block size so page-count arithmetic in the cost model
//! lines up with the formulas the paper quotes.

use crate::StorageError;
use serde::{Deserialize, Serialize};

/// Page size in bytes (PostgreSQL default block size).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved for the page header.
pub const PAGE_HEADER_SIZE: usize = 24;

/// Bytes used per slot directory entry (offset + length).
pub const SLOT_ENTRY_SIZE: usize = 4;

/// Identifier of a page within a file.
pub type PageId = u64;

/// Identifier of a slot within a page.
pub type SlotId = u16;

/// A tuple's physical address: page plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId {
    /// The page holding the tuple.
    pub page: PageId,
    /// The slot within the page.
    pub slot: SlotId,
}

impl TupleId {
    /// Construct a tuple id.
    pub fn new(page: PageId, slot: SlotId) -> Self {
        TupleId { page, slot }
    }
}

/// A single slot directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Byte offset of the tuple payload from the start of the page.
    offset: u16,
    /// Length of the tuple payload.
    length: u16,
}

/// An in-memory slotted page.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    /// Raw page image. Tuples grow from the back.
    data: Vec<u8>,
    /// Slot directory (kept structured rather than re-parsed from bytes).
    slots: Vec<Slot>,
    /// Offset of the first payload byte (free space ends here).
    free_end: usize,
}

impl Page {
    /// Create an empty page with the given id.
    pub fn new(id: PageId) -> Self {
        Page {
            id,
            data: vec![0u8; PAGE_SIZE],
            slots: Vec::new(),
            free_end: PAGE_SIZE,
        }
    }

    /// The page id.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Number of tuples stored on the page.
    pub fn tuple_count(&self) -> usize {
        self.slots.len()
    }

    /// Remaining free bytes usable for a new tuple (accounting for the slot
    /// directory entry the tuple would need).
    pub fn free_space(&self) -> usize {
        let used_front = PAGE_HEADER_SIZE + self.slots.len() * SLOT_ENTRY_SIZE;
        self.free_end
            .saturating_sub(used_front)
            .saturating_sub(SLOT_ENTRY_SIZE)
    }

    /// Maximum payload a fresh page can hold.
    pub fn max_tuple_size() -> usize {
        PAGE_SIZE - PAGE_HEADER_SIZE - SLOT_ENTRY_SIZE
    }

    /// Whether a tuple of `size` bytes fits on the page.
    pub fn fits(&self, size: usize) -> bool {
        size <= self.free_space()
    }

    /// Insert a tuple payload, returning its slot id.
    pub fn insert(&mut self, payload: &[u8]) -> Result<SlotId, StorageError> {
        if payload.len() > Self::max_tuple_size() {
            return Err(StorageError::TupleTooLarge {
                size: payload.len(),
                max: Self::max_tuple_size(),
            });
        }
        if !self.fits(payload.len()) {
            return Err(StorageError::TupleTooLarge {
                size: payload.len(),
                max: self.free_space(),
            });
        }
        let start = self.free_end - payload.len();
        self.data[start..self.free_end].copy_from_slice(payload);
        self.free_end = start;
        let slot = Slot {
            offset: start as u16,
            length: payload.len() as u16,
        };
        self.slots.push(slot);
        Ok((self.slots.len() - 1) as SlotId)
    }

    /// Read a tuple payload by slot id.
    pub fn get(&self, slot: SlotId) -> Result<&[u8], StorageError> {
        let s = self
            .slots
            .get(slot as usize)
            .ok_or(StorageError::InvalidSlot {
                page: self.id,
                slot,
            })?;
        Ok(&self.data[s.offset as usize..(s.offset + s.length) as usize])
    }

    /// Iterate over all tuple payloads in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.slots
            .iter()
            .map(move |s| &self.data[s.offset as usize..(s.offset + s.length) as usize])
    }

    /// Bytes of payload stored (excluding header and slot directory).
    pub fn payload_bytes(&self) -> usize {
        PAGE_SIZE - self.free_end
    }
}

/// How many pages a relation of `tuple_count` tuples with an average tuple
/// width of `tuple_width` bytes occupies, assuming the standard fill factor.
pub fn pages_for(tuple_count: u64, tuple_width: usize) -> u64 {
    if tuple_count == 0 {
        return 1;
    }
    let usable = (PAGE_SIZE - PAGE_HEADER_SIZE) as f64 * 0.95;
    let per_tuple = (tuple_width + SLOT_ENTRY_SIZE) as f64;
    let tuples_per_page = (usable / per_tuple).floor().max(1.0) as u64;
    tuple_count.div_ceil(tuples_per_page)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_empty() {
        let p = Page::new(3);
        assert_eq!(p.id(), 3);
        assert_eq!(p.tuple_count(), 0);
        assert_eq!(p.payload_bytes(), 0);
        assert!(p.free_space() > 8000);
    }

    #[test]
    fn insert_then_get_roundtrips() {
        let mut p = Page::new(0);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!!");
        assert_eq!(p.tuple_count(), 2);
        assert_eq!(p.payload_bytes(), 12);
    }

    #[test]
    fn iteration_preserves_insert_order() {
        let mut p = Page::new(0);
        for i in 0..10u8 {
            p.insert(&[i; 16]).unwrap();
        }
        let collected: Vec<Vec<u8>> = p.iter().map(|t| t.to_vec()).collect();
        assert_eq!(collected.len(), 10);
        for (i, t) in collected.iter().enumerate() {
            assert_eq!(t[0], i as u8);
        }
    }

    #[test]
    fn oversized_tuple_is_rejected() {
        let mut p = Page::new(0);
        let err = p.insert(&vec![0u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, StorageError::TupleTooLarge { .. }));
    }

    #[test]
    fn page_fills_up_and_rejects_overflow() {
        let mut p = Page::new(0);
        let tuple = vec![7u8; 1000];
        let mut inserted = 0;
        while p.fits(tuple.len()) {
            p.insert(&tuple).unwrap();
            inserted += 1;
        }
        assert!(
            inserted >= 7,
            "expected at least 7 KB of payload, got {inserted}"
        );
        assert!(p.insert(&tuple).is_err());
        // existing data is still intact after the failed insert
        assert_eq!(p.get(0).unwrap(), &tuple[..]);
    }

    #[test]
    fn invalid_slot_access_errors() {
        let p = Page::new(9);
        assert_eq!(
            p.get(4).unwrap_err(),
            StorageError::InvalidSlot { page: 9, slot: 4 }
        );
    }

    #[test]
    fn pages_for_matches_capacity_arithmetic() {
        assert_eq!(pages_for(0, 100), 1);
        // 100-byte tuples: ~74 per page
        let pages = pages_for(10_000, 100);
        assert!((130..=140).contains(&pages), "pages {pages}");
        // wider tuples need more pages
        assert!(pages_for(10_000, 400) > pages);
        // monotone in tuple count
        assert!(pages_for(20_000, 100) >= pages);
    }

    #[test]
    fn tuple_id_ordering_is_page_major() {
        let a = TupleId::new(1, 500);
        let b = TupleId::new(2, 0);
        assert!(a < b);
    }
}

//! The `Database` object: catalog + data + statistics + physical structures
//! + environment, with planning and simulated execution entry points.

use crate::catalog::{Catalog, TableId, TableSchema};
use crate::data::{ColumnVector, TableData};
use crate::env::DbEnvironment;
use crate::executor::{execute_plan, ExecutedQuery};
use crate::plan::PlanNode;
use crate::planner::plan_query;
use crate::query::Query;
use crate::stats::TableStats;
use qcfe_storage::{BPlusTree, BufferPool, TupleId};
use rand::Rng;
use std::collections::HashMap;

/// Errors raised when planning or executing a query against a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist on its table.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// The query references no tables.
    EmptyQuery,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column: {table}.{column}")
            }
            DbError::EmptyQuery => write!(f, "query references no tables"),
        }
    }
}

impl std::error::Error for DbError {}

/// Structural metadata of a B+tree index used by the I/O model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexMeta {
    /// Tree height (root to leaf).
    pub height: u32,
    /// Number of leaf pages.
    pub leaf_pages: u64,
}

/// A fully-populated single-node database instance.
#[derive(Debug)]
pub struct Database {
    catalog: Catalog,
    data: Vec<TableData>,
    stats: Vec<TableStats>,
    env: DbEnvironment,
    buffer: BufferPool,
    /// Physical B+tree indexes on integer columns, keyed by (table, column).
    indexes: HashMap<(TableId, usize), BPlusTree>,
}

impl Database {
    /// Build a database from a catalog and per-table data (in table-id
    /// order), analysing statistics and building indexes on the indexed
    /// integer columns.
    ///
    /// # Panics
    /// Panics if `data` does not provide one `TableData` per catalog table.
    pub fn build(catalog: Catalog, data: Vec<TableData>, env: DbEnvironment) -> Self {
        assert_eq!(
            catalog.table_count(),
            data.len(),
            "need exactly one TableData per catalog table"
        );
        let stats: Vec<TableStats> = catalog
            .tables()
            .zip(&data)
            .map(|(schema, d)| TableStats::analyze(d, schema.tuple_width()))
            .collect();

        let mut indexes = HashMap::new();
        for schema in catalog.tables() {
            let table_data = &data[schema.id as usize];
            for &col in &schema.indexed_columns {
                if let ColumnVector::Int(values) = table_data.column(col) {
                    let mut tree = BPlusTree::default();
                    for (row, &key) in values.iter().enumerate() {
                        tree.insert(key, TupleId::new((row / 64) as u64, (row % 64) as u16));
                    }
                    indexes.insert((schema.id, col), tree);
                }
            }
        }

        let buffer = BufferPool::new(env.buffer_pool_pages());
        Database {
            catalog,
            data,
            stats,
            env,
            buffer,
            indexes,
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The active environment.
    pub fn environment(&self) -> &DbEnvironment {
        &self.env
    }

    /// The buffer pool.
    pub fn buffer(&self) -> &BufferPool {
        &self.buffer
    }

    /// Switch to a different environment (new knobs / hardware / storage
    /// format). The buffer pool is resized and cleared; data and statistics
    /// are unchanged, mirroring `ALTER SYSTEM` + restart.
    pub fn set_environment(&mut self, env: DbEnvironment) {
        self.buffer = BufferPool::new(env.buffer_pool_pages());
        self.env = env;
    }

    /// Schema of a table by name.
    pub fn schema(&self, table: &str) -> Result<&TableSchema, DbError> {
        self.catalog
            .table_by_name(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))
    }

    /// Statistics of a table by name.
    pub fn table_stats(&self, table: &str) -> Result<&TableStats, DbError> {
        let schema = self.schema(table)?;
        Ok(&self.stats[schema.id as usize])
    }

    /// Data of a table by name.
    pub fn table_data(&self, table: &str) -> Result<&TableData, DbError> {
        let schema = self.schema(table)?;
        Ok(&self.data[schema.id as usize])
    }

    /// Resolve a column name to its index, with a helpful error.
    pub fn column_index(&self, table: &str, column: &str) -> Result<usize, DbError> {
        let schema = self.schema(table)?;
        schema
            .column_index(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })
    }

    /// Physical index metadata for `(table, column)`, falling back to an
    /// analytic estimate when no physical tree was built (e.g. non-integer
    /// columns).
    pub fn index_meta(&self, table: &str, column: &str) -> Result<IndexMeta, DbError> {
        let schema = self.schema(table)?;
        let col = self.column_index(table, column)?;
        if let Some(tree) = self.indexes.get(&(schema.id, col)) {
            return Ok(IndexMeta {
                height: tree.height(),
                leaf_pages: tree.leaf_page_count(),
            });
        }
        // Analytic fallback: fanout-256 tree over row_count entries.
        let rows = self.stats[schema.id as usize].row_count.max(1) as f64;
        let height = (rows.ln() / 256f64.ln()).ceil().max(1.0) as u32;
        let leaf_pages = (rows / 256.0).ceil().max(1.0) as u64;
        Ok(IndexMeta { height, leaf_pages })
    }

    /// Physical B+tree for `(table, column)`, when one was built.
    pub fn index(&self, table: &str, column: &str) -> Option<&BPlusTree> {
        let schema = self.catalog.table_by_name(table)?;
        let col = schema.column_index(column)?;
        self.indexes.get(&(schema.id, col))
    }

    /// Whether `(table, column)` carries an index.
    pub fn has_index(&self, table: &str, column: &str) -> bool {
        match (self.schema(table), self.column_index(table, column)) {
            (Ok(schema), Ok(col)) => schema.has_index(col),
            _ => false,
        }
    }

    /// Plan a query with the cost-based planner under the current
    /// environment's knobs.
    pub fn plan(&self, query: &Query) -> Result<PlanNode, DbError> {
        plan_query(self, query)
    }

    /// Plan and "execute" a query: the execution simulator computes actual
    /// cardinalities from the stored data and actual per-operator latencies
    /// from the environment's true cost coefficients.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        query: &Query,
        rng: &mut R,
    ) -> Result<ExecutedQuery, DbError> {
        let plan = self.plan(query)?;
        Ok(execute_plan(self, &plan, rng))
    }

    /// Total number of rows across all tables (sanity / reporting).
    pub fn total_rows(&self) -> u64 {
        self.stats.iter().map(|s| s.row_count).sum()
    }
}

//! Value and data-type primitives shared by the catalog, expressions and the
//! execution simulator.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (used for decimals such as prices).
    Float,
    /// Variable-length string.
    Text,
    /// Date stored as days since 1970-01-01.
    Date,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Approximate on-disk width in bytes, used for tuple-width estimates.
    pub fn width_bytes(&self) -> usize {
        match self {
            DataType::Int => 8,
            DataType::Float => 8,
            DataType::Text => 32,
            DataType::Date => 8,
            DataType::Bool => 1,
        }
    }

    /// Whether values of this type have a natural total order usable for
    /// histograms and B+tree indexes.
    pub fn is_orderable(&self) -> bool {
        !matches!(self, DataType::Bool)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
            DataType::Bool => "BOOL",
        };
        write!(f, "{s}")
    }
}

/// A single value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// Text value.
    Text(String),
    /// Date value, days since epoch.
    Date(i64),
    /// Boolean value.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// The value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Null => None,
        }
    }

    /// Is this the SQL NULL value?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (ints, floats, dates and bools coerce;
    /// text and NULL do not).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Date(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Text(_) | Value::Null => None,
        }
    }

    /// Integer view of the value if it is integer-like.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            _ => None,
        }
    }

    /// Compare two values with SQL-ish semantics: NULL compares as `None`,
    /// numeric types compare numerically, text compares lexicographically.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Render the value as a SQL literal.
    pub fn to_sql(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v:.4}"),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Date(d) => format!("'{}'", format_date(*d)),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Null => "NULL".to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql())
    }
}

/// Render a days-since-epoch date as `YYYY-MM-DD` (civil-from-days
/// algorithm, proleptic Gregorian calendar).
pub fn format_date(days_since_epoch: i64) -> String {
    let z = days_since_epoch + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parse a `YYYY-MM-DD` date into days since epoch (inverse of
/// [`format_date`]); returns `None` on malformed input.
pub fn parse_date(s: &str) -> Option<i64> {
    let mut parts = s.split('-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: i64 = parts.next()?.parse().ok()?;
    let d: i64 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let y_adj = if m <= 2 { y - 1 } else { y };
    let era = if y_adj >= 0 { y_adj } else { y_adj - 399 } / 400;
    let yoe = y_adj - era * 400;
    let mp = if m > 2 { m - 3 } else { m + 9 };
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some(era * 146_097 + doe - 719_468)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_orderability() {
        assert_eq!(DataType::Int.width_bytes(), 8);
        assert_eq!(DataType::Text.width_bytes(), 32);
        assert!(DataType::Date.is_orderable());
        assert!(!DataType::Bool.is_orderable());
        assert_eq!(DataType::Float.to_string(), "FLOAT");
    }

    #[test]
    fn value_type_and_coercions() {
        assert_eq!(Value::Int(3).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Date(10).as_i64(), Some(10));
        assert_eq!(Value::Float(1.5).as_i64(), None);
    }

    #[test]
    fn comparisons_follow_sql_semantics() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Text("abc".into()).compare(&Value::Text("abd".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert_eq!(
            Value::Bool(false).compare(&Value::Bool(true)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_rendering() {
        assert_eq!(Value::Int(42).to_sql(), "42");
        assert_eq!(Value::Text("o'hara".into()).to_sql(), "'o''hara'");
        assert_eq!(Value::Bool(true).to_sql(), "TRUE");
        assert_eq!(Value::Null.to_sql(), "NULL");
        assert_eq!(Value::Float(2.5).to_sql(), "2.5000");
        assert_eq!(format!("{}", Value::Int(7)), "7");
    }

    #[test]
    fn date_roundtrip() {
        for &(days, text) in &[
            (0, "1970-01-01"),
            (365, "1971-01-01"),
            (19_723, "2024-01-01"),
            (8_400, "1992-12-31"),
        ] {
            assert_eq!(format_date(days), text);
            assert_eq!(parse_date(text), Some(days));
        }
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("2024-13-01"), None);
    }

    #[test]
    fn date_value_renders_as_quoted_literal() {
        assert_eq!(Value::Date(0).to_sql(), "'1970-01-01'");
    }
}

//! Catalog: schemas of tables and columns, index definitions.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a table within a catalog.
pub type TableId = u32;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (lower case by convention).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
        }
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table id assigned by the catalog.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Column indices that carry a secondary B+tree index (the primary key,
    /// if any, is included here).
    pub indexed_columns: Vec<usize>,
    /// Index of the primary-key column, when the table has a single-column
    /// primary key.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Whether the column at `idx` has an index.
    pub fn has_index(&self, idx: usize) -> bool {
        self.indexed_columns.contains(&idx)
    }

    /// Approximate width of one tuple in bytes.
    pub fn tuple_width(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.data_type.width_bytes())
            .sum::<usize>()
            + 24
    }
}

/// Builder-style table definition used by the workload generators.
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<Column>,
    indexed: Vec<String>,
    primary_key: Option<String>,
}

impl TableBuilder {
    /// Start defining a table.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a column.
    pub fn column(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.columns.push(Column::new(name, data_type));
        self
    }

    /// Mark a column as indexed.
    pub fn index(mut self, column: impl Into<String>) -> Self {
        self.indexed.push(column.into());
        self
    }

    /// Mark a column as the primary key (implies an index).
    pub fn primary_key(mut self, column: impl Into<String>) -> Self {
        let column = column.into();
        self.indexed.push(column.clone());
        self.primary_key = Some(column);
        self
    }

    /// Finalise into a schema with the given id.
    ///
    /// # Panics
    /// Panics if an indexed or primary-key column does not exist.
    pub fn build(self, id: TableId) -> TableSchema {
        let col_idx = |name: &str| {
            self.columns
                .iter()
                .position(|c| c.name == name)
                .unwrap_or_else(|| panic!("column {name} not defined on table {}", self.name))
        };
        let mut indexed_columns: Vec<usize> = self.indexed.iter().map(|n| col_idx(n)).collect();
        indexed_columns.sort_unstable();
        indexed_columns.dedup();
        let primary_key = self.primary_key.as_deref().map(col_idx);
        TableSchema {
            id,
            name: self.name,
            columns: self.columns,
            indexed_columns,
            primary_key,
        }
    }
}

/// The catalog of all tables in a database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table built from a [`TableBuilder`]; returns its id.
    pub fn add_table(&mut self, builder: TableBuilder) -> TableId {
        let id = self.tables.len() as TableId;
        let schema = builder.build(id);
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(schema);
        id
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Table schema by id.
    pub fn table(&self, id: TableId) -> &TableSchema {
        &self.tables[id as usize]
    }

    /// Table schema by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableSchema> {
        self.by_name.get(name).map(|&id| self.table(id))
    }

    /// Iterate over all table schemas.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.iter()
    }

    /// All table names, in id order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name.as_str()).collect()
    }

    /// Total number of columns across all tables (used to size one-hot
    /// encodings).
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("orders")
                .column("o_orderkey", DataType::Int)
                .column("o_custkey", DataType::Int)
                .column("o_totalprice", DataType::Float)
                .column("o_orderdate", DataType::Date)
                .primary_key("o_orderkey")
                .index("o_custkey"),
        );
        c.add_table(
            TableBuilder::new("customer")
                .column("c_custkey", DataType::Int)
                .column("c_name", DataType::Text)
                .primary_key("c_custkey"),
        );
        c
    }

    #[test]
    fn catalog_lookup_by_name_and_id() {
        let c = sample_catalog();
        assert_eq!(c.table_count(), 2);
        let orders = c.table_by_name("orders").unwrap();
        assert_eq!(orders.id, 0);
        assert_eq!(c.table(1).name, "customer");
        assert!(c.table_by_name("nation").is_none());
        assert_eq!(c.table_names(), vec!["orders", "customer"]);
        assert_eq!(c.total_columns(), 6);
    }

    #[test]
    fn schema_column_helpers() {
        let c = sample_catalog();
        let orders = c.table_by_name("orders").unwrap();
        assert_eq!(orders.column_index("o_custkey"), Some(1));
        assert_eq!(orders.column_index("missing"), None);
        assert_eq!(orders.column(2).data_type, DataType::Float);
        assert!(orders.has_index(0));
        assert!(orders.has_index(1));
        assert!(!orders.has_index(2));
        assert_eq!(orders.primary_key, Some(0));
        assert!(orders.tuple_width() > 32);
    }

    #[test]
    fn indexed_columns_are_deduplicated_and_sorted() {
        let schema = TableBuilder::new("t")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .index("b")
            .index("b")
            .primary_key("a")
            .build(0);
        assert_eq!(schema.indexed_columns, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn unknown_index_column_panics() {
        let _ = TableBuilder::new("t")
            .column("a", DataType::Int)
            .index("zzz")
            .build(0);
    }
}

//! Hardware profiles and the complete database environment.
//!
//! The *environment* bundles every "ignored variable" of the paper: knob
//! configuration, hardware, storage format and an operating-system overhead
//! factor. From it the execution simulator derives the **true cost
//! coefficients** `C = {cs, cr, ct, ci, co}` (milliseconds per sequential
//! page, random page, tuple, index tuple and operator invocation) that the
//! paper's Section III identifies as the channel through which the ignored
//! variables influence query cost.

use crate::knobs::KnobConfig;
use qcfe_storage::{DiskKind, DiskProfile, StorageFormat};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A hardware profile (CPU + memory + disk).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Human-readable name, e.g. `"h1"`.
    pub name: String,
    /// Relative single-core CPU speed (1.0 = the reference machine).
    pub cpu_speed: f64,
    /// Number of cores available to the database.
    pub cores: u32,
    /// Physical memory in gigabytes (influences OS page cache behaviour).
    pub memory_gb: u32,
    /// Disk device class.
    pub disk: DiskKind,
}

impl HardwareProfile {
    /// The paper's data-collection server: Intel R7 7735HS, 16 GB, SATA SSD.
    pub fn h1() -> Self {
        HardwareProfile {
            name: "h1".into(),
            cpu_speed: 1.0,
            cores: 8,
            memory_gb: 16,
            disk: DiskKind::SataSsd,
        }
    }

    /// The paper's transfer-target machine: i7-12700H, 42 GB, NVMe.
    pub fn h2() -> Self {
        HardwareProfile {
            name: "h2".into(),
            cpu_speed: 1.35,
            cores: 14,
            memory_gb: 42,
            disk: DiskKind::NvmeSsd,
        }
    }

    /// A slow cloud VM profile used in robustness tests.
    pub fn cloud_small() -> Self {
        HardwareProfile {
            name: "cloud-small".into(),
            cpu_speed: 0.6,
            cores: 2,
            memory_gb: 4,
            disk: DiskKind::Hdd,
        }
    }

    /// Sample a random hardware profile.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let disk = DiskKind::ALL[rng.gen_range(0..DiskKind::ALL.len())];
        HardwareProfile {
            name: format!("hw-{}", rng.gen_range(0..100_000)),
            cpu_speed: rng.gen_range(0.5..1.6),
            cores: rng.gen_range(2..=16),
            memory_gb: *[4u32, 8, 16, 32, 64].get(rng.gen_range(0..5)).expect("in range"),
            disk,
        }
    }

    /// The disk timing model for this hardware.
    pub fn disk_profile(&self) -> DiskProfile {
        DiskProfile::of(self.disk)
    }
}

/// The true, environment-dependent cost coefficients (milliseconds per unit).
///
/// `Cost_total = cs*ns + cr*nr + ct*nt + ci*ni + co*no` — the formula quoted
/// in Section III-A of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostCoefficients {
    /// ms per sequentially-read page.
    pub cs: f64,
    /// ms per randomly-read page.
    pub cr: f64,
    /// ms per tuple processed.
    pub ct: f64,
    /// ms per index tuple processed.
    pub ci: f64,
    /// ms per operator (expression/aggregate/sort comparison) invocation.
    pub co: f64,
}

impl CostCoefficients {
    /// Vector view `[cs, cr, ct, ci, co]`, handy for feature snapshots.
    pub fn as_array(&self) -> [f64; 5] {
        [self.cs, self.cr, self.ct, self.ci, self.co]
    }
}

/// A complete database environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbEnvironment {
    /// Short identifier, e.g. `"env-03"`.
    pub name: String,
    /// Knob configuration.
    pub knobs: KnobConfig,
    /// Hardware profile.
    pub hardware: HardwareProfile,
    /// Physical storage format of the relations.
    pub storage_format: StorageFormat,
    /// Multiplicative overhead of the operating system / filesystem layer
    /// (1.0 = none). Models OS-level differences the paper lists among the
    /// ignored variables.
    pub os_overhead: f64,
}

impl DbEnvironment {
    /// The reference environment: default knobs on the h1 machine.
    pub fn reference() -> Self {
        DbEnvironment {
            name: "env-ref".into(),
            knobs: KnobConfig::default(),
            hardware: HardwareProfile::h1(),
            storage_format: StorageFormat::HeapBTree,
            os_overhead: 1.0,
        }
    }

    /// Sample `count` random environments (random knobs on the given
    /// hardware), mirroring the paper's 20 random configurations per
    /// benchmark.
    pub fn sample_knob_configs<R: Rng + ?Sized>(
        count: usize,
        hardware: HardwareProfile,
        rng: &mut R,
    ) -> Vec<DbEnvironment> {
        (0..count)
            .map(|i| DbEnvironment {
                name: format!("env-{i:02}"),
                knobs: KnobConfig::sample(rng),
                hardware: hardware.clone(),
                storage_format: if rng.gen_bool(0.8) {
                    StorageFormat::HeapBTree
                } else {
                    StorageFormat::Lsm
                },
                os_overhead: rng.gen_range(0.95..1.15),
            })
            .collect()
    }

    /// Derive the environment's true cost coefficients.
    ///
    /// This is the ground truth the execution simulator uses; the learned
    /// feature snapshot tries to recover (a per-operator projection of) these
    /// values purely from observed runtimes.
    pub fn true_coefficients(&self) -> CostCoefficients {
        let disk = self.hardware.disk_profile();
        let read_amp = self.storage_format.read_amplification();
        let cpu = self.hardware.cpu_speed;
        // CPU-side per-tuple costs: a few hundred nanoseconds on the
        // reference machine, scaled by CPU speed and parallelism.
        let parallel = self.knobs.parallel_speedup();
        let ct = 0.0006 / cpu / parallel;
        let ci = 0.0003 / cpu / parallel;
        let co = 0.00015 / cpu / parallel;
        // I/O-side costs come from the disk profile and storage format; a
        // larger OS cache (more memory) hides part of the random-read cost.
        let cache_factor = (self.hardware.memory_gb as f64 / 16.0).clamp(0.25, 4.0);
        let cs = disk.sequential_page_ms * read_amp * self.os_overhead;
        let cr = disk.random_page_ms * read_amp * self.os_overhead / cache_factor.sqrt();
        CostCoefficients { cs, cr, ct, ci, co }
    }

    /// Buffer pool capacity implied by the knobs.
    pub fn buffer_pool_pages(&self) -> usize {
        self.knobs.buffer_pool_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn preset_hardware_profiles_differ() {
        let h1 = HardwareProfile::h1();
        let h2 = HardwareProfile::h2();
        assert!(h2.cpu_speed > h1.cpu_speed);
        assert!(h2.memory_gb > h1.memory_gb);
        assert_ne!(h1.disk, h2.disk);
        assert_eq!(HardwareProfile::cloud_small().disk, DiskKind::Hdd);
    }

    #[test]
    fn reference_environment_coefficients_are_positive_and_ordered() {
        let env = DbEnvironment::reference();
        let c = env.true_coefficients();
        for v in c.as_array() {
            assert!(v > 0.0);
        }
        assert!(c.cr > c.cs, "random reads cost more than sequential");
        assert!(c.ct > c.ci, "full tuple processing costs more than index entry");
        assert!(c.cs > c.ct, "page I/O costs more than one tuple of CPU");
    }

    #[test]
    fn faster_hardware_lowers_cpu_coefficients() {
        let mut env = DbEnvironment::reference();
        let slow = env.true_coefficients();
        env.hardware = HardwareProfile::h2();
        let fast = env.true_coefficients();
        assert!(fast.ct < slow.ct);
        assert!(fast.cr < slow.cr, "NVMe + more memory lowers random read cost");
    }

    #[test]
    fn lsm_format_increases_read_costs() {
        let mut env = DbEnvironment::reference();
        let heap = env.true_coefficients();
        env.storage_format = StorageFormat::Lsm;
        let lsm = env.true_coefficients();
        assert!(lsm.cs > heap.cs);
        assert!(lsm.cr > heap.cr);
        assert_eq!(lsm.ct, heap.ct, "storage format does not change CPU cost");
    }

    #[test]
    fn sampled_environments_vary_substantially() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let envs = DbEnvironment::sample_knob_configs(20, HardwareProfile::h1(), &mut rng);
        assert_eq!(envs.len(), 20);
        let pools: Vec<usize> = envs.iter().map(|e| e.buffer_pool_pages()).collect();
        let min = pools.iter().min().unwrap();
        let max = pools.iter().max().unwrap();
        assert!(max > min, "shared_buffers should vary across environments");
        // names are unique
        let names: std::collections::HashSet<&str> =
            envs.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names.len(), envs.len());
    }

    #[test]
    fn parallel_workers_speed_up_cpu_side() {
        let mut env = DbEnvironment::reference();
        env.knobs.max_parallel_workers = 0;
        let serial = env.true_coefficients();
        env.knobs.max_parallel_workers = 8;
        let parallel = env.true_coefficients();
        assert!(parallel.ct < serial.ct);
        assert_eq!(parallel.cs, serial.cs, "I/O cost not affected by worker count");
    }
}

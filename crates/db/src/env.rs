//! Hardware profiles and the complete database environment.
//!
//! The *environment* bundles every "ignored variable" of the paper: knob
//! configuration, hardware, storage format and an operating-system overhead
//! factor. From it the execution simulator derives the **true cost
//! coefficients** `C = {cs, cr, ct, ci, co}` (milliseconds per sequential
//! page, random page, tuple, index tuple and operator invocation) that the
//! paper's Section III identifies as the channel through which the ignored
//! variables influence query cost.

use crate::knobs::KnobConfig;
use qcfe_storage::{DiskKind, DiskProfile, StorageFormat};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A hardware profile (CPU + memory + disk).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Human-readable name, e.g. `"h1"`.
    pub name: String,
    /// Relative single-core CPU speed (1.0 = the reference machine).
    pub cpu_speed: f64,
    /// Number of cores available to the database.
    pub cores: u32,
    /// Physical memory in gigabytes (influences OS page cache behaviour).
    pub memory_gb: u32,
    /// Disk device class.
    pub disk: DiskKind,
}

impl HardwareProfile {
    /// The paper's data-collection server: Intel R7 7735HS, 16 GB, SATA SSD.
    pub fn h1() -> Self {
        HardwareProfile {
            name: "h1".into(),
            cpu_speed: 1.0,
            cores: 8,
            memory_gb: 16,
            disk: DiskKind::SataSsd,
        }
    }

    /// The paper's transfer-target machine: i7-12700H, 42 GB, NVMe.
    pub fn h2() -> Self {
        HardwareProfile {
            name: "h2".into(),
            cpu_speed: 1.35,
            cores: 14,
            memory_gb: 42,
            disk: DiskKind::NvmeSsd,
        }
    }

    /// A slow cloud VM profile used in robustness tests.
    pub fn cloud_small() -> Self {
        HardwareProfile {
            name: "cloud-small".into(),
            cpu_speed: 0.6,
            cores: 2,
            memory_gb: 4,
            disk: DiskKind::Hdd,
        }
    }

    /// Sample a random hardware profile.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let disk = DiskKind::ALL[rng.gen_range(0..DiskKind::ALL.len())];
        HardwareProfile {
            name: format!("hw-{}", rng.gen_range(0..100_000)),
            cpu_speed: rng.gen_range(0.5..1.6),
            cores: rng.gen_range(2..=16),
            memory_gb: *[4u32, 8, 16, 32, 64]
                .get(rng.gen_range(0..5usize))
                .expect("in range"),
            disk,
        }
    }

    /// The disk timing model for this hardware.
    pub fn disk_profile(&self) -> DiskProfile {
        DiskProfile::of(self.disk)
    }
}

/// The true, environment-dependent cost coefficients (milliseconds per unit).
///
/// `Cost_total = cs*ns + cr*nr + ct*nt + ci*ni + co*no` — the formula quoted
/// in Section III-A of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostCoefficients {
    /// ms per sequentially-read page.
    pub cs: f64,
    /// ms per randomly-read page.
    pub cr: f64,
    /// ms per tuple processed.
    pub ct: f64,
    /// ms per index tuple processed.
    pub ci: f64,
    /// ms per operator (expression/aggregate/sort comparison) invocation.
    pub co: f64,
}

impl CostCoefficients {
    /// Vector view `[cs, cr, ct, ci, co]`, handy for feature snapshots.
    pub fn as_array(&self) -> [f64; 5] {
        [self.cs, self.cr, self.ct, self.ci, self.co]
    }
}

/// A complete database environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbEnvironment {
    /// Short identifier, e.g. `"env-03"`.
    pub name: String,
    /// Knob configuration.
    pub knobs: KnobConfig,
    /// Hardware profile.
    pub hardware: HardwareProfile,
    /// Physical storage format of the relations.
    pub storage_format: StorageFormat,
    /// Multiplicative overhead of the operating system / filesystem layer
    /// (1.0 = none). Models OS-level differences the paper lists among the
    /// ignored variables.
    pub os_overhead: f64,
}

impl DbEnvironment {
    /// The reference environment: default knobs on the h1 machine.
    pub fn reference() -> Self {
        DbEnvironment {
            name: "env-ref".into(),
            knobs: KnobConfig::default(),
            hardware: HardwareProfile::h1(),
            storage_format: StorageFormat::HeapBTree,
            os_overhead: 1.0,
        }
    }

    /// Sample `count` random environments (random knobs on the given
    /// hardware), mirroring the paper's 20 random configurations per
    /// benchmark.
    pub fn sample_knob_configs<R: Rng + ?Sized>(
        count: usize,
        hardware: HardwareProfile,
        rng: &mut R,
    ) -> Vec<DbEnvironment> {
        (0..count)
            .map(|i| DbEnvironment {
                name: format!("env-{i:02}"),
                knobs: KnobConfig::sample(rng),
                hardware: hardware.clone(),
                storage_format: if rng.gen_bool(0.8) {
                    StorageFormat::HeapBTree
                } else {
                    StorageFormat::Lsm
                },
                os_overhead: rng.gen_range(0.95..1.15),
            })
            .collect()
    }

    /// Derive the environment's true cost coefficients.
    ///
    /// This is the ground truth the execution simulator uses; the learned
    /// feature snapshot tries to recover (a per-operator projection of) these
    /// values purely from observed runtimes.
    pub fn true_coefficients(&self) -> CostCoefficients {
        let disk = self.hardware.disk_profile();
        let read_amp = self.storage_format.read_amplification();
        let cpu = self.hardware.cpu_speed;
        // CPU-side per-tuple costs: a few hundred nanoseconds on the
        // reference machine, scaled by CPU speed and parallelism.
        let parallel = self.knobs.parallel_speedup();
        let ct = 0.0006 / cpu / parallel;
        let ci = 0.0003 / cpu / parallel;
        let co = 0.00015 / cpu / parallel;
        // I/O-side costs come from the disk profile and storage format; a
        // larger OS cache (more memory) hides part of the random-read cost.
        let cache_factor = (self.hardware.memory_gb as f64 / 16.0).clamp(0.25, 4.0);
        let cs = disk.sequential_page_ms * read_amp * self.os_overhead;
        let cr = disk.random_page_ms * read_amp * self.os_overhead / cache_factor.sqrt();
        CostCoefficients { cs, cr, ct, ci, co }
    }

    /// Buffer pool capacity implied by the knobs.
    pub fn buffer_pool_pages(&self) -> usize {
        self.knobs.buffer_pool_pages()
    }

    /// Number of entries in [`DbEnvironment::knob_vector`].
    pub const VECTOR_DIM: usize = KnobConfig::VECTOR_DIM + 7;

    /// The environment's numeric feature vector: every cost-relevant
    /// "ignored variable" — knobs, hardware, storage format and OS
    /// overhead — flattened into `Self::VECTOR_DIM` roughly unit-scale
    /// components.
    ///
    /// Where [`DbEnvironment::fingerprint`] is an exact identity (any bit
    /// of difference yields a new fingerprint), the knob vector is a
    /// *geometry*: [`knob_distance`] between two environments' vectors is
    /// small when their cost coefficients are close. The serving layer
    /// persists this vector next to each environment's feature snapshot so
    /// an unseen environment can warm-start from the nearest persisted
    /// neighbour (the paper's Table VII snapshot-transfer workflow, online).
    pub fn knob_vector(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(Self::VECTOR_DIM);
        self.knobs.knob_vector_into(&mut out);
        let disk = self.hardware.disk_profile();
        out.push(self.hardware.cpu_speed);
        out.push((self.hardware.cores as f64).log2() / 4.0);
        out.push((self.hardware.memory_gb as f64).log2() / 6.0);
        // Disk timings span ~2 orders of magnitude across device classes;
        // a negated log10 keeps faster disks at larger coordinates with an
        // O(1) spread.
        out.push(-disk.sequential_page_ms.log10() / 2.0);
        out.push(-disk.random_page_ms.log10() / 2.0);
        out.push(self.storage_format.read_amplification());
        out.push(self.os_overhead);
        debug_assert_eq!(out.len(), Self::VECTOR_DIM);
        out
    }

    /// Euclidean [`knob_distance`] between this environment's knob vector
    /// and another's. Zero for cost-identical configurations.
    pub fn distance_to(&self, other: &DbEnvironment) -> f64 {
        knob_distance(&self.knob_vector(), &other.knob_vector())
    }

    /// A stable fingerprint of every "ignored variable" that influences
    /// query cost: the knob configuration, the hardware profile, the
    /// storage format and the OS overhead factor.
    ///
    /// Two environments with the same fingerprint produce the same true
    /// cost coefficients, so a feature snapshot persisted under a
    /// fingerprint can be reused whenever the serving environment matches —
    /// the paper's cross-restart / cross-machine snapshot transfer
    /// workflow. The environment's `name` is deliberately excluded: it
    /// labels experiments, it does not change costs.
    pub fn fingerprint(&self) -> EnvFingerprint {
        let mut h = Fnv1a::new();
        self.knobs.hash_into(&mut h);
        self.hardware.hash_into(&mut h);
        h.write_u64(self.storage_format.read_amplification().to_bits());
        h.write_u64(self.os_overhead.to_bits());
        EnvFingerprint(h.finish())
    }
}

/// Euclidean distance between two environment knob vectors (see
/// [`DbEnvironment::knob_vector`]).
///
/// Mismatched lengths compare as infinitely far apart rather than
/// panicking: the serving layer feeds this function vectors deserialized
/// from disk, and a stale file written under an older vector layout must
/// simply never win a nearest-neighbour search.
pub fn knob_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// A 64-bit environment fingerprint (see [`DbEnvironment::fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnvFingerprint(pub u64);

impl EnvFingerprint {
    /// Fixed-width hex rendering, safe for use in file names.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the rendering of [`EnvFingerprint::to_hex`].
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(EnvFingerprint)
    }
}

impl std::fmt::Display for EnvFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// A tiny FNV-1a hasher used for environment fingerprints (stable across
/// platforms and Rust versions, unlike `DefaultHasher`).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Start a new hash with the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Fold raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold a `u64` into the hash (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a boolean into the hash.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// The accumulated hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl HardwareProfile {
    /// Fold every cost-relevant field (not the display name) into an
    /// environment fingerprint.
    pub fn hash_into(&self, h: &mut Fnv1a) {
        h.write_u64(self.cpu_speed.to_bits());
        h.write_u64(self.cores as u64);
        h.write_u64(self.memory_gb as u64);
        h.write_u64(self.disk as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn preset_hardware_profiles_differ() {
        let h1 = HardwareProfile::h1();
        let h2 = HardwareProfile::h2();
        assert!(h2.cpu_speed > h1.cpu_speed);
        assert!(h2.memory_gb > h1.memory_gb);
        assert_ne!(h1.disk, h2.disk);
        assert_eq!(HardwareProfile::cloud_small().disk, DiskKind::Hdd);
    }

    #[test]
    fn reference_environment_coefficients_are_positive_and_ordered() {
        let env = DbEnvironment::reference();
        let c = env.true_coefficients();
        for v in c.as_array() {
            assert!(v > 0.0);
        }
        assert!(c.cr > c.cs, "random reads cost more than sequential");
        assert!(
            c.ct > c.ci,
            "full tuple processing costs more than index entry"
        );
        assert!(c.cs > c.ct, "page I/O costs more than one tuple of CPU");
    }

    #[test]
    fn faster_hardware_lowers_cpu_coefficients() {
        let mut env = DbEnvironment::reference();
        let slow = env.true_coefficients();
        env.hardware = HardwareProfile::h2();
        let fast = env.true_coefficients();
        assert!(fast.ct < slow.ct);
        assert!(
            fast.cr < slow.cr,
            "NVMe + more memory lowers random read cost"
        );
    }

    #[test]
    fn lsm_format_increases_read_costs() {
        let mut env = DbEnvironment::reference();
        let heap = env.true_coefficients();
        env.storage_format = StorageFormat::Lsm;
        let lsm = env.true_coefficients();
        assert!(lsm.cs > heap.cs);
        assert!(lsm.cr > heap.cr);
        assert_eq!(lsm.ct, heap.ct, "storage format does not change CPU cost");
    }

    #[test]
    fn sampled_environments_vary_substantially() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let envs = DbEnvironment::sample_knob_configs(20, HardwareProfile::h1(), &mut rng);
        assert_eq!(envs.len(), 20);
        let pools: Vec<usize> = envs.iter().map(|e| e.buffer_pool_pages()).collect();
        let min = pools.iter().min().unwrap();
        let max = pools.iter().max().unwrap();
        assert!(max > min, "shared_buffers should vary across environments");
        // names are unique
        let names: std::collections::HashSet<&str> = envs.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names.len(), envs.len());
    }

    #[test]
    fn fingerprints_key_on_cost_relevant_fields_only() {
        let env = DbEnvironment::reference();
        let fp = env.fingerprint();
        // deterministic
        assert_eq!(fp, DbEnvironment::reference().fingerprint());
        // the display name is not cost-relevant
        let mut renamed = env.clone();
        renamed.name = "env-renamed".into();
        assert_eq!(renamed.fingerprint(), fp);
        // every ignored variable moves the fingerprint
        let mut knobbed = env.clone();
        knobbed.knobs.random_page_cost = 2.5;
        assert_ne!(knobbed.fingerprint(), fp);
        let mut hw = env.clone();
        hw.hardware = HardwareProfile::h2();
        assert_ne!(hw.fingerprint(), fp);
        let mut lsm = env.clone();
        lsm.storage_format = StorageFormat::Lsm;
        assert_ne!(lsm.fingerprint(), fp);
        let mut os = env.clone();
        os.os_overhead = 1.1;
        assert_ne!(os.fingerprint(), fp);
    }

    #[test]
    fn fingerprint_hex_roundtrips() {
        let fp = DbEnvironment::reference().fingerprint();
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(EnvFingerprint::from_hex(&hex), Some(fp));
        assert_eq!(EnvFingerprint::from_hex("xyz"), None);
        assert_eq!(EnvFingerprint::from_hex("zzzzzzzzzzzzzzzz"), None);
        assert_eq!(format!("{fp}"), hex);
    }

    /// Seeded property test (≥1000 cases): `to_hex`/`from_hex` round-trip
    /// every fingerprint, and mutated renderings — odd-length, non-hex and
    /// over-long — are all rejected.
    #[test]
    fn fingerprint_hex_roundtrip_property() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xfee1);
        for case in 0..1000u64 {
            // Mix a seeded random draw with structured edge values so the
            // loop covers 0, MAX and single-bit patterns too.
            let raw: u64 = match case % 5 {
                0 => rng.gen_range(0..=u64::MAX),
                1 => rng.gen_range(0..=u64::MAX) & 0xff,
                2 => 1u64 << (case % 64) as u32,
                3 => u64::MAX,
                _ => 0,
            };
            let fp = EnvFingerprint(raw);
            let hex = fp.to_hex();
            assert_eq!(hex.len(), 16, "fixed-width rendering");
            assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
            assert_eq!(EnvFingerprint::from_hex(&hex), Some(fp), "round-trip");

            // Odd-length prefixes are rejected.
            let odd = &hex[..(1 + 2 * (case as usize % 8))];
            assert_eq!(odd.len() % 2, 1);
            assert_eq!(EnvFingerprint::from_hex(odd), None, "odd length {odd:?}");
            // Even-length but short inputs are rejected too.
            let short = &hex[..(2 * (case as usize % 8))];
            assert_eq!(EnvFingerprint::from_hex(short), None, "short {short:?}");
            // Over-long inputs are rejected.
            let long = format!("{hex}0");
            assert_eq!(EnvFingerprint::from_hex(&long), None, "over-long");
            let very_long = format!("{hex}{hex}");
            assert_eq!(EnvFingerprint::from_hex(&very_long), None, "double-long");
            // A non-hex byte anywhere poisons the parse.
            let pos = case as usize % 16;
            let mut bad = hex.clone().into_bytes();
            bad[pos] = b'g' + (case % 20) as u8; // 'g'..'z': never a hex digit
            let bad = String::from_utf8(bad).unwrap();
            assert_eq!(EnvFingerprint::from_hex(&bad), None, "non-hex {bad:?}");
        }
    }

    #[test]
    fn knob_vectors_have_the_declared_dimension_and_unit_scale() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let envs = DbEnvironment::sample_knob_configs(20, HardwareProfile::h1(), &mut rng);
        for env in &envs {
            let v = env.knob_vector();
            assert_eq!(v.len(), DbEnvironment::VECTOR_DIM);
            for (i, x) in v.iter().enumerate() {
                assert!(x.is_finite(), "component {i} not finite");
                assert!(x.abs() < 10.0, "component {i} = {x} is badly scaled");
            }
        }
    }

    #[test]
    fn knob_distance_is_a_metric_over_environments() {
        let reference = DbEnvironment::reference();
        assert_eq!(reference.distance_to(&reference), 0.0);
        // The display name does not move the geometry.
        let mut renamed = reference.clone();
        renamed.name = "env-renamed".into();
        assert_eq!(reference.distance_to(&renamed), 0.0);
        // Every cost-relevant field does.
        let mut knobbed = reference.clone();
        knobbed.knobs.random_page_cost = 8.0;
        assert!(reference.distance_to(&knobbed) > 0.0);
        let mut hw = reference.clone();
        hw.hardware = HardwareProfile::h2();
        assert!(reference.distance_to(&hw) > 0.0);
        // Symmetry.
        assert_eq!(reference.distance_to(&hw), hw.distance_to(&reference));
        // A tiny perturbation is closer than a different machine.
        let mut nudged = reference.clone();
        nudged.os_overhead = 1.0001;
        assert!(reference.distance_to(&nudged) < reference.distance_to(&hw));
        // Length-mismatched raw vectors never win a nearest search.
        assert_eq!(knob_distance(&[1.0], &[1.0, 2.0]), f64::INFINITY);
        assert_eq!(knob_distance(&[], &[]), 0.0);
    }

    /// The geometry agrees with the ground truth: among sampled
    /// environments, a small knob perturbation of one of them is nearest —
    /// in knob-vector distance — to the environment it was derived from.
    #[test]
    fn perturbed_environments_are_nearest_to_their_origin() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let envs = DbEnvironment::sample_knob_configs(10, HardwareProfile::h1(), &mut rng);
        for (i, origin) in envs.iter().enumerate() {
            let mut probe = origin.clone();
            probe.os_overhead += 0.0003;
            assert_ne!(probe.fingerprint(), origin.fingerprint());
            let nearest = envs
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| probe.distance_to(a).total_cmp(&probe.distance_to(b)))
                .map(|(j, _)| j);
            assert_eq!(nearest, Some(i), "probe of env {i} matched env {nearest:?}");
        }
    }

    #[test]
    fn sampled_environments_have_distinct_fingerprints() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let envs = DbEnvironment::sample_knob_configs(20, HardwareProfile::h1(), &mut rng);
        let fps: std::collections::HashSet<EnvFingerprint> =
            envs.iter().map(|e| e.fingerprint()).collect();
        assert_eq!(
            fps.len(),
            envs.len(),
            "20 random environments should not collide"
        );
    }

    #[test]
    fn parallel_workers_speed_up_cpu_side() {
        let mut env = DbEnvironment::reference();
        env.knobs.max_parallel_workers = 0;
        let serial = env.true_coefficients();
        env.knobs.max_parallel_workers = 8;
        let parallel = env.true_coefficients();
        assert!(parallel.ct < serial.ct);
        assert_eq!(
            parallel.cs, serial.cs,
            "I/O cost not affected by worker count"
        );
    }
}

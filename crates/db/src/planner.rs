//! Cost-based physical planner.
//!
//! The planner mirrors PostgreSQL's high-level decisions at a much smaller
//! scale: access-path selection (sequential vs index scan, gated by the
//! `enable_*` knobs and estimated selectivity), greedy join ordering by
//! estimated cardinality, join-method selection (hash / merge / nested
//! loop, again knob-gated and memory-aware), then aggregation, sorting and
//! limit on top. Planner estimates use only statistics — never the true
//! data — so estimation error behaves like a real system's.

use crate::database::{Database, DbError};
use crate::expr::{JoinCondition, Predicate};
use crate::plan::{PhysicalOp, PlanNode};
use crate::query::Query;

/// Selectivity below which an available index is preferred over a
/// sequential scan (with default page-cost knobs).
const INDEX_SCAN_SELECTIVITY_THRESHOLD: f64 = 0.08;

/// Inner-relation cardinality below which a nested-loop join is considered
/// cheap enough to prefer.
const NESTLOOP_INNER_ROWS_THRESHOLD: f64 = 256.0;

/// Plan a query against a database.
pub fn plan_query(db: &Database, query: &Query) -> Result<PlanNode, DbError> {
    if query.tables.is_empty() {
        return Err(DbError::EmptyQuery);
    }
    // 1. Access paths for every base table.
    let mut relations: Vec<PlanNode> = Vec::with_capacity(query.tables.len());
    for table in &query.tables {
        relations.push(plan_scan(db, query, table)?);
    }

    // 2. Join ordering (greedy smallest-first) and method selection.
    let mut current = {
        // start from the relation with the smallest estimated cardinality
        let (idx, _) = relations
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.est_rows
                    .partial_cmp(&b.1.est_rows)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one relation");
        relations.remove(idx)
    };
    let mut remaining = relations;
    let mut pending_joins: Vec<JoinCondition> = query.joins.clone();

    while !remaining.is_empty() {
        // Find a remaining relation connected to the current subtree.
        let joined_tables: Vec<String> = current
            .scanned_tables()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let connected = remaining.iter().position(|rel| {
            let rel_table = rel.op.scanned_table().unwrap_or_default().to_string();
            pending_joins.iter().any(|j| {
                (j.left.table == rel_table && joined_tables.contains(&j.right.table))
                    || (j.right.table == rel_table && joined_tables.contains(&j.left.table))
            })
        });
        // Fall back to a cross product with the smallest remaining relation
        // when the join graph is disconnected.
        let next_idx = connected.unwrap_or(0);
        let next = remaining.remove(next_idx);
        let next_table = next.op.scanned_table().unwrap_or_default().to_string();

        let condition_idx = pending_joins.iter().position(|j| {
            (j.left.table == next_table && joined_tables.contains(&j.right.table))
                || (j.right.table == next_table && joined_tables.contains(&j.left.table))
        });
        let condition = condition_idx.map(|i| pending_joins.remove(i));

        current = plan_join(db, current, next, condition)?;
    }

    // 3. Aggregation.
    if query.is_aggregate_query() {
        let input_rows = current.est_rows;
        let groups = estimate_group_count(db, query, input_rows)?;
        let mut agg = PlanNode::new(
            PhysicalOp::Aggregate {
                group_by: query.group_by.clone(),
                functions: query.aggregates.clone(),
            },
            vec![current],
        );
        agg.est_rows = groups;
        agg.est_width = agg.children[0].est_width.min(64.0) + 16.0;
        current = agg;
    }

    // 4. Ordering.
    if !query.order_by.is_empty() {
        let mut sort = PlanNode::new(
            PhysicalOp::Sort {
                keys: query.order_by.clone(),
            },
            vec![current],
        );
        sort.est_rows = sort.children[0].est_rows;
        sort.est_width = sort.children[0].est_width;
        current = sort;
    }

    // 5. Limit.
    if let Some(n) = query.limit {
        let mut limit = PlanNode::new(PhysicalOp::Limit { count: n }, vec![current]);
        limit.est_rows = limit.children[0].est_rows.min(n as f64);
        limit.est_width = limit.children[0].est_width;
        current = limit;
    }

    // 6. Cost the whole tree with the analytical model.
    crate::cost::estimate_plan_cost(db, &mut current);
    Ok(current)
}

/// Choose an access path for one base table.
fn plan_scan(db: &Database, query: &Query, table: &str) -> Result<PlanNode, DbError> {
    let schema = db.schema(table)?;
    let stats = db.table_stats(table)?;
    let predicates: Vec<Predicate> = query.predicates_for(table).into_iter().cloned().collect();

    // Resolve predicate columns for selectivity estimation.
    let mut resolved: Vec<(usize, &Predicate)> = Vec::with_capacity(predicates.len());
    for p in &predicates {
        let col = db.column_index(table, &p.column().column)?;
        resolved.push((col, p));
    }
    let selectivity = stats.conjunction_selectivity(&resolved);
    let est_rows = (stats.row_count as f64 * selectivity).max(1.0);

    let knobs = &db.environment().knobs;
    // Candidate index: the most selective indexed predicate column.
    let candidate_index = resolved
        .iter()
        .filter(|(col, _)| schema.has_index(*col))
        .map(|(col, p)| (*col, stats.columns[*col].selectivity(p)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    // Effective threshold shifts with the random/seq page cost ratio: a
    // cheaper random read (e.g. random_page_cost = 1.1) makes index scans
    // attractive for larger fractions, like PostgreSQL.
    let ratio = (knobs.random_page_cost / knobs.seq_page_cost).max(0.5);
    let threshold = (INDEX_SCAN_SELECTIVITY_THRESHOLD * 4.0 / ratio).clamp(0.005, 0.35);

    let use_index = knobs.enable_indexscan
        && candidate_index
            .map(|(_, sel)| sel <= threshold || !knobs.enable_seqscan)
            .unwrap_or(false);

    let mut node = if use_index {
        let (col, _) = candidate_index.expect("checked above");
        PlanNode::new(
            PhysicalOp::IndexScan {
                table: table.to_string(),
                column: schema.column(col).name.clone(),
            },
            vec![],
        )
    } else {
        PlanNode::new(
            PhysicalOp::SeqScan {
                table: table.to_string(),
            },
            vec![],
        )
    }
    .with_predicates(predicates);

    node.est_rows = est_rows;
    node.est_width = schema.tuple_width() as f64;
    Ok(node)
}

/// Choose a join method and build the join node.
fn plan_join(
    db: &Database,
    outer: PlanNode,
    inner: PlanNode,
    condition: Option<JoinCondition>,
) -> Result<PlanNode, DbError> {
    let knobs = &db.environment().knobs;
    let outer_rows = outer.est_rows;
    let inner_rows = inner.est_rows;

    // Join cardinality estimate.
    let est_rows = match &condition {
        Some(cond) => {
            let sel = join_selectivity(db, cond)?;
            (outer_rows * inner_rows * sel).max(1.0)
        }
        None => (outer_rows * inner_rows).max(1.0),
    };
    let est_width = outer.est_width + inner.est_width;

    // Method selection.
    let inner_bytes = inner_rows * inner.est_width;
    let fits_work_mem = inner_bytes <= knobs.work_mem_bytes() as f64;

    let node = match &condition {
        None => {
            // Cross join: nested loop with the inner materialised.
            let mut mat = PlanNode::new(PhysicalOp::Materialize, vec![inner]);
            mat.est_rows = inner_rows;
            mat.est_width = mat.children[0].est_width;
            PlanNode::new(PhysicalOp::NestedLoop { condition: None }, vec![outer, mat])
        }
        Some(cond) => {
            let nestloop_ok = knobs.enable_nestloop && inner_rows <= NESTLOOP_INNER_ROWS_THRESHOLD;
            if nestloop_ok && (!knobs.enable_hashjoin || inner_rows <= 64.0) {
                let mut mat = PlanNode::new(PhysicalOp::Materialize, vec![inner]);
                mat.est_rows = inner_rows;
                mat.est_width = mat.children[0].est_width;
                PlanNode::new(
                    PhysicalOp::NestedLoop {
                        condition: Some(cond.clone()),
                    },
                    vec![outer, mat],
                )
            } else if knobs.enable_hashjoin && (fits_work_mem || !knobs.enable_mergejoin) {
                PlanNode::new(
                    PhysicalOp::HashJoin {
                        condition: cond.clone(),
                    },
                    vec![outer, inner],
                )
            } else if knobs.enable_mergejoin {
                // Merge join needs sorted inputs.
                let sort_key_outer = cond.left.clone();
                let sort_key_inner = cond.right.clone();
                let mut sort_outer = PlanNode::new(
                    PhysicalOp::Sort {
                        keys: vec![sort_key_outer],
                    },
                    vec![outer],
                );
                sort_outer.est_rows = outer_rows;
                sort_outer.est_width = sort_outer.children[0].est_width;
                let mut sort_inner = PlanNode::new(
                    PhysicalOp::Sort {
                        keys: vec![sort_key_inner],
                    },
                    vec![inner],
                );
                sort_inner.est_rows = inner_rows;
                sort_inner.est_width = sort_inner.children[0].est_width;
                PlanNode::new(
                    PhysicalOp::MergeJoin {
                        condition: cond.clone(),
                    },
                    vec![sort_outer, sort_inner],
                )
            } else if knobs.enable_hashjoin {
                PlanNode::new(
                    PhysicalOp::HashJoin {
                        condition: cond.clone(),
                    },
                    vec![outer, inner],
                )
            } else {
                // Everything disabled: fall back to nested loop.
                let mut mat = PlanNode::new(PhysicalOp::Materialize, vec![inner]);
                mat.est_rows = inner_rows;
                mat.est_width = mat.children[0].est_width;
                PlanNode::new(
                    PhysicalOp::NestedLoop {
                        condition: Some(cond.clone()),
                    },
                    vec![outer, mat],
                )
            }
        }
    };

    let mut node = node;
    node.est_rows = est_rows;
    node.est_width = est_width;
    Ok(node)
}

/// Estimated selectivity of an equi-join condition.
fn join_selectivity(db: &Database, cond: &JoinCondition) -> Result<f64, DbError> {
    let left_stats = db.table_stats(&cond.left.table)?;
    let right_stats = db.table_stats(&cond.right.table)?;
    let left_col = db.column_index(&cond.left.table, &cond.left.column)?;
    let right_col = db.column_index(&cond.right.table, &cond.right.column)?;
    Ok(left_stats.join_selectivity(left_col, right_stats, right_col))
}

/// Estimated number of groups produced by the GROUP BY clause.
fn estimate_group_count(db: &Database, query: &Query, input_rows: f64) -> Result<f64, DbError> {
    if query.group_by.is_empty() {
        return Ok(1.0);
    }
    let mut groups = 1.0;
    for col in &query.group_by {
        let stats = db.table_stats(&col.table)?;
        let idx = db.column_index(&col.table, &col.column)?;
        groups *= stats.columns[idx].distinct_count.max(1) as f64;
    }
    Ok(groups.min(input_rows.max(1.0)))
}

//! Database knob configurations (the tunable "ignored variables").
//!
//! The paper randomly generates 20 PostgreSQL 14.4 knob configurations and
//! shows (Figure 1) that the same workload's average cost varies 2–3x across
//! them. [`KnobConfig::sample`] plays the same role here: planner cost
//! constants, memory limits, and enable_* switches are drawn from realistic
//! ranges.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A PostgreSQL-style knob configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobConfig {
    /// Planner cost of a sequential page read (cost units).
    pub seq_page_cost: f64,
    /// Planner cost of a random page read (cost units).
    pub random_page_cost: f64,
    /// Planner cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// Planner cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// Planner cost of evaluating one operator/expression.
    pub cpu_operator_cost: f64,
    /// Memory available to a single sort/hash node, in kilobytes.
    pub work_mem_kb: u64,
    /// Buffer cache size, in megabytes.
    pub shared_buffers_mb: u64,
    /// Planner's assumption about the OS+DB cache size, in megabytes.
    pub effective_cache_size_mb: u64,
    /// Whether the planner may choose sequential scans.
    pub enable_seqscan: bool,
    /// Whether the planner may choose index scans.
    pub enable_indexscan: bool,
    /// Whether the planner may choose hash joins.
    pub enable_hashjoin: bool,
    /// Whether the planner may choose merge joins.
    pub enable_mergejoin: bool,
    /// Whether the planner may choose nested-loop joins.
    pub enable_nestloop: bool,
    /// Whether the executor may use extra parallel workers.
    pub max_parallel_workers: u32,
}

impl Default for KnobConfig {
    /// PostgreSQL 14 defaults.
    fn default() -> Self {
        KnobConfig {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            work_mem_kb: 4 * 1024,
            shared_buffers_mb: 128,
            effective_cache_size_mb: 4 * 1024,
            enable_seqscan: true,
            enable_indexscan: true,
            enable_hashjoin: true,
            enable_mergejoin: true,
            enable_nestloop: true,
            max_parallel_workers: 2,
        }
    }
}

impl KnobConfig {
    /// Draw a random but realistic knob configuration (the paper's
    /// "randomly generate 20 database configurations").
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        KnobConfig {
            seq_page_cost: rng.gen_range(0.5..2.0),
            random_page_cost: rng.gen_range(1.1..8.0),
            cpu_tuple_cost: rng.gen_range(0.005..0.03),
            cpu_index_tuple_cost: rng.gen_range(0.002..0.01),
            cpu_operator_cost: rng.gen_range(0.001..0.006),
            work_mem_kb: *[1024u64, 4096, 16_384, 65_536, 262_144]
                .get(rng.gen_range(0..5usize))
                .expect("index in range"),
            shared_buffers_mb: *[64u64, 128, 512, 2048, 8192]
                .get(rng.gen_range(0..5usize))
                .expect("index in range"),
            effective_cache_size_mb: *[1024u64, 4096, 16_384]
                .get(rng.gen_range(0..3usize))
                .expect("index in range"),
            enable_seqscan: true,
            enable_indexscan: rng.gen_bool(0.85),
            enable_hashjoin: rng.gen_bool(0.85),
            enable_mergejoin: rng.gen_bool(0.85),
            enable_nestloop: rng.gen_bool(0.9),
            max_parallel_workers: rng.gen_range(0..=8),
        }
    }

    /// Buffer pool capacity in 8 KiB pages implied by `shared_buffers_mb`.
    pub fn buffer_pool_pages(&self) -> usize {
        ((self.shared_buffers_mb as usize) * 1024 * 1024 / qcfe_storage::PAGE_SIZE).max(16)
    }

    /// Memory available to one sort or hash node, in bytes.
    pub fn work_mem_bytes(&self) -> u64 {
        self.work_mem_kb * 1024
    }

    /// A multiplicative CPU speed-up factor from parallelism, with
    /// diminishing returns (Amdahl-style: only part of an operator
    /// parallelises).
    pub fn parallel_speedup(&self) -> f64 {
        let w = self.max_parallel_workers as f64;
        1.0 + 0.35 * w.ln_1p()
    }

    /// Fold every knob into an environment fingerprint (see
    /// [`crate::env::DbEnvironment::fingerprint`]).
    pub fn hash_into(&self, h: &mut crate::env::Fnv1a) {
        h.write_u64(self.seq_page_cost.to_bits());
        h.write_u64(self.random_page_cost.to_bits());
        h.write_u64(self.cpu_tuple_cost.to_bits());
        h.write_u64(self.cpu_index_tuple_cost.to_bits());
        h.write_u64(self.cpu_operator_cost.to_bits());
        h.write_u64(self.work_mem_kb);
        h.write_u64(self.shared_buffers_mb);
        h.write_u64(self.effective_cache_size_mb);
        h.write_bool(self.enable_seqscan);
        h.write_bool(self.enable_indexscan);
        h.write_bool(self.enable_hashjoin);
        h.write_bool(self.enable_mergejoin);
        h.write_bool(self.enable_nestloop);
        h.write_u64(self.max_parallel_workers as u64);
    }

    /// Number of entries [`KnobConfig::knob_vector_into`] appends.
    pub const VECTOR_DIM: usize = 14;

    /// Append this configuration's numeric feature vector to `out`.
    ///
    /// Each component is scaled so a "typical" spread across sampled
    /// configurations is O(1): planner cost constants are divided by their
    /// realistic upper bound, memory sizes enter on a log2 scale, and the
    /// `enable_*` switches contribute 0/1. The vector is the coordinate
    /// space of [`crate::env::knob_distance`], which the serving layer uses
    /// for nearest-fingerprint snapshot transfer — dimensions with larger
    /// spread dominate the metric, so the scaling here *is* the metric.
    pub fn knob_vector_into(&self, out: &mut Vec<f64>) {
        out.push(self.seq_page_cost / 2.0);
        out.push(self.random_page_cost / 8.0);
        out.push(self.cpu_tuple_cost / 0.03);
        out.push(self.cpu_index_tuple_cost / 0.01);
        out.push(self.cpu_operator_cost / 0.006);
        out.push((self.work_mem_kb as f64).max(1.0).log2() / 18.0);
        out.push((self.shared_buffers_mb as f64).max(1.0).log2() / 13.0);
        out.push((self.effective_cache_size_mb as f64).max(1.0).log2() / 14.0);
        out.push(self.enable_seqscan as u8 as f64);
        out.push(self.enable_indexscan as u8 as f64);
        out.push(self.enable_hashjoin as u8 as f64);
        out.push(self.enable_mergejoin as u8 as f64);
        out.push(self.enable_nestloop as u8 as f64);
        out.push(self.max_parallel_workers as f64 / 8.0);
    }

    /// Render the knobs as `SET` statements (useful for debugging and docs).
    pub fn to_sql(&self) -> String {
        format!(
            "SET seq_page_cost = {};\nSET random_page_cost = {};\nSET cpu_tuple_cost = {};\n\
             SET cpu_index_tuple_cost = {};\nSET cpu_operator_cost = {};\nSET work_mem = '{}kB';\n\
             SET shared_buffers = '{}MB';\nSET effective_cache_size = '{}MB';\n\
             SET enable_seqscan = {};\nSET enable_indexscan = {};\nSET enable_hashjoin = {};\n\
             SET enable_mergejoin = {};\nSET enable_nestloop = {};\nSET max_parallel_workers = {};",
            self.seq_page_cost,
            self.random_page_cost,
            self.cpu_tuple_cost,
            self.cpu_index_tuple_cost,
            self.cpu_operator_cost,
            self.work_mem_kb,
            self.shared_buffers_mb,
            self.effective_cache_size_mb,
            self.enable_seqscan,
            self.enable_indexscan,
            self.enable_hashjoin,
            self.enable_mergejoin,
            self.enable_nestloop,
            self.max_parallel_workers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_postgres_14() {
        let k = KnobConfig::default();
        assert_eq!(k.seq_page_cost, 1.0);
        assert_eq!(k.random_page_cost, 4.0);
        assert_eq!(k.cpu_tuple_cost, 0.01);
        assert_eq!(k.work_mem_kb, 4096);
        assert!(k.enable_seqscan && k.enable_indexscan);
    }

    #[test]
    fn sampled_configs_are_in_range_and_vary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let configs: Vec<KnobConfig> = (0..50).map(|_| KnobConfig::sample(&mut rng)).collect();
        for c in &configs {
            assert!(c.random_page_cost >= 1.1 && c.random_page_cost <= 8.0);
            assert!(c.cpu_tuple_cost > 0.0);
            assert!(c.buffer_pool_pages() >= 16);
        }
        // at least two distinct work_mem settings across 50 draws
        let distinct_wm: std::collections::HashSet<u64> =
            configs.iter().map(|c| c.work_mem_kb).collect();
        assert!(distinct_wm.len() >= 2);
    }

    #[test]
    fn derived_quantities() {
        let k = KnobConfig {
            shared_buffers_mb: 128,
            ..Default::default()
        };
        assert_eq!(k.buffer_pool_pages(), 128 * 1024 * 1024 / 8192);
        assert_eq!(k.work_mem_bytes(), 4096 * 1024);
        let none = KnobConfig {
            max_parallel_workers: 0,
            ..Default::default()
        };
        assert_eq!(none.parallel_speedup(), 1.0);
        let many = KnobConfig {
            max_parallel_workers: 8,
            ..Default::default()
        };
        assert!(many.parallel_speedup() > none.parallel_speedup());
        assert!(many.parallel_speedup() < 3.0, "diminishing returns");
    }

    #[test]
    fn sql_rendering_mentions_every_knob() {
        let sql = KnobConfig::default().to_sql();
        for knob in [
            "seq_page_cost",
            "random_page_cost",
            "cpu_tuple_cost",
            "work_mem",
            "shared_buffers",
            "enable_hashjoin",
            "max_parallel_workers",
        ] {
            assert!(sql.contains(knob), "missing {knob}");
        }
    }
}

//! Physical plan trees.
//!
//! A [`PlanNode`] carries the physical operator, its children, the
//! planner-estimated cardinality/width/cost and — after simulation — the
//! actual cardinality and timing, mirroring `EXPLAIN (ANALYZE)` output. The
//! per-node actual times are the labels used both to fit the feature
//! snapshot and to train QPPNet's operator-level neural units.

use crate::expr::{ColumnRef, JoinCondition, Predicate};
use crate::query::Aggregate;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The kind of a physical operator (used for one-hot encodings and for the
/// per-operator feature snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Full sequential scan of a heap relation.
    SeqScan,
    /// B+tree index scan.
    IndexScan,
    /// In-memory or external sort.
    Sort,
    /// Hash or group aggregate.
    Aggregate,
    /// Hash join.
    HashJoin,
    /// Merge join.
    MergeJoin,
    /// Nested-loop join.
    NestedLoop,
    /// Materialisation of an intermediate result.
    Materialize,
    /// Row-limit node.
    Limit,
}

impl OperatorKind {
    /// All operator kinds, in a stable order used for one-hot encoding.
    pub const ALL: [OperatorKind; 9] = [
        OperatorKind::SeqScan,
        OperatorKind::IndexScan,
        OperatorKind::Sort,
        OperatorKind::Aggregate,
        OperatorKind::HashJoin,
        OperatorKind::MergeJoin,
        OperatorKind::NestedLoop,
        OperatorKind::Materialize,
        OperatorKind::Limit,
    ];

    /// Index of this kind within [`OperatorKind::ALL`].
    pub fn index(&self) -> usize {
        OperatorKind::ALL
            .iter()
            .position(|k| k == self)
            .expect("kind present in ALL")
    }

    /// Human-readable name (matches PostgreSQL node labels loosely).
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::SeqScan => "Seq Scan",
            OperatorKind::IndexScan => "Index Scan",
            OperatorKind::Sort => "Sort",
            OperatorKind::Aggregate => "Aggregate",
            OperatorKind::HashJoin => "Hash Join",
            OperatorKind::MergeJoin => "Merge Join",
            OperatorKind::NestedLoop => "Nested Loop",
            OperatorKind::Materialize => "Materialize",
            OperatorKind::Limit => "Limit",
        }
    }

    /// Whether the operator is a join.
    pub fn is_join(&self) -> bool {
        matches!(
            self,
            OperatorKind::HashJoin | OperatorKind::MergeJoin | OperatorKind::NestedLoop
        )
    }

    /// Whether the operator is a base-relation scan.
    pub fn is_scan(&self) -> bool {
        matches!(self, OperatorKind::SeqScan | OperatorKind::IndexScan)
    }
}

/// A physical operator with its parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalOp {
    /// Sequential scan of `table`.
    SeqScan {
        /// Scanned table name.
        table: String,
    },
    /// Index scan of `table` using the index on `column`.
    IndexScan {
        /// Scanned table name.
        table: String,
        /// Indexed column driving the scan.
        column: String,
    },
    /// Sort on the given keys.
    Sort {
        /// Sort keys.
        keys: Vec<ColumnRef>,
    },
    /// Grouping/aggregation.
    Aggregate {
        /// GROUP BY columns.
        group_by: Vec<ColumnRef>,
        /// Aggregate functions computed.
        functions: Vec<Aggregate>,
    },
    /// Hash join on an equi-join condition.
    HashJoin {
        /// Join condition.
        condition: JoinCondition,
    },
    /// Merge join on an equi-join condition (children must be sorted).
    MergeJoin {
        /// Join condition.
        condition: JoinCondition,
    },
    /// Nested-loop join, optionally with a join condition (cross join when
    /// absent).
    NestedLoop {
        /// Join condition, if any.
        condition: Option<JoinCondition>,
    },
    /// Materialise the child output.
    Materialize,
    /// Pass through at most `count` rows.
    Limit {
        /// Row limit.
        count: u64,
    },
}

impl PhysicalOp {
    /// The operator kind (for encodings and snapshots).
    pub fn kind(&self) -> OperatorKind {
        match self {
            PhysicalOp::SeqScan { .. } => OperatorKind::SeqScan,
            PhysicalOp::IndexScan { .. } => OperatorKind::IndexScan,
            PhysicalOp::Sort { .. } => OperatorKind::Sort,
            PhysicalOp::Aggregate { .. } => OperatorKind::Aggregate,
            PhysicalOp::HashJoin { .. } => OperatorKind::HashJoin,
            PhysicalOp::MergeJoin { .. } => OperatorKind::MergeJoin,
            PhysicalOp::NestedLoop { .. } => OperatorKind::NestedLoop,
            PhysicalOp::Materialize => OperatorKind::Materialize,
            PhysicalOp::Limit { .. } => OperatorKind::Limit,
        }
    }

    /// The base table this operator scans, if it is a scan.
    pub fn scanned_table(&self) -> Option<&str> {
        match self {
            PhysicalOp::SeqScan { table } | PhysicalOp::IndexScan { table, .. } => Some(table),
            _ => None,
        }
    }
}

/// A node of a physical plan tree with planner estimates and (after
/// simulation) actuals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// The physical operator.
    pub op: PhysicalOp,
    /// Child nodes (0 for scans, 1 for sort/aggregate/materialize/limit,
    /// 2 for joins).
    pub children: Vec<PlanNode>,
    /// Filter predicates evaluated at this node (scans only in this model).
    pub predicates: Vec<Predicate>,
    /// Planner-estimated output rows.
    pub est_rows: f64,
    /// Planner-estimated output width in bytes.
    pub est_width: f64,
    /// Planner-estimated total cost in cost units (includes children).
    pub est_cost: f64,
    /// Actual output rows (filled by the execution simulator).
    pub actual_rows: f64,
    /// Actual time spent in this node alone, milliseconds.
    pub actual_self_ms: f64,
    /// Actual time including children, milliseconds.
    pub actual_total_ms: f64,
}

impl PlanNode {
    /// Create a node with zeroed estimates.
    pub fn new(op: PhysicalOp, children: Vec<PlanNode>) -> Self {
        PlanNode {
            op,
            children,
            predicates: Vec::new(),
            est_rows: 0.0,
            est_width: 0.0,
            est_cost: 0.0,
            actual_rows: 0.0,
            actual_self_ms: 0.0,
            actual_total_ms: 0.0,
        }
    }

    /// Attach filter predicates (builder style).
    pub fn with_predicates(mut self, predicates: Vec<Predicate>) -> Self {
        self.predicates = predicates;
        self
    }

    /// Number of nodes in the subtree rooted here.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Pre-order iterator over the subtree.
    pub fn iter_preorder(&self) -> Vec<&PlanNode> {
        let mut out = Vec::with_capacity(self.node_count());
        fn walk<'a>(node: &'a PlanNode, out: &mut Vec<&'a PlanNode>) {
            out.push(node);
            for c in &node.children {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Mutable pre-order traversal applying `f` to every node.
    pub fn for_each_mut<F: FnMut(&mut PlanNode)>(&mut self, f: &mut F) {
        f(self);
        for c in &mut self.children {
            c.for_each_mut(f);
        }
    }

    /// All operator kinds appearing in the subtree.
    pub fn operator_kinds(&self) -> Vec<OperatorKind> {
        self.iter_preorder().iter().map(|n| n.op.kind()).collect()
    }

    /// All base tables scanned in the subtree.
    pub fn scanned_tables(&self) -> Vec<&str> {
        self.iter_preorder()
            .iter()
            .filter_map(|n| n.op.scanned_table())
            .collect()
    }

    /// Render the plan as indented text, in the spirit of `EXPLAIN ANALYZE`.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let detail = match &self.op {
            PhysicalOp::SeqScan { table } => format!(" on {table}"),
            PhysicalOp::IndexScan { table, column } => format!(" on {table} using {column}"),
            PhysicalOp::Sort { keys } => {
                let k: Vec<String> = keys.iter().map(|c| c.to_string()).collect();
                format!(" by {}", k.join(", "))
            }
            PhysicalOp::HashJoin { condition } | PhysicalOp::MergeJoin { condition } => {
                format!(" on {}", condition.to_sql())
            }
            PhysicalOp::NestedLoop { condition: Some(c) } => format!(" on {}", c.to_sql()),
            PhysicalOp::Limit { count } => format!(" {count}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{pad}{}{} (est_rows={:.0} est_cost={:.2}) (actual_rows={:.0} self={:.3}ms total={:.3}ms)",
            self.op.kind().name(),
            detail,
            self.est_rows,
            self.est_cost,
            self.actual_rows,
            self.actual_self_ms,
            self.actual_total_ms
        );
        for c in &self.children {
            c.explain_into(out, indent + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColumnRef;

    fn join_plan() -> PlanNode {
        let scan_a = PlanNode::new(
            PhysicalOp::SeqScan {
                table: "orders".into(),
            },
            vec![],
        );
        let scan_b = PlanNode::new(
            PhysicalOp::IndexScan {
                table: "customer".into(),
                column: "c_custkey".into(),
            },
            vec![],
        );
        let join = PlanNode::new(
            PhysicalOp::HashJoin {
                condition: JoinCondition::new(
                    ColumnRef::new("orders", "o_custkey"),
                    ColumnRef::new("customer", "c_custkey"),
                ),
            },
            vec![scan_a, scan_b],
        );
        let sort = PlanNode::new(
            PhysicalOp::Sort {
                keys: vec![ColumnRef::new("orders", "o_orderdate")],
            },
            vec![join],
        );
        PlanNode::new(PhysicalOp::Limit { count: 10 }, vec![sort])
    }

    #[test]
    fn operator_kind_properties() {
        assert_eq!(OperatorKind::ALL.len(), 9);
        for (i, k) in OperatorKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert!(OperatorKind::HashJoin.is_join());
        assert!(!OperatorKind::Sort.is_join());
        assert!(OperatorKind::SeqScan.is_scan());
        assert!(!OperatorKind::Aggregate.is_scan());
        assert_eq!(OperatorKind::NestedLoop.name(), "Nested Loop");
    }

    #[test]
    fn tree_shape_accessors() {
        let plan = join_plan();
        assert_eq!(plan.node_count(), 5);
        assert_eq!(plan.depth(), 4);
        let kinds = plan.operator_kinds();
        assert_eq!(kinds[0], OperatorKind::Limit);
        assert!(kinds.contains(&OperatorKind::HashJoin));
        assert_eq!(plan.scanned_tables(), vec!["orders", "customer"]);
        assert_eq!(plan.iter_preorder().len(), 5);
    }

    #[test]
    fn physical_op_kind_and_table() {
        let op = PhysicalOp::IndexScan {
            table: "t".into(),
            column: "c".into(),
        };
        assert_eq!(op.kind(), OperatorKind::IndexScan);
        assert_eq!(op.scanned_table(), Some("t"));
        assert_eq!(PhysicalOp::Materialize.scanned_table(), None);
    }

    #[test]
    fn for_each_mut_updates_every_node() {
        let mut plan = join_plan();
        plan.for_each_mut(&mut |n| n.est_rows = 42.0);
        assert!(plan.iter_preorder().iter().all(|n| n.est_rows == 42.0));
    }

    #[test]
    fn explain_renders_every_operator() {
        let text = join_plan().explain();
        for needle in [
            "Limit",
            "Sort",
            "Hash Join",
            "Seq Scan on orders",
            "Index Scan on customer",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // indentation grows with depth
        assert!(text.lines().last().unwrap().starts_with("      "));
    }
}

//! Logical query specification and SQL rendering.
//!
//! The workload generators produce [`Query`] values (select-project-join
//! blocks with optional grouping, ordering and limits — exactly the fragment
//! exercised by TPC-H, job-light and Sysbench's read-only mix). Queries can
//! render themselves to SQL text; the simplified-template machinery in
//! `qcfe-core` parses that text with the keyword table of the paper's
//! Algorithm 1.

use crate::expr::{ColumnRef, JoinCondition, Predicate};
use serde::{Deserialize, Serialize};

/// An aggregate function over a column (or `*`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Aggregate {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(column)`.
    Sum(ColumnRef),
    /// `AVG(column)`.
    Avg(ColumnRef),
    /// `MIN(column)`.
    Min(ColumnRef),
    /// `MAX(column)`.
    Max(ColumnRef),
}

impl Aggregate {
    /// Render as SQL.
    pub fn to_sql(&self) -> String {
        match self {
            Aggregate::CountStar => "COUNT(*)".to_string(),
            Aggregate::Sum(c) => format!("SUM({c})"),
            Aggregate::Avg(c) => format!("AVG({c})"),
            Aggregate::Min(c) => format!("MIN({c})"),
            Aggregate::Max(c) => format!("MAX({c})"),
        }
    }
}

/// A logical query: single SPJ block with optional aggregation/ordering.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Query {
    /// Tables referenced (FROM clause), by name.
    pub tables: Vec<String>,
    /// Equi-join conditions between the tables.
    pub joins: Vec<JoinCondition>,
    /// Conjunctive filter predicates on base tables.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// Aggregate expressions in the SELECT list (empty = `SELECT *`).
    pub aggregates: Vec<Aggregate>,
    /// ORDER BY columns.
    pub order_by: Vec<ColumnRef>,
    /// LIMIT, if any.
    pub limit: Option<u64>,
}

impl Query {
    /// Start building a query over one table.
    pub fn scan(table: impl Into<String>) -> Self {
        Query {
            tables: vec![table.into()],
            ..Default::default()
        }
    }

    /// Add a joined table with its join condition (builder style).
    pub fn join(mut self, table: impl Into<String>, condition: JoinCondition) -> Self {
        self.tables.push(table.into());
        self.joins.push(condition);
        self
    }

    /// Add a filter predicate (builder style).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// Add a GROUP BY column (builder style).
    pub fn group(mut self, column: ColumnRef) -> Self {
        self.group_by.push(column);
        self
    }

    /// Add an aggregate to the SELECT list (builder style).
    pub fn aggregate(mut self, agg: Aggregate) -> Self {
        self.aggregates.push(agg);
        self
    }

    /// Add an ORDER BY column (builder style).
    pub fn order(mut self, column: ColumnRef) -> Self {
        self.order_by.push(column);
        self
    }

    /// Set a LIMIT (builder style).
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// All predicates that apply to the given base table.
    pub fn predicates_for(&self, table: &str) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.column().table == table)
            .collect()
    }

    /// Whether the query joins more than one table.
    pub fn is_join_query(&self) -> bool {
        self.tables.len() > 1
    }

    /// Whether the query aggregates (GROUP BY or aggregate functions).
    pub fn is_aggregate_query(&self) -> bool {
        !self.group_by.is_empty() || !self.aggregates.is_empty()
    }

    /// Render the query as SQL text.
    pub fn to_sql(&self) -> String {
        let select_list = if self.aggregates.is_empty() {
            "*".to_string()
        } else {
            let mut items: Vec<String> = self.group_by.iter().map(|c| c.to_string()).collect();
            items.extend(self.aggregates.iter().map(|a| a.to_sql()));
            items.join(", ")
        };
        let mut sql = format!("SELECT {select_list} FROM {}", self.tables.join(", "));

        let mut conditions: Vec<String> = self.joins.iter().map(|j| j.to_sql()).collect();
        conditions.extend(self.predicates.iter().map(|p| p.to_sql()));
        if !conditions.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conditions.join(" AND "));
        }
        if !self.group_by.is_empty() {
            let cols: Vec<String> = self.group_by.iter().map(|c| c.to_string()).collect();
            sql.push_str(" GROUP BY ");
            sql.push_str(&cols.join(", "));
        }
        if !self.order_by.is_empty() {
            let cols: Vec<String> = self.order_by.iter().map(|c| c.to_string()).collect();
            sql.push_str(" ORDER BY ");
            sql.push_str(&cols.join(", "));
        }
        if let Some(n) = self.limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        sql.push(';');
        sql
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CompareOp;
    use crate::types::Value;

    fn sample_query() -> Query {
        Query::scan("orders")
            .join(
                "customer",
                JoinCondition::new(
                    ColumnRef::new("orders", "o_custkey"),
                    ColumnRef::new("customer", "c_custkey"),
                ),
            )
            .filter(Predicate::Compare {
                column: ColumnRef::new("orders", "o_totalprice"),
                op: CompareOp::Gt,
                value: Value::Float(1000.0),
            })
            .group(ColumnRef::new("customer", "c_name"))
            .aggregate(Aggregate::CountStar)
            .aggregate(Aggregate::Sum(ColumnRef::new("orders", "o_totalprice")))
            .order(ColumnRef::new("customer", "c_name"))
            .limit(10)
    }

    #[test]
    fn builder_accumulates_clauses() {
        let q = sample_query();
        assert_eq!(q.tables, vec!["orders", "customer"]);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.predicates.len(), 1);
        assert!(q.is_join_query());
        assert!(q.is_aggregate_query());
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.predicates_for("orders").len(), 1);
        assert!(q.predicates_for("customer").is_empty());
    }

    #[test]
    fn sql_rendering_contains_all_clauses() {
        let sql = sample_query().to_sql();
        assert!(sql.starts_with("SELECT customer.c_name, COUNT(*), SUM(orders.o_totalprice) FROM"));
        assert!(sql.contains("orders, customer"));
        assert!(sql.contains("WHERE orders.o_custkey = customer.c_custkey"));
        assert!(sql.contains("orders.o_totalprice > 1000.0000"));
        assert!(sql.contains("GROUP BY customer.c_name"));
        assert!(sql.contains("ORDER BY customer.c_name"));
        assert!(sql.ends_with("LIMIT 10;"));
    }

    #[test]
    fn simple_scan_renders_select_star() {
        let q = Query::scan("sbtest1").filter(Predicate::Compare {
            column: ColumnRef::new("sbtest1", "id"),
            op: CompareOp::Eq,
            value: Value::Int(5),
        });
        assert_eq!(q.to_sql(), "SELECT * FROM sbtest1 WHERE sbtest1.id = 5;");
        assert!(!q.is_join_query());
        assert!(!q.is_aggregate_query());
    }

    #[test]
    fn aggregates_render() {
        assert_eq!(Aggregate::CountStar.to_sql(), "COUNT(*)");
        assert_eq!(
            Aggregate::Avg(ColumnRef::new("t", "x")).to_sql(),
            "AVG(t.x)"
        );
        assert_eq!(
            Aggregate::Min(ColumnRef::new("t", "x")).to_sql(),
            "MIN(t.x)"
        );
        assert_eq!(
            Aggregate::Max(ColumnRef::new("t", "x")).to_sql(),
            "MAX(t.x)"
        );
    }
}

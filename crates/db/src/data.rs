//! Columnar table data used by the execution simulator to compute *actual*
//! cardinalities (filter match counts, join sizes, group counts).
//!
//! Data is stored column-wise in typed vectors, which keeps memory compact
//! and predicate evaluation cache-friendly.

use crate::expr::Predicate;
use crate::types::{DataType, Value};

/// A typed column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVector {
    /// Integers (also used for dates as days-since-epoch).
    Int(Vec<i64>),
    /// Floats.
    Float(Vec<f64>),
    /// Strings.
    Text(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnVector {
    /// Create an empty vector of the right type for `dt`.
    pub fn empty(dt: DataType) -> Self {
        match dt {
            DataType::Int | DataType::Date => ColumnVector::Int(Vec::new()),
            DataType::Float => ColumnVector::Float(Vec::new()),
            DataType::Text => ColumnVector::Text(Vec::new()),
            DataType::Bool => ColumnVector::Bool(Vec::new()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Int(v) => v.len(),
            ColumnVector::Float(v) => v.len(),
            ColumnVector::Text(v) => v.len(),
            ColumnVector::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch row `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnVector::Int(v) => Value::Int(v[i]),
            ColumnVector::Float(v) => Value::Float(v[i]),
            ColumnVector::Text(v) => Value::Text(v[i].clone()),
            ColumnVector::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Append a value; the value type must match the column type.
    ///
    /// # Panics
    /// Panics on a type mismatch (generator bugs should fail loudly).
    pub fn push(&mut self, v: Value) {
        match (self, v) {
            (ColumnVector::Int(vec), Value::Int(x)) => vec.push(x),
            (ColumnVector::Int(vec), Value::Date(x)) => vec.push(x),
            (ColumnVector::Float(vec), Value::Float(x)) => vec.push(x),
            (ColumnVector::Float(vec), Value::Int(x)) => vec.push(x as f64),
            (ColumnVector::Text(vec), Value::Text(x)) => vec.push(x),
            (ColumnVector::Bool(vec), Value::Bool(x)) => vec.push(x),
            (col, v) => panic!("type mismatch pushing {v:?} into {col:?}"),
        }
    }

    /// Integer view of row `i`, when the column is integer-typed.
    pub fn as_i64(&self, i: usize) -> Option<i64> {
        match self {
            ColumnVector::Int(v) => Some(v[i]),
            _ => None,
        }
    }

    /// Evaluate a predicate over the whole column, returning a selection
    /// bitmap.
    pub fn evaluate(&self, predicate: &Predicate) -> Vec<bool> {
        (0..self.len())
            .map(|i| predicate.evaluate(&self.value(i)))
            .collect()
    }

    /// Count of distinct values (exact; the columns are small enough).
    pub fn distinct_count(&self) -> u64 {
        use std::collections::HashSet;
        match self {
            ColumnVector::Int(v) => v.iter().collect::<HashSet<_>>().len() as u64,
            ColumnVector::Float(v) => {
                v.iter().map(|f| f.to_bits()).collect::<HashSet<_>>().len() as u64
            }
            ColumnVector::Text(v) => v.iter().collect::<HashSet<_>>().len() as u64,
            ColumnVector::Bool(v) => v.iter().collect::<HashSet<_>>().len() as u64,
        }
    }

    /// Minimum and maximum as `Value`s, when the column is orderable and
    /// non-empty.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        if self.is_empty() {
            return None;
        }
        match self {
            ColumnVector::Int(v) => {
                let min = *v.iter().min().expect("non-empty");
                let max = *v.iter().max().expect("non-empty");
                Some((Value::Int(min), Value::Int(max)))
            }
            ColumnVector::Float(v) => {
                let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                Some((Value::Float(min), Value::Float(max)))
            }
            ColumnVector::Text(v) => {
                let min = v.iter().min().expect("non-empty").clone();
                let max = v.iter().max().expect("non-empty").clone();
                Some((Value::Text(min), Value::Text(max)))
            }
            ColumnVector::Bool(_) => Some((Value::Bool(false), Value::Bool(true))),
        }
    }
}

/// The data of one table: one [`ColumnVector`] per schema column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableData {
    columns: Vec<ColumnVector>,
    row_count: usize,
}

impl TableData {
    /// Create table data with the given columns.
    ///
    /// # Panics
    /// Panics if the column lengths disagree.
    pub fn new(columns: Vec<ColumnVector>) -> Self {
        let row_count = columns.first().map(|c| c.len()).unwrap_or(0);
        assert!(
            columns.iter().all(|c| c.len() == row_count),
            "all columns must have the same length"
        );
        TableData { columns, row_count }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a column.
    pub fn column(&self, idx: usize) -> &ColumnVector {
        &self.columns[idx]
    }

    /// Count rows matching a conjunction of predicates, where each predicate
    /// has already been resolved to a column index of this table.
    pub fn count_matching(&self, predicates: &[(usize, &Predicate)]) -> usize {
        if predicates.is_empty() {
            return self.row_count;
        }
        let mut count = 0usize;
        'rows: for row in 0..self.row_count {
            for (col_idx, pred) in predicates {
                if !pred.evaluate(&self.columns[*col_idx].value(row)) {
                    continue 'rows;
                }
            }
            count += 1;
        }
        count
    }

    /// Selection bitmap for a conjunction of predicates.
    pub fn selection_bitmap(&self, predicates: &[(usize, &Predicate)]) -> Vec<bool> {
        let mut bitmap = vec![true; self.row_count];
        for (col_idx, pred) in predicates {
            let col = &self.columns[*col_idx];
            for (row, keep) in bitmap.iter_mut().enumerate() {
                if *keep && !pred.evaluate(&col.value(row)) {
                    *keep = false;
                }
            }
        }
        bitmap
    }

    /// Collect the integer join keys of rows selected by `bitmap` from
    /// column `col_idx`. Non-integer columns hash their textual rendering.
    pub fn join_keys(&self, col_idx: usize, bitmap: &[bool]) -> Vec<i64> {
        let col = &self.columns[col_idx];
        let mut keys = Vec::with_capacity(bitmap.iter().filter(|b| **b).count());
        for (row, keep) in bitmap.iter().enumerate() {
            if !keep {
                continue;
            }
            let key = match col {
                ColumnVector::Int(v) => v[row],
                ColumnVector::Float(v) => v[row].to_bits() as i64,
                ColumnVector::Text(v) => {
                    use std::hash::{Hash, Hasher};
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    v[row].hash(&mut h);
                    h.finish() as i64
                }
                ColumnVector::Bool(v) => v[row] as i64,
            };
            keys.push(key);
        }
        keys
    }

    /// Number of distinct groups produced by grouping the selected rows on
    /// the given columns.
    pub fn group_count(&self, group_columns: &[usize], bitmap: &[bool]) -> usize {
        use std::collections::HashSet;
        if group_columns.is_empty() {
            return 1;
        }
        let mut groups: HashSet<Vec<String>> = HashSet::new();
        for (row, keep) in bitmap.iter().enumerate() {
            if !keep {
                continue;
            }
            let key: Vec<String> = group_columns
                .iter()
                .map(|&c| self.columns[c].value(row).to_sql())
                .collect();
            groups.insert(key);
        }
        groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ColumnRef, CompareOp};

    fn cref() -> ColumnRef {
        ColumnRef::new("t", "a")
    }

    fn sample() -> TableData {
        TableData::new(vec![
            ColumnVector::Int((0..100).collect()),
            ColumnVector::Float((0..100).map(|i| i as f64 * 0.5).collect()),
            ColumnVector::Text((0..100).map(|i| format!("name_{}", i % 10)).collect()),
        ])
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.row_count(), 100);
        assert_eq!(t.column_count(), 3);
        assert_eq!(t.column(0).value(5), Value::Int(5));
        assert_eq!(t.column(2).value(13), Value::Text("name_3".into()));
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_columns_panic() {
        let _ = TableData::new(vec![
            ColumnVector::Int(vec![1, 2, 3]),
            ColumnVector::Int(vec![1]),
        ]);
    }

    #[test]
    fn column_vector_push_and_types() {
        let mut c = ColumnVector::empty(DataType::Date);
        c.push(Value::Date(100));
        c.push(Value::Int(200));
        assert_eq!(c.len(), 2);
        assert_eq!(c.as_i64(1), Some(200));
        let mut f = ColumnVector::empty(DataType::Float);
        f.push(Value::Int(3));
        assert_eq!(f.value(0), Value::Float(3.0));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn pushing_wrong_type_panics() {
        let mut c = ColumnVector::empty(DataType::Int);
        c.push(Value::Text("oops".into()));
    }

    #[test]
    fn distinct_and_min_max() {
        let t = sample();
        assert_eq!(t.column(0).distinct_count(), 100);
        assert_eq!(t.column(2).distinct_count(), 10);
        let (min, max) = t.column(0).min_max().unwrap();
        assert_eq!(min, Value::Int(0));
        assert_eq!(max, Value::Int(99));
        assert!(ColumnVector::Int(vec![]).min_max().is_none());
    }

    #[test]
    fn count_matching_conjunction() {
        let t = sample();
        let p1 = Predicate::Compare {
            column: cref(),
            op: CompareOp::Ge,
            value: Value::Int(50),
        };
        let p2 = Predicate::Compare {
            column: cref(),
            op: CompareOp::Lt,
            value: Value::Int(60),
        };
        assert_eq!(t.count_matching(&[(0, &p1), (0, &p2)]), 10);
        assert_eq!(t.count_matching(&[]), 100);
        let bitmap = t.selection_bitmap(&[(0, &p1), (0, &p2)]);
        assert_eq!(bitmap.iter().filter(|b| **b).count(), 10);
        assert!(bitmap[55] && !bitmap[5]);
    }

    #[test]
    fn join_keys_and_groups() {
        let t = sample();
        let all = vec![true; 100];
        let keys = t.join_keys(0, &all);
        assert_eq!(keys.len(), 100);
        assert_eq!(keys[7], 7);
        assert_eq!(t.group_count(&[2], &all), 10);
        assert_eq!(t.group_count(&[], &all), 1);
        let none = vec![false; 100];
        assert_eq!(t.group_count(&[2], &none), 0);
        assert!(t.join_keys(2, &all).len() == 100);
    }

    #[test]
    fn text_predicate_over_column() {
        let t = sample();
        let p = Predicate::Like {
            column: cref(),
            pattern: "name_3%".into(),
        };
        let matches = t.column(2).evaluate(&p).iter().filter(|b| **b).count();
        assert_eq!(matches, 10);
    }
}

//! Table statistics (ANALYZE) and selectivity estimation.
//!
//! These are the "data statistics" features that existing learned estimators
//! already encode (and that the PostgreSQL baseline uses). The statistics are
//! equi-depth histograms plus most-common-value lists and distinct counts,
//! mirroring PostgreSQL's `pg_stats`.

use crate::data::{ColumnVector, TableData};
use crate::expr::{CompareOp, Predicate};
use crate::types::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of histogram buckets collected per column.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Number of most-common values tracked per column.
pub const MCV_COUNT: usize = 8;

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of rows sampled (here: all rows).
    pub row_count: u64,
    /// Number of distinct values.
    pub distinct_count: u64,
    /// Fraction of NULLs (always 0 for the synthetic generators, kept for
    /// completeness).
    pub null_fraction: f64,
    /// Minimum value (numeric view), if the column is numeric.
    pub min: Option<f64>,
    /// Maximum value (numeric view), if the column is numeric.
    pub max: Option<f64>,
    /// Equi-depth histogram bucket boundaries (numeric columns only),
    /// `buckets + 1` entries.
    pub histogram: Vec<f64>,
    /// Most common values and their frequencies (fraction of rows).
    pub mcvs: Vec<(String, f64)>,
}

impl ColumnStats {
    /// Collect statistics for a column.
    pub fn analyze(column: &ColumnVector) -> Self {
        let row_count = column.len() as u64;
        let distinct_count = column.distinct_count().max(1);

        // Numeric summary.
        let mut numeric: Vec<f64> = (0..column.len())
            .filter_map(|i| column.value(i).as_f64())
            .collect();
        let (min, max, histogram) = if numeric.is_empty() {
            (None, None, Vec::new())
        } else {
            numeric.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let min = numeric[0];
            let max = numeric[numeric.len() - 1];
            let mut hist = Vec::with_capacity(HISTOGRAM_BUCKETS + 1);
            for b in 0..=HISTOGRAM_BUCKETS {
                let pos = (b * (numeric.len() - 1)) / HISTOGRAM_BUCKETS;
                hist.push(numeric[pos]);
            }
            (Some(min), Some(max), hist)
        };

        // Most common values.
        let mut freq: HashMap<String, u64> = HashMap::new();
        for i in 0..column.len() {
            *freq.entry(column.value(i).to_sql()).or_insert(0) += 1;
        }
        let mut pairs: Vec<(String, u64)> = freq.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mcvs = pairs
            .into_iter()
            .take(MCV_COUNT)
            .map(|(v, c)| (v, c as f64 / row_count.max(1) as f64))
            .collect();

        ColumnStats {
            row_count,
            distinct_count,
            null_fraction: 0.0,
            min,
            max,
            histogram,
            mcvs,
        }
    }

    /// Estimated selectivity of `column <op> literal` using the histogram,
    /// MCVs and distinct count — a simplified PostgreSQL `clause_selectivity`.
    pub fn selectivity(&self, predicate: &Predicate) -> f64 {
        let sel = match predicate {
            Predicate::Compare { op, value, .. } => match op {
                CompareOp::Eq => self.equality_selectivity(value),
                CompareOp::Neq => 1.0 - self.equality_selectivity(value),
                CompareOp::Lt | CompareOp::Le => self.range_fraction_below(value),
                CompareOp::Gt | CompareOp::Ge => 1.0 - self.range_fraction_below(value),
            },
            Predicate::Between { low, high, .. } => {
                (self.range_fraction_below(high) - self.range_fraction_below(low)).max(0.0)
            }
            Predicate::InList { values, .. } => values
                .iter()
                .map(|v| self.equality_selectivity(v))
                .sum::<f64>()
                .min(1.0),
            // LIKE with a leading wildcard: PostgreSQL falls back to a
            // constant default selectivity.
            Predicate::Like { pattern, .. } => {
                if pattern.starts_with('%') {
                    0.1
                } else {
                    0.02
                }
            }
        };
        sel.clamp(1e-6, 1.0)
    }

    fn equality_selectivity(&self, value: &Value) -> f64 {
        let rendered = value.to_sql();
        if let Some((_, f)) = self.mcvs.iter().find(|(v, _)| *v == rendered) {
            return *f;
        }
        // Not an MCV: assume the remaining mass is spread uniformly over the
        // remaining distinct values.
        let mcv_mass: f64 = self.mcvs.iter().map(|(_, f)| f).sum();
        let remaining_distinct = self
            .distinct_count
            .saturating_sub(self.mcvs.len() as u64)
            .max(1) as f64;
        ((1.0 - mcv_mass).max(0.0) / remaining_distinct).max(1.0 / self.row_count.max(1) as f64)
    }

    /// Fraction of rows with value strictly below `value` according to the
    /// equi-depth histogram (numeric columns); 1/3 default otherwise.
    fn range_fraction_below(&self, value: &Value) -> f64 {
        let Some(v) = value.as_f64() else {
            return 1.0 / 3.0;
        };
        if self.histogram.is_empty() {
            return 1.0 / 3.0;
        }
        let (Some(min), Some(max)) = (self.min, self.max) else {
            return 1.0 / 3.0;
        };
        if v <= min {
            return 0.0;
        }
        if v >= max {
            return 1.0;
        }
        // Find the bucket containing v and interpolate within it.
        let buckets = self.histogram.len() - 1;
        for b in 0..buckets {
            let lo = self.histogram[b];
            let hi = self.histogram[b + 1];
            if v >= lo && v <= hi {
                let within = if (hi - lo).abs() < 1e-12 {
                    0.5
                } else {
                    (v - lo) / (hi - lo)
                };
                return (b as f64 + within) / buckets as f64;
            }
        }
        1.0
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: u64,
    /// Number of heap pages.
    pub page_count: u64,
    /// Per-column statistics, in schema column order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// ANALYZE a table: collect statistics for every column.
    pub fn analyze(data: &TableData, tuple_width: usize) -> Self {
        let row_count = data.row_count() as u64;
        let page_count = qcfe_storage::page::pages_for(row_count, tuple_width);
        let columns = (0..data.column_count())
            .map(|c| ColumnStats::analyze(data.column(c)))
            .collect();
        TableStats {
            row_count,
            page_count,
            columns,
        }
    }

    /// Estimated selectivity of a conjunction of predicates over this table,
    /// assuming attribute independence (the PostgreSQL default).
    pub fn conjunction_selectivity(&self, predicates: &[(usize, &Predicate)]) -> f64 {
        predicates
            .iter()
            .map(|(col, p)| self.columns[*col].selectivity(p))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Estimated join selectivity for an equi-join between a column of this
    /// table and a column of `other` (PostgreSQL's `1 / max(ndv_l, ndv_r)`).
    pub fn join_selectivity(&self, column: usize, other: &TableStats, other_column: usize) -> f64 {
        let ndv_l = self.columns[column].distinct_count.max(1) as f64;
        let ndv_r = other.columns[other_column].distinct_count.max(1) as f64;
        (1.0 / ndv_l.max(ndv_r)).clamp(1e-9, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColumnRef;

    fn cref() -> ColumnRef {
        ColumnRef::new("t", "c")
    }

    fn uniform_int_column(n: i64) -> ColumnVector {
        ColumnVector::Int((0..n).collect())
    }

    #[test]
    fn analyze_uniform_column() {
        let stats = ColumnStats::analyze(&uniform_int_column(1000));
        assert_eq!(stats.row_count, 1000);
        assert_eq!(stats.distinct_count, 1000);
        assert_eq!(stats.min, Some(0.0));
        assert_eq!(stats.max, Some(999.0));
        assert_eq!(stats.histogram.len(), HISTOGRAM_BUCKETS + 1);
        assert!(stats.mcvs.len() <= MCV_COUNT);
    }

    #[test]
    fn range_selectivity_tracks_true_fraction() {
        let stats = ColumnStats::analyze(&uniform_int_column(1000));
        let p = Predicate::Compare {
            column: cref(),
            op: CompareOp::Lt,
            value: Value::Int(250),
        };
        let sel = stats.selectivity(&p);
        assert!((sel - 0.25).abs() < 0.05, "sel {sel}");
        let p = Predicate::Compare {
            column: cref(),
            op: CompareOp::Gt,
            value: Value::Int(900),
        };
        let sel = stats.selectivity(&p);
        assert!((sel - 0.1).abs() < 0.05, "sel {sel}");
        let p = Predicate::Between {
            column: cref(),
            low: Value::Int(100),
            high: Value::Int(300),
        };
        let sel = stats.selectivity(&p);
        assert!((sel - 0.2).abs() < 0.05, "sel {sel}");
    }

    #[test]
    fn equality_selectivity_uses_mcvs_for_skew() {
        // 900 copies of 1, and 100 distinct tail values.
        let mut vals = vec![1i64; 900];
        vals.extend(2..102);
        let stats = ColumnStats::analyze(&ColumnVector::Int(vals));
        let hot = Predicate::Compare {
            column: cref(),
            op: CompareOp::Eq,
            value: Value::Int(1),
        };
        let cold = Predicate::Compare {
            column: cref(),
            op: CompareOp::Eq,
            value: Value::Int(50),
        };
        assert!(stats.selectivity(&hot) > 0.85);
        assert!(stats.selectivity(&cold) < 0.02);
    }

    #[test]
    fn out_of_range_predicates_clamp() {
        let stats = ColumnStats::analyze(&uniform_int_column(100));
        let below = Predicate::Compare {
            column: cref(),
            op: CompareOp::Lt,
            value: Value::Int(-5),
        };
        assert!(stats.selectivity(&below) <= 1e-5);
        let above = Predicate::Compare {
            column: cref(),
            op: CompareOp::Le,
            value: Value::Int(1000),
        };
        assert!(stats.selectivity(&above) >= 0.999);
    }

    #[test]
    fn like_and_text_defaults() {
        let col = ColumnVector::Text((0..100).map(|i| format!("v{i}")).collect());
        let stats = ColumnStats::analyze(&col);
        assert!(stats.min.is_none());
        let p = Predicate::Like {
            column: cref(),
            pattern: "%x%".into(),
        };
        assert!((stats.selectivity(&p) - 0.1).abs() < 1e-9);
        let p = Predicate::Like {
            column: cref(),
            pattern: "v1%".into(),
        };
        assert!((stats.selectivity(&p) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn table_stats_and_conjunction() {
        let data = TableData::new(vec![uniform_int_column(1000), uniform_int_column(1000)]);
        let stats = TableStats::analyze(&data, 100);
        assert_eq!(stats.row_count, 1000);
        assert!(stats.page_count > 1);
        let p1 = Predicate::Compare {
            column: cref(),
            op: CompareOp::Lt,
            value: Value::Int(500),
        };
        let p2 = Predicate::Compare {
            column: cref(),
            op: CompareOp::Lt,
            value: Value::Int(100),
        };
        let sel = stats.conjunction_selectivity(&[(0, &p1), (1, &p2)]);
        assert!((sel - 0.05).abs() < 0.02, "sel {sel}");
        assert_eq!(stats.conjunction_selectivity(&[]), 1.0);
    }

    #[test]
    fn join_selectivity_uses_larger_ndv() {
        let big = TableStats::analyze(&TableData::new(vec![uniform_int_column(10_000)]), 8);
        let small = TableStats::analyze(
            &TableData::new(vec![ColumnVector::Int((0..100).map(|i| i % 10).collect())]),
            8,
        );
        let sel = big.join_selectivity(0, &small, 0);
        assert!((sel - 1.0 / 10_000.0).abs() < 1e-9);
        let sel2 = small.join_selectivity(0, &big, 0);
        assert_eq!(sel, sel2);
    }
}

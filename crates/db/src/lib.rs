//! # qcfe-db — mini relational database substrate
//!
//! The QCFE paper labels queries by running them on PostgreSQL 14.4 under
//! twenty knob configurations and two hardware setups. This crate replaces
//! that setup with a deterministic, laptop-scale substrate that exposes the
//! same observable surface:
//!
//! * a [`catalog`](crate::catalog) of tables and columns,
//! * columnar [`data`](crate::data) with exact predicate/join/group
//!   evaluation (so *actual* cardinalities are real, not sampled),
//! * ANALYZE-style [`stats`](crate::stats) with histogram/MCV selectivity
//!   estimation (so *estimated* cardinalities err like a real system),
//! * PostgreSQL-flavoured [`knobs`](crate::knobs) and hardware/storage
//!   [`env`](crate::env)ironments — the paper's "ignored variables",
//! * a cost-based [`planner`](crate::planner) producing physical
//!   [`plan`](crate::plan) trees,
//! * an analytical [`cost`](crate::cost) model (the PGSQL baseline), and
//! * an [`executor`](crate::executor) that simulates execution, producing
//!   per-operator actual latencies from the environment's true cost
//!   coefficients plus noise.
//!
//! ```
//! use qcfe_db::prelude::*;
//! use rand::SeedableRng;
//!
//! // one tiny table
//! let mut catalog = Catalog::new();
//! catalog.add_table(
//!     TableBuilder::new("t")
//!         .column("id", DataType::Int)
//!         .column("v", DataType::Int)
//!         .primary_key("id"),
//! );
//! let data = TableData::new(vec![
//!     ColumnVector::Int((0..1000).collect()),
//!     ColumnVector::Int((0..1000).map(|i| i % 10).collect()),
//! ]);
//! let db = Database::build(catalog, vec![data], DbEnvironment::reference());
//!
//! let q = Query::scan("t").filter(Predicate::Compare {
//!     column: ColumnRef::new("t", "id"),
//!     op: CompareOp::Lt,
//!     value: Value::Int(100),
//! });
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let executed = db.execute(&q, &mut rng).unwrap();
//! assert_eq!(executed.root.actual_rows, 100.0);
//! assert!(executed.total_ms > 0.0);
//! ```

pub mod catalog;
pub mod cost;
pub mod data;
pub mod database;
pub mod env;
pub mod executor;
pub mod expr;
pub mod knobs;
pub mod plan;
pub mod planner;
pub mod query;
pub mod stats;
pub mod types;

pub use catalog::{Catalog, Column, TableBuilder, TableId, TableSchema};
pub use data::{ColumnVector, TableData};
pub use database::{Database, DbError, IndexMeta};
pub use env::{CostCoefficients, DbEnvironment, EnvFingerprint, HardwareProfile};
pub use executor::{execute_plan, ExecutedQuery};
pub use expr::{ColumnRef, CompareOp, JoinCondition, Predicate};
pub use knobs::KnobConfig;
pub use plan::{OperatorKind, PhysicalOp, PlanNode};
pub use planner::plan_query;
pub use query::{Aggregate, Query};
pub use stats::{ColumnStats, TableStats};
pub use types::{DataType, Value};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::catalog::{Catalog, Column, TableBuilder, TableSchema};
    pub use crate::data::{ColumnVector, TableData};
    pub use crate::database::{Database, DbError};
    pub use crate::env::{CostCoefficients, DbEnvironment, HardwareProfile};
    pub use crate::executor::ExecutedQuery;
    pub use crate::expr::{ColumnRef, CompareOp, JoinCondition, Predicate};
    pub use crate::knobs::KnobConfig;
    pub use crate::plan::{OperatorKind, PhysicalOp, PlanNode};
    pub use crate::query::{Aggregate, Query};
    pub use crate::types::{DataType, Value};
}

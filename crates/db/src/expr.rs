//! Predicates and join conditions.
//!
//! Queries in the benchmark workloads use conjunctive filter predicates over
//! single columns (comparisons, `BETWEEN`, `IN`, `LIKE`) plus equi-join
//! conditions — the same fragment the paper's template-parsing algorithm
//! (Algorithm 1 / Table II) recognises.

use crate::types::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to a column of a named table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Construct a column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Comparison operators appearing in filter predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-than-or-equal.
    Ge,
}

impl CompareOp {
    /// SQL spelling of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Neq => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// All comparison operators (used when filling templates with random
    /// operator keywords, third phase of Algorithm 1).
    pub const ALL: [CompareOp; 6] = [
        CompareOp::Eq,
        CompareOp::Neq,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ];

    /// Evaluate the operator on an ordering outcome.
    pub fn matches(&self, ordering: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ordering == Equal,
            CompareOp::Neq => ordering != Equal,
            CompareOp::Lt => ordering == Less,
            CompareOp::Le => ordering != Greater,
            CompareOp::Gt => ordering == Greater,
            CompareOp::Ge => ordering != Less,
        }
    }
}

/// A single-column filter predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `column <op> literal`.
    Compare {
        /// Column being filtered.
        column: ColumnRef,
        /// Comparison operator.
        op: CompareOp,
        /// Literal operand.
        value: Value,
    },
    /// `column BETWEEN low AND high` (inclusive).
    Between {
        /// Column being filtered.
        column: ColumnRef,
        /// Lower bound.
        low: Value,
        /// Upper bound.
        high: Value,
    },
    /// `column IN (values...)`.
    InList {
        /// Column being filtered.
        column: ColumnRef,
        /// Allowed values.
        values: Vec<Value>,
    },
    /// `column LIKE pattern` (only `%` wildcards are supported).
    Like {
        /// Column being filtered.
        column: ColumnRef,
        /// SQL LIKE pattern.
        pattern: String,
    },
}

impl Predicate {
    /// The column the predicate constrains.
    pub fn column(&self) -> &ColumnRef {
        match self {
            Predicate::Compare { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::InList { column, .. }
            | Predicate::Like { column, .. } => column,
        }
    }

    /// Evaluate the predicate on a single value (NULL never matches).
    pub fn evaluate(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        match self {
            Predicate::Compare { op, value, .. } => match v.compare(value) {
                Some(ord) => op.matches(ord),
                None => false,
            },
            Predicate::Between { low, high, .. } => {
                matches!(v.compare(low), Some(o) if o != std::cmp::Ordering::Less)
                    && matches!(v.compare(high), Some(o) if o != std::cmp::Ordering::Greater)
            }
            Predicate::InList { values, .. } => values
                .iter()
                .any(|allowed| v.compare(allowed) == Some(std::cmp::Ordering::Equal)),
            Predicate::Like { pattern, .. } => match v {
                Value::Text(s) => like_match(pattern, s),
                _ => false,
            },
        }
    }

    /// Render as a SQL condition.
    pub fn to_sql(&self) -> String {
        match self {
            Predicate::Compare { column, op, value } => {
                format!("{column} {} {}", op.sql(), value.to_sql())
            }
            Predicate::Between { column, low, high } => {
                format!("{column} BETWEEN {} AND {}", low.to_sql(), high.to_sql())
            }
            Predicate::InList { column, values } => {
                let list: Vec<String> = values.iter().map(|v| v.to_sql()).collect();
                format!("{column} IN ({})", list.join(", "))
            }
            Predicate::Like { column, pattern } => format!("{column} LIKE '{pattern}'"),
        }
    }

    /// The keyword class of this predicate as used by the paper's Table II
    /// (used when parsing templates into operator/table/column triples).
    pub fn keyword(&self) -> &'static str {
        match self {
            Predicate::Compare { op, .. } => op.sql(),
            Predicate::Between { .. } => "between",
            Predicate::InList { .. } => "in",
            Predicate::Like { .. } => "like",
        }
    }
}

/// Simple `%`-only LIKE matcher.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return pattern == text;
    }
    let mut remaining = text;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            match remaining.strip_prefix(part) {
                Some(rest) => remaining = rest,
                None => return false,
            }
        } else if i == parts.len() - 1 {
            return remaining.ends_with(part);
        } else {
            match remaining.find(part) {
                Some(pos) => remaining = &remaining[pos + part.len()..],
                None => return false,
            }
        }
    }
    true
}

/// An equi-join condition `left = right`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinCondition {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
}

impl JoinCondition {
    /// Construct a join condition.
    pub fn new(left: ColumnRef, right: ColumnRef) -> Self {
        JoinCondition { left, right }
    }

    /// Does the condition reference the given table?
    pub fn touches(&self, table: &str) -> bool {
        self.left.table == table || self.right.table == table
    }

    /// Render as SQL.
    pub fn to_sql(&self) -> String {
        format!("{} = {}", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> ColumnRef {
        ColumnRef::new("t", "a")
    }

    #[test]
    fn compare_ops_match_orderings() {
        use std::cmp::Ordering::*;
        assert!(CompareOp::Eq.matches(Equal));
        assert!(!CompareOp::Eq.matches(Less));
        assert!(CompareOp::Neq.matches(Greater));
        assert!(CompareOp::Lt.matches(Less));
        assert!(CompareOp::Le.matches(Equal));
        assert!(CompareOp::Gt.matches(Greater));
        assert!(CompareOp::Ge.matches(Equal));
        assert_eq!(CompareOp::ALL.len(), 6);
        assert_eq!(CompareOp::Le.sql(), "<=");
    }

    #[test]
    fn compare_predicate_evaluation() {
        let p = Predicate::Compare {
            column: col(),
            op: CompareOp::Gt,
            value: Value::Int(10),
        };
        assert!(p.evaluate(&Value::Int(11)));
        assert!(!p.evaluate(&Value::Int(10)));
        assert!(!p.evaluate(&Value::Null));
        assert!(p.evaluate(&Value::Float(10.5)));
        assert_eq!(p.to_sql(), "t.a > 10");
        assert_eq!(p.keyword(), ">");
    }

    #[test]
    fn between_and_in_predicates() {
        let b = Predicate::Between {
            column: col(),
            low: Value::Int(5),
            high: Value::Int(10),
        };
        assert!(b.evaluate(&Value::Int(5)));
        assert!(b.evaluate(&Value::Int(10)));
        assert!(!b.evaluate(&Value::Int(11)));
        assert!(b.to_sql().contains("BETWEEN"));

        let i = Predicate::InList {
            column: col(),
            values: vec![Value::Int(1), Value::Int(3)],
        };
        assert!(i.evaluate(&Value::Int(3)));
        assert!(!i.evaluate(&Value::Int(2)));
        assert_eq!(i.to_sql(), "t.a IN (1, 3)");
        assert_eq!(i.keyword(), "in");
    }

    #[test]
    fn like_matching() {
        assert!(like_match("%rust%", "i love rust a lot"));
        assert!(like_match("rust%", "rustacean"));
        assert!(like_match("%rust", "ferris loves rust"));
        assert!(like_match("exact", "exact"));
        assert!(!like_match("exact", "not exact!"));
        assert!(!like_match("a%b", "acx"));
        assert!(like_match("a%b%c", "a--b--c"));
        let p = Predicate::Like {
            column: col(),
            pattern: "%green%".into(),
        };
        assert!(p.evaluate(&Value::Text("dark green metal".into())));
        assert!(!p.evaluate(&Value::Int(5)));
    }

    #[test]
    fn join_condition_helpers() {
        let j = JoinCondition::new(ColumnRef::new("a", "x"), ColumnRef::new("b", "y"));
        assert!(j.touches("a"));
        assert!(j.touches("b"));
        assert!(!j.touches("c"));
        assert_eq!(j.to_sql(), "a.x = b.y");
    }
}

//! Execution simulator.
//!
//! Walks a physical plan bottom-up, computing **actual** cardinalities from
//! the stored table data (real predicate evaluation, real hash joins over
//! row indices, real group counting) and **actual** per-operator latencies
//! from the environment's true cost coefficients, the buffer pool, and the
//! logical cost shapes of Table I in the paper — plus multiplicative
//! log-normal noise so repeated executions jitter like a real system.
//!
//! The per-node `actual_self_ms` values are the operator-level labels used
//! by the feature-snapshot fit and by QPPNet training; `actual_total_ms` at
//! the root (plus a planning/startup overhead) is the query latency label.

use crate::data::ColumnVector;
use crate::database::Database;
use crate::env::CostCoefficients;
use crate::plan::{PhysicalOp, PlanNode};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use std::collections::HashMap;

/// Hard cap on materialised intermediate rows; larger results are counted
/// but sub-sampled, with the scale recorded in `Intermediate::multiplier`.
const MAX_MATERIALIZED_ROWS: usize = 300_000;

/// Relative noise (log-normal sigma) applied to every operator's time.
const NOISE_SIGMA: f64 = 0.08;

/// A fully-simulated query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutedQuery {
    /// The plan annotated with actual rows and timings.
    pub root: PlanNode,
    /// End-to-end latency in milliseconds (root total + startup overhead).
    pub total_ms: f64,
}

impl ExecutedQuery {
    /// Per-operator `(kind, input_cardinality, self_time_ms)` triples of the
    /// whole plan in pre-order — the raw material for feature snapshots.
    pub fn operator_samples(&self) -> Vec<(crate::plan::OperatorKind, f64, f64)> {
        self.root
            .iter_preorder()
            .into_iter()
            .map(|n| {
                let input = if n.children.is_empty() {
                    n.actual_rows
                } else {
                    n.children.iter().map(|c| c.actual_rows).sum()
                };
                (n.op.kind(), input, n.actual_self_ms)
            })
            .collect()
    }
}

/// An intermediate result: a bag of composite rows, each component being a
/// row index into one base table.
#[derive(Debug, Clone)]
struct Intermediate {
    /// The base tables contributing components, in component order.
    tables: Vec<String>,
    /// Row indices, `tables.len()` entries per logical row.
    rows: Vec<u32>,
    /// Scale factor when the result was sub-sampled (1.0 = exact).
    multiplier: f64,
}

impl Intermediate {
    fn arity(&self) -> usize {
        self.tables.len()
    }

    fn materialized_rows(&self) -> usize {
        if self.tables.is_empty() {
            0
        } else {
            self.rows.len() / self.tables.len()
        }
    }

    fn logical_rows(&self) -> f64 {
        self.materialized_rows() as f64 * self.multiplier
    }

    fn table_position(&self, table: &str) -> Option<usize> {
        self.tables.iter().position(|t| t == table)
    }

    fn component(&self, row: usize, position: usize) -> u32 {
        self.rows[row * self.arity() + position]
    }
}

/// Execute (simulate) a plan against a database.
pub fn execute_plan<R: Rng + ?Sized>(db: &Database, plan: &PlanNode, rng: &mut R) -> ExecutedQuery {
    let mut root = plan.clone();
    let coef = db.environment().true_coefficients();
    let _ = exec_node(db, &mut root, &coef, rng);
    // Planner/executor startup overhead, scaled by OS overhead.
    let startup = 0.08 * db.environment().os_overhead * lognormal_noise(rng);
    let total_ms = root.actual_total_ms + startup;
    ExecutedQuery { root, total_ms }
}

/// Multiplicative log-normal noise factor around 1.0.
fn lognormal_noise<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let normal = Normal::new(0.0, NOISE_SIGMA).expect("valid sigma");
    normal.sample(rng).exp()
}

/// Turn an arbitrary column value into a join key.
fn join_key(column: &ColumnVector, row: usize) -> i64 {
    match column {
        ColumnVector::Int(v) => v[row],
        ColumnVector::Float(v) => v[row].to_bits() as i64,
        ColumnVector::Bool(v) => v[row] as i64,
        ColumnVector::Text(v) => {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            v[row].hash(&mut h);
            h.finish() as i64
        }
    }
}

fn exec_node<R: Rng + ?Sized>(
    db: &Database,
    node: &mut PlanNode,
    coef: &CostCoefficients,
    rng: &mut R,
) -> Intermediate {
    // Execute children first.
    let mut child_results = Vec::with_capacity(node.children.len());
    let mut children_total_ms = 0.0;
    for child in &mut node.children {
        let r = exec_node(db, child, coef, rng);
        children_total_ms += child.actual_total_ms;
        child_results.push(r);
    }

    let knobs = &db.environment().knobs;
    let (result, mut self_ms) = match &node.op {
        PhysicalOp::SeqScan { table } => exec_seq_scan(db, node, table, coef),
        PhysicalOp::IndexScan { table, column } => exec_index_scan(db, node, table, column, coef),
        PhysicalOp::Sort { .. } => {
            let input = child_results.pop().expect("sort has one child");
            let n = input.logical_rows().max(1.0);
            let bytes = n * node.children[0].est_width.max(16.0);
            let spill_ms = if bytes > knobs.work_mem_bytes() as f64 {
                let pages = bytes / qcfe_storage::PAGE_SIZE as f64;
                2.0 * pages * coef.cs
            } else {
                0.0
            };
            let ms = coef.co * 2.0 * n * (n + 1.0).log2() + coef.ct * n + spill_ms;
            (input, ms)
        }
        PhysicalOp::Aggregate {
            group_by,
            functions,
        } => {
            let input = child_results.pop().expect("aggregate has one child");
            let n = input.logical_rows();
            let groups = actual_group_count(db, &input, group_by);
            let ms = coef.co * (group_by.len() + functions.len()).max(1) as f64 * n
                + coef.ct * groups as f64;
            // Keep only one representative row per group for downstream
            // cardinality purposes.
            let keep = (groups).min(input.materialized_rows());
            let arity = input.arity();
            let out = Intermediate {
                tables: input.tables.clone(),
                rows: input.rows[..keep * arity].to_vec(),
                multiplier: 1.0,
            };
            (out, ms)
        }
        PhysicalOp::HashJoin { condition } => {
            let inner = child_results.pop().expect("join has two children");
            let outer = child_results.pop().expect("join has two children");
            let n_outer = outer.logical_rows();
            let n_inner = inner.logical_rows();
            let out = join_intermediates(db, outer, inner, Some(condition));
            let bytes = n_inner * node.children[1].est_width.max(16.0);
            let spill_ms = if bytes > knobs.work_mem_bytes() as f64 {
                let pages = bytes / qcfe_storage::PAGE_SIZE as f64;
                2.0 * pages * coef.cs
            } else {
                0.0
            };
            let ms = coef.ct * (n_outer + n_inner) + coef.co * out.logical_rows() + spill_ms;
            (out, ms)
        }
        PhysicalOp::MergeJoin { condition } => {
            let inner = child_results.pop().expect("join has two children");
            let outer = child_results.pop().expect("join has two children");
            let n_outer = outer.logical_rows();
            let n_inner = inner.logical_rows();
            let out = join_intermediates(db, outer, inner, Some(condition));
            let ms = coef.ct * (n_outer + n_inner) + coef.co * out.logical_rows();
            (out, ms)
        }
        PhysicalOp::NestedLoop { condition } => {
            let inner = child_results.pop().expect("join has two children");
            let outer = child_results.pop().expect("join has two children");
            let n_outer = outer.logical_rows();
            let n_inner = inner.logical_rows();
            let out = join_intermediates(db, outer, inner, condition.as_ref());
            // Table I: F = c0*n1*n2 + c1*n1 + c2*n2 + c3.
            let ms = coef.co * n_outer * n_inner + coef.ct * (n_outer + out.logical_rows());
            (out, ms)
        }
        PhysicalOp::Materialize => {
            let input = child_results.pop().expect("materialize has one child");
            let n = input.logical_rows();
            let ms = coef.ct * 0.5 * n;
            (input, ms)
        }
        PhysicalOp::Limit { count } => {
            let input = child_results.pop().expect("limit has one child");
            let keep = (*count as usize).min(input.materialized_rows());
            let arity = input.arity().max(1);
            let out = Intermediate {
                tables: input.tables.clone(),
                rows: input.rows[..keep * input.arity()].to_vec(),
                multiplier: 1.0,
            };
            let _ = arity;
            let ms = coef.co * keep as f64;
            (out, ms)
        }
    };

    self_ms = (self_ms * lognormal_noise(rng) + 0.002).max(0.0005);
    node.actual_rows = result.logical_rows();
    node.actual_self_ms = self_ms;
    node.actual_total_ms = self_ms + children_total_ms;
    result
}

/// Sequential scan: bitmap-evaluate the predicates, touch every heap page
/// through the buffer pool.
fn exec_seq_scan(
    db: &Database,
    node: &PlanNode,
    table: &str,
    coef: &CostCoefficients,
) -> (Intermediate, f64) {
    let schema = db.schema(table).expect("planner validated the table");
    let data = db.table_data(table).expect("planner validated the table");
    let stats = db.table_stats(table).expect("planner validated the table");

    let resolved: Vec<(usize, &crate::expr::Predicate)> = node
        .predicates
        .iter()
        .map(|p| {
            (
                schema.column_index(&p.column().column).expect("validated"),
                p,
            )
        })
        .collect();
    let bitmap = data.selection_bitmap(&resolved);
    let rows: Vec<u32> = bitmap
        .iter()
        .enumerate()
        .filter_map(|(i, keep)| keep.then_some(i as u32))
        .collect();

    let pages = stats.page_count;
    let physical = db.buffer().access_sequential(schema.id, 0, pages);
    let total_rows = stats.row_count as f64;
    let quals = node.predicates.len() as f64;
    let ms = coef.cs * physical as f64 + coef.ct * total_rows + coef.co * quals * total_rows;

    (
        Intermediate {
            tables: vec![table.to_string()],
            rows,
            multiplier: 1.0,
        },
        ms,
    )
}

/// Index scan: same actual cardinality as a filtered scan, but the I/O model
/// follows a B+tree descent plus per-match heap fetches with random I/O.
fn exec_index_scan(
    db: &Database,
    node: &PlanNode,
    table: &str,
    column: &str,
    coef: &CostCoefficients,
) -> (Intermediate, f64) {
    let schema = db.schema(table).expect("planner validated the table");
    let data = db.table_data(table).expect("planner validated the table");
    let stats = db.table_stats(table).expect("planner validated the table");

    let resolved: Vec<(usize, &crate::expr::Predicate)> = node
        .predicates
        .iter()
        .map(|p| {
            (
                schema.column_index(&p.column().column).expect("validated"),
                p,
            )
        })
        .collect();
    let bitmap = data.selection_bitmap(&resolved);
    let rows: Vec<u32> = bitmap
        .iter()
        .enumerate()
        .filter_map(|(i, keep)| keep.then_some(i as u32))
        .collect();
    let matched = rows.len() as f64;

    let meta = db
        .index_meta(table, column)
        .unwrap_or(crate::database::IndexMeta {
            height: 2,
            leaf_pages: 1,
        });
    let leaf_fraction = (matched / stats.row_count.max(1) as f64).clamp(0.0, 1.0);
    let leaf_pages = (meta.leaf_pages as f64 * leaf_fraction).ceil().max(1.0);
    let heap_pages = matched.min(stats.page_count as f64);
    let random_pages = meta.height as f64 + leaf_pages + heap_pages;
    let miss_fraction = db
        .buffer()
        .expected_miss_fraction(stats.page_count, random_pages.ceil() as u64);
    let physical_random = random_pages * miss_fraction;
    let read_amp = db.environment().storage_format.read_amplification();

    let quals = node.predicates.len() as f64;
    let ms = coef.cr * physical_random * read_amp
        + coef.ci * matched
        + coef.ct * matched
        + coef.co * quals * matched;

    (
        Intermediate {
            tables: vec![table.to_string()],
            rows,
            multiplier: 1.0,
        },
        ms,
    )
}

/// Hash-join two intermediates on an (optional) equi-join condition.
fn join_intermediates(
    db: &Database,
    outer: Intermediate,
    inner: Intermediate,
    condition: Option<&crate::expr::JoinCondition>,
) -> Intermediate {
    let tables: Vec<String> = outer
        .tables
        .iter()
        .chain(inner.tables.iter())
        .cloned()
        .collect();
    let multiplier_base = outer.multiplier * inner.multiplier;

    let Some(cond) = condition else {
        // Cross product (bounded).
        let mut rows = Vec::new();
        let mut produced = 0usize;
        let total = outer.materialized_rows() * inner.materialized_rows();
        'outer_loop: for o in 0..outer.materialized_rows() {
            for i in 0..inner.materialized_rows() {
                if produced >= MAX_MATERIALIZED_ROWS {
                    break 'outer_loop;
                }
                push_joined_row(&mut rows, &outer, o, &inner, i);
                produced += 1;
            }
        }
        let multiplier = if produced == 0 {
            multiplier_base
        } else {
            multiplier_base * total as f64 / produced as f64
        };
        return Intermediate {
            tables,
            rows,
            multiplier,
        };
    };

    // Work out which side each end of the condition lives on.
    let (outer_ref, inner_ref) = if outer.table_position(&cond.left.table).is_some() {
        (&cond.left, &cond.right)
    } else {
        (&cond.right, &cond.left)
    };
    let (Some(outer_pos), Some(inner_pos)) = (
        outer.table_position(&outer_ref.table),
        inner.table_position(&inner_ref.table),
    ) else {
        // Disconnected condition (should not happen): degrade to cross join.
        return join_intermediates(db, outer, inner, None);
    };

    let outer_col_idx = db
        .column_index(&outer_ref.table, &outer_ref.column)
        .expect("planner validated columns");
    let inner_col_idx = db
        .column_index(&inner_ref.table, &inner_ref.column)
        .expect("planner validated columns");
    let outer_col = db
        .table_data(&outer_ref.table)
        .expect("validated")
        .column(outer_col_idx);
    let inner_col = db
        .table_data(&inner_ref.table)
        .expect("validated")
        .column(inner_col_idx);

    // Build on the inner side.
    let mut hash: HashMap<i64, Vec<u32>> = HashMap::with_capacity(inner.materialized_rows());
    for i in 0..inner.materialized_rows() {
        let base_row = inner.component(i, inner_pos) as usize;
        hash.entry(join_key(inner_col, base_row))
            .or_default()
            .push(i as u32);
    }

    // Probe from the outer side, counting everything but materialising at
    // most MAX_MATERIALIZED_ROWS rows.
    let mut rows = Vec::new();
    let mut produced = 0usize;
    let mut total_matches = 0usize;
    for o in 0..outer.materialized_rows() {
        let base_row = outer.component(o, outer_pos) as usize;
        if let Some(matches) = hash.get(&join_key(outer_col, base_row)) {
            total_matches += matches.len();
            for &i in matches {
                if produced < MAX_MATERIALIZED_ROWS {
                    push_joined_row(&mut rows, &outer, o, &inner, i as usize);
                    produced += 1;
                }
            }
        }
    }
    let multiplier = if produced == 0 || total_matches == produced {
        multiplier_base
    } else {
        multiplier_base * total_matches as f64 / produced as f64
    };
    Intermediate {
        tables,
        rows,
        multiplier,
    }
}

fn push_joined_row(
    rows: &mut Vec<u32>,
    outer: &Intermediate,
    outer_row: usize,
    inner: &Intermediate,
    inner_row: usize,
) {
    for p in 0..outer.arity() {
        rows.push(outer.component(outer_row, p));
    }
    for p in 0..inner.arity() {
        rows.push(inner.component(inner_row, p));
    }
}

/// Count the exact number of groups formed by the GROUP BY columns over an
/// intermediate result.
fn actual_group_count(
    db: &Database,
    input: &Intermediate,
    group_by: &[crate::expr::ColumnRef],
) -> usize {
    if group_by.is_empty() {
        return 1;
    }
    if input.materialized_rows() == 0 {
        return 0;
    }
    // Resolve each group column to (component position, column index).
    let mut resolved = Vec::with_capacity(group_by.len());
    for col in group_by {
        let Some(pos) = input.table_position(&col.table) else {
            continue;
        };
        let Ok(idx) = db.column_index(&col.table, &col.column) else {
            continue;
        };
        let data = db.table_data(&col.table).expect("validated");
        resolved.push((pos, idx, data));
    }
    if resolved.is_empty() {
        return 1;
    }
    let mut groups: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
    for r in 0..input.materialized_rows() {
        let key: Vec<i64> = resolved
            .iter()
            .map(|(pos, idx, data)| join_key(data.column(*idx), input.component(r, *pos) as usize))
            .collect();
        groups.insert(key);
    }
    groups.len()
}

//! Analytical cost estimation — the "PostgreSQL" baseline of the paper.
//!
//! `estimate_plan_cost` fills `est_cost` on every node of a plan using the
//! planner knobs and the classic formula the paper quotes in Section III-A:
//! `Cost = cs*ns + cr*nr + ct*nt + ci*ni + co*no`, expressed in abstract cost
//! units. Just like PostgreSQL's costs, these units are *not* milliseconds
//! and do not react to hardware or storage format, which is exactly why the
//! PGSQL baseline shows large q-errors in Table IV.

use crate::database::Database;
use crate::plan::{PhysicalOp, PlanNode};

/// Fill `est_cost` on every node (bottom-up, inclusive of children) and
/// return the root's total cost.
pub fn estimate_plan_cost(db: &Database, plan: &mut PlanNode) -> f64 {
    let knobs = db.environment().knobs.clone();
    fill(db, plan, &knobs);
    plan.est_cost
}

fn fill(db: &Database, node: &mut PlanNode, knobs: &crate::knobs::KnobConfig) {
    let mut children_cost = 0.0;
    for child in &mut node.children {
        fill(db, child, knobs);
        children_cost += child.est_cost;
    }

    let self_cost = match &node.op {
        PhysicalOp::SeqScan { table } => {
            let stats =
                db.table_stats(table)
                    .cloned()
                    .unwrap_or_else(|_| crate::stats::TableStats {
                        row_count: 1,
                        page_count: 1,
                        columns: vec![],
                    });
            let quals = node.predicates.len() as f64;
            knobs.seq_page_cost * stats.page_count as f64
                + knobs.cpu_tuple_cost * stats.row_count as f64
                + knobs.cpu_operator_cost * quals * stats.row_count as f64
        }
        PhysicalOp::IndexScan { table, column } => {
            let matched = node.est_rows.max(1.0);
            let meta = db
                .index_meta(table, column)
                .unwrap_or(crate::database::IndexMeta {
                    height: 2,
                    leaf_pages: 1,
                });
            let leaf_fraction = {
                let rows = db
                    .table_stats(table)
                    .map(|s| s.row_count.max(1))
                    .unwrap_or(1) as f64;
                (matched / rows).clamp(0.0, 1.0)
            };
            let leaf_pages = (meta.leaf_pages as f64 * leaf_fraction).ceil().max(1.0);
            // Root-to-leaf descent + leaf pages + one heap fetch per match.
            knobs.random_page_cost * (meta.height as f64 + leaf_pages + matched)
                + knobs.cpu_index_tuple_cost * matched
                + knobs.cpu_tuple_cost * matched
                + knobs.cpu_operator_cost * node.predicates.len() as f64 * matched
        }
        PhysicalOp::Sort { .. } => {
            let n = node.children[0].est_rows.max(1.0);
            let sort_cpu = knobs.cpu_operator_cost * 2.0 * n * n.log2().max(1.0);
            // External sort spills when the data exceeds work_mem.
            let bytes = n * node.children[0].est_width;
            let spill = if bytes > knobs.work_mem_bytes() as f64 {
                let pages = bytes / qcfe_storage::PAGE_SIZE as f64;
                2.0 * knobs.seq_page_cost * pages
            } else {
                0.0
            };
            sort_cpu + knobs.cpu_tuple_cost * n + spill
        }
        PhysicalOp::Aggregate {
            group_by,
            functions,
        } => {
            let n = node.children[0].est_rows.max(1.0);
            let per_row_ops = (group_by.len() + functions.len()).max(1) as f64;
            knobs.cpu_operator_cost * per_row_ops * n + knobs.cpu_tuple_cost * node.est_rows
        }
        PhysicalOp::HashJoin { .. } => {
            let outer = node.children[0].est_rows.max(1.0);
            let inner = node.children[1].est_rows.max(1.0);
            let bytes = inner * node.children[1].est_width;
            let spill = if bytes > knobs.work_mem_bytes() as f64 {
                let pages = bytes / qcfe_storage::PAGE_SIZE as f64;
                2.0 * knobs.seq_page_cost * pages
            } else {
                0.0
            };
            knobs.cpu_operator_cost * (outer + inner)
                + knobs.cpu_tuple_cost * (inner + node.est_rows)
                + spill
        }
        PhysicalOp::MergeJoin { .. } => {
            let outer = node.children[0].est_rows.max(1.0);
            let inner = node.children[1].est_rows.max(1.0);
            knobs.cpu_operator_cost * (outer + inner) + knobs.cpu_tuple_cost * node.est_rows
        }
        PhysicalOp::NestedLoop { .. } => {
            let outer = node.children[0].est_rows.max(1.0);
            let inner = node.children[1].est_rows.max(1.0);
            knobs.cpu_operator_cost * outer * inner + knobs.cpu_tuple_cost * node.est_rows
        }
        PhysicalOp::Materialize => {
            let n = node.children[0].est_rows.max(1.0);
            knobs.cpu_operator_cost * n
        }
        PhysicalOp::Limit { .. } => knobs.cpu_tuple_cost * node.est_rows.max(1.0),
    };

    node.est_cost = children_cost + self_cost;
}

/// Convert a plan's estimated cost (cost units) into the PGSQL baseline's
/// "predicted milliseconds". PostgreSQL does not do this conversion at all —
/// its costs are unit-less — so the baseline applies only a single global
/// scale factor (cost unit ≈ `cpu_tuple_cost` milliseconds), which is what
/// makes the baseline's q-error large and environment-insensitive, as in the
/// paper.
pub fn cost_units_to_ms(cost_units: f64) -> f64 {
    // One cost unit nominally corresponds to one sequential page access at
    // default knobs; treat it as 0.01 ms, a common rule of thumb.
    (cost_units * 0.01).max(1e-6)
}

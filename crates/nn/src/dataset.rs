//! Dataset container, mini-batching and feature scaling utilities.

use crate::matrix::Matrix;
use crate::NnError;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A supervised regression dataset: feature vectors with scalar targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Construct a dataset, validating that it is non-empty and rectangular.
    pub fn new(features: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self, NnError> {
        if features.is_empty() {
            return Err(NnError::InvalidDataset("no samples".into()));
        }
        if features.len() != targets.len() {
            return Err(NnError::InvalidDataset(format!(
                "{} feature rows but {} targets",
                features.len(),
                targets.len()
            )));
        }
        let dim = features[0].len();
        if dim == 0 {
            return Err(NnError::InvalidDataset("zero-dimensional features".into()));
        }
        if features.iter().any(|f| f.len() != dim) {
            return Err(NnError::InvalidDataset("ragged feature rows".into()));
        }
        Ok(Dataset { features, targets })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the dataset holds no samples (cannot happen after `new`).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features[0].len()
    }

    /// Borrow the feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Borrow the targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// A single `(features, target)` pair.
    pub fn sample(&self, idx: usize) -> (&[f64], f64) {
        (&self.features[idx], self.targets[idx])
    }

    /// Feature rows as a `(n, dim)` matrix.
    pub fn feature_matrix(&self) -> Matrix {
        Matrix::from_rows(&self.features)
    }

    /// Build a new dataset keeping only the listed feature columns
    /// (the core operation performed by feature reduction).
    pub fn project_columns(&self, keep: &[usize]) -> Result<Dataset, NnError> {
        if keep.is_empty() {
            return Err(NnError::InvalidDataset(
                "cannot project to zero columns".into(),
            ));
        }
        let dim = self.dim();
        if let Some(&bad) = keep.iter().find(|&&c| c >= dim) {
            return Err(NnError::InvalidDataset(format!(
                "column {bad} out of range (dim {dim})"
            )));
        }
        let features = self
            .features
            .iter()
            .map(|row| keep.iter().map(|&c| row[c]).collect())
            .collect();
        Dataset::new(features, self.targets.clone())
    }

    /// Deterministically split into `(train, test)` with the given training
    /// fraction, after a seeded shuffle.
    pub fn train_test_split<R: Rng + ?Sized>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must be within [0, 1]"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        let take = |idx: &[usize]| -> Dataset {
            Dataset {
                features: idx.iter().map(|&i| self.features[i].clone()).collect(),
                targets: idx.iter().map(|&i| self.targets[i]).collect(),
            }
        };
        (take(&indices[..cut]), take(&indices[cut..]))
    }

    /// Take a random subsample of `n` rows (used for reference sets in
    /// difference propagation and for scale sweeps).
    pub fn subsample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let n = n.min(self.len()).max(1);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.truncate(n);
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            targets: indices.iter().map(|&i| self.targets[i]).collect(),
        }
    }

    /// Iterate over mini-batches of (feature matrix, target slice) pairs in a
    /// fixed order.
    pub fn batches(&self, batch_size: usize) -> Vec<(Matrix, Vec<f64>)> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut out = Vec::with_capacity(self.len().div_ceil(batch_size));
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            let x = Matrix::from_rows(&self.features[start..end]);
            let y = self.targets[start..end].to_vec();
            out.push((x, y));
            start = end;
        }
        out
    }

    /// Shuffle the samples in place.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        let features = indices.iter().map(|&i| self.features[i].clone()).collect();
        let targets = indices.iter().map(|&i| self.targets[i]).collect();
        self.features = features;
        self.targets = targets;
    }

    /// Append all samples of another dataset (dimensions must agree).
    pub fn extend(&mut self, other: &Dataset) -> Result<(), NnError> {
        if other.dim() != self.dim() {
            return Err(NnError::InvalidDataset(format!(
                "cannot extend dim {} dataset with dim {} dataset",
                self.dim(),
                other.dim()
            )));
        }
        self.features.extend(other.features.iter().cloned());
        self.targets.extend_from_slice(&other.targets);
        Ok(())
    }
}

/// The kind of feature scaling applied by a [`Scaler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalerKind {
    /// Rescale each column to `[0, 1]` by its min/max.
    MinMax,
    /// Standardise each column to zero mean / unit variance.
    Standard,
    /// Leave features untouched.
    Identity,
}

/// Column-wise feature scaler fitted on a training set and applied to both
/// training and test features (one-hot columns pass through unchanged under
/// min-max scaling because their range is already `[0, 1]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    kind: ScalerKind,
    /// Per-column offset (min or mean).
    offsets: Vec<f64>,
    /// Per-column divisor (range or standard deviation), never zero.
    divisors: Vec<f64>,
}

impl Scaler {
    /// Fit a scaler on a dataset's feature columns.
    pub fn fit(kind: ScalerKind, data: &Dataset) -> Scaler {
        let dim = data.dim();
        let n = data.len() as f64;
        match kind {
            ScalerKind::Identity => Scaler {
                kind,
                offsets: vec![0.0; dim],
                divisors: vec![1.0; dim],
            },
            ScalerKind::MinMax => {
                let mut mins = vec![f64::INFINITY; dim];
                let mut maxs = vec![f64::NEG_INFINITY; dim];
                for row in data.features() {
                    for c in 0..dim {
                        mins[c] = mins[c].min(row[c]);
                        maxs[c] = maxs[c].max(row[c]);
                    }
                }
                let divisors = mins
                    .iter()
                    .zip(&maxs)
                    .map(|(lo, hi)| {
                        let d = hi - lo;
                        if d.abs() < 1e-12 {
                            1.0
                        } else {
                            d
                        }
                    })
                    .collect();
                Scaler {
                    kind,
                    offsets: mins,
                    divisors,
                }
            }
            ScalerKind::Standard => {
                let mut means = vec![0.0; dim];
                for row in data.features() {
                    for c in 0..dim {
                        means[c] += row[c];
                    }
                }
                for m in &mut means {
                    *m /= n;
                }
                let mut vars = vec![0.0; dim];
                for row in data.features() {
                    for c in 0..dim {
                        vars[c] += (row[c] - means[c]).powi(2);
                    }
                }
                let divisors = vars
                    .iter()
                    .map(|v| {
                        let s = (v / n).sqrt();
                        if s < 1e-12 {
                            1.0
                        } else {
                            s
                        }
                    })
                    .collect();
                Scaler {
                    kind,
                    offsets: means,
                    divisors,
                }
            }
        }
    }

    /// Scaler kind.
    pub fn kind(&self) -> ScalerKind {
        self.kind
    }

    /// Transform a single feature row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.offsets.len(), "scaler dimension mismatch");
        row.iter()
            .zip(self.offsets.iter().zip(&self.divisors))
            .map(|(v, (o, d))| (v - o) / d)
            .collect()
    }

    /// Transform a whole dataset, preserving targets.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let features = data
            .features()
            .iter()
            .map(|r| self.transform_row(r))
            .collect();
        Dataset {
            features,
            targets: data.targets().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![1.0, 10.0, 0.0],
                vec![2.0, 20.0, 1.0],
                vec![3.0, 30.0, 0.0],
                vec![4.0, 40.0, 1.0],
            ],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Dataset::new(vec![], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]).is_err());
        assert!(Dataset::new(vec![vec![]], vec![0.0]).is_err());
        assert!(toy().len() == 4 && toy().dim() == 3);
    }

    #[test]
    fn project_columns_selects_the_right_values() {
        let d = toy();
        let p = d.project_columns(&[2, 0]).unwrap();
        assert_eq!(p.dim(), 2);
        assert_eq!(p.features()[1], vec![1.0, 2.0]);
        assert_eq!(p.targets(), d.targets());
        assert!(d.project_columns(&[]).is_err());
        assert!(d.project_columns(&[7]).is_err());
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (train, test) = d.train_test_split(0.75, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 3);
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let d = toy();
        let batches = d.batches(3);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0.rows(), 3);
        assert_eq!(batches[1].0.rows(), 1);
        let total: usize = batches.iter().map(|(x, _)| x.rows()).sum();
        assert_eq!(total, d.len());
    }

    #[test]
    fn subsample_is_bounded() {
        let d = toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(d.subsample(2, &mut rng).len(), 2);
        assert_eq!(d.subsample(100, &mut rng).len(), d.len());
    }

    #[test]
    fn minmax_scaler_maps_to_unit_interval() {
        let d = toy();
        let s = Scaler::fit(ScalerKind::MinMax, &d);
        let t = s.transform(&d);
        for row in t.features() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
        // one-hot-ish column 2 passes through unchanged
        assert_eq!(t.features()[1][2], 1.0);
        assert_eq!(t.features()[0][2], 0.0);
    }

    #[test]
    fn standard_scaler_centers_columns() {
        let d = toy();
        let s = Scaler::fit(ScalerKind::Standard, &d);
        let t = s.transform(&d);
        for c in 0..d.dim() {
            let mean: f64 = t.features().iter().map(|r| r[c]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-9, "column {c} mean {mean}");
        }
    }

    #[test]
    fn identity_scaler_is_a_noop() {
        let d = toy();
        let s = Scaler::fit(ScalerKind::Identity, &d);
        assert_eq!(s.transform(&d), d);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let d = Dataset::new(vec![vec![5.0], vec![5.0]], vec![1.0, 2.0]).unwrap();
        let s = Scaler::fit(ScalerKind::MinMax, &d);
        let t = s.transform(&d);
        assert!(t.features().iter().all(|r| r[0].is_finite()));
        let s = Scaler::fit(ScalerKind::Standard, &d);
        let t = s.transform(&d);
        assert!(t.features().iter().all(|r| r[0].is_finite()));
    }

    #[test]
    fn extend_checks_dimensions() {
        let mut d = toy();
        let other = toy();
        d.extend(&other).unwrap();
        assert_eq!(d.len(), 8);
        let bad = Dataset::new(vec![vec![1.0]], vec![0.0]).unwrap();
        assert!(d.extend(&bad).is_err());
    }
}

//! Small dense linear-algebra helpers: Gaussian elimination, ordinary least
//! squares and ridge regression.
//!
//! The feature-snapshot of the paper (Section III-A) fits the coefficients of
//! the logical cost formulas in Table I by least squares; those design
//! matrices are tiny (a handful of columns), so a straightforward normal
//! equation solve with partial pivoting is both sufficient and fast.

use crate::matrix::Matrix;

/// Errors from the linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// The coefficient matrix is (numerically) singular.
    SingularMatrix,
    /// Input shapes are inconsistent with the requested operation.
    DimensionMismatch(String),
    /// The system has no rows (no observations to fit).
    EmptySystem,
}

impl std::fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinAlgError::SingularMatrix => write!(f, "matrix is singular"),
            LinAlgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinAlgError::EmptySystem => write!(f, "empty system"),
        }
    }
}

impl std::error::Error for LinAlgError {}

/// Solve the square linear system `A x = b` by Gaussian elimination with
/// partial pivoting.
pub fn solve_linear_system(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinAlgError> {
    let n = a.rows();
    if n == 0 {
        return Err(LinAlgError::EmptySystem);
    }
    if a.cols() != n {
        return Err(LinAlgError::DimensionMismatch(format!(
            "expected square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if b.len() != n {
        return Err(LinAlgError::DimensionMismatch(format!(
            "rhs has length {}, expected {n}",
            b.len()
        )));
    }

    // Augmented matrix [A | b] stored as rows.
    let mut aug: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                aug[i][col]
                    .abs()
                    .partial_cmp(&aug[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty pivot range");
        if aug[pivot_row][col].abs() < 1e-12 {
            return Err(LinAlgError::SingularMatrix);
        }
        aug.swap(col, pivot_row);

        // Eliminate below.
        for row in (col + 1)..n {
            let factor = aug[row][col] / aug[col][col];
            if factor == 0.0 {
                continue;
            }
            let (pivot_row, elim_row) = {
                let (head, tail) = aug.split_at_mut(row);
                (&head[col], &mut tail[0])
            };
            for (k, cell) in elim_row.iter_mut().enumerate().take(n + 1).skip(col) {
                *cell -= factor * pivot_row[k];
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = aug[row][n];
        for (col, xv) in x.iter().enumerate().skip(row + 1) {
            acc -= aug[row][col] * xv;
        }
        x[row] = acc / aug[row][row];
    }
    Ok(x)
}

/// Ordinary least squares: find `beta` minimising `||X beta - y||^2` via the
/// normal equations `X^T X beta = X^T y`.
///
/// Falls back to a small ridge penalty if the normal matrix is singular
/// (which happens when a template produced collinear observations).
pub fn least_squares(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinAlgError> {
    if x.rows() == 0 {
        return Err(LinAlgError::EmptySystem);
    }
    if x.rows() != y.len() {
        return Err(LinAlgError::DimensionMismatch(format!(
            "{} rows but {} targets",
            x.rows(),
            y.len()
        )));
    }
    let xtx = x.t_matmul(x);
    let xty = xt_vec(x, y);
    match solve_linear_system(&xtx, &xty) {
        Ok(beta) => Ok(beta),
        Err(LinAlgError::SingularMatrix) => ridge_regression(x, y, 1e-6),
        Err(e) => Err(e),
    }
}

/// Ridge regression: solve `(X^T X + lambda I) beta = X^T y`.
pub fn ridge_regression(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, LinAlgError> {
    if x.rows() == 0 {
        return Err(LinAlgError::EmptySystem);
    }
    if x.rows() != y.len() {
        return Err(LinAlgError::DimensionMismatch(format!(
            "{} rows but {} targets",
            x.rows(),
            y.len()
        )));
    }
    let mut xtx = x.t_matmul(x);
    for i in 0..xtx.rows() {
        let v = xtx.get(i, i);
        xtx.set(i, i, v + lambda);
    }
    let xty = xt_vec(x, y);
    solve_linear_system(&xtx, &xty)
}

/// `X^T y` as a vector.
fn xt_vec(x: &Matrix, y: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.cols()];
    for (r, &yr) in y.iter().enumerate().take(x.rows()) {
        let row = x.row(r);
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v * yr;
        }
    }
    out
}

/// Coefficient of determination (R^2) of a fitted linear model, used to
/// sanity-check feature-snapshot fits.
pub fn r_squared(x: &Matrix, y: &[f64], beta: &[f64]) -> f64 {
    assert_eq!(x.cols(), beta.len(), "beta length must equal feature count");
    assert_eq!(x.rows(), y.len(), "row count must equal target count");
    if y.is_empty() {
        return 0.0;
    }
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (r, &yv) in y.iter().enumerate() {
        let pred: f64 = x.row(r).iter().zip(beta).map(|(a, b)| a * b).sum();
        ss_res += (yv - pred).powi(2);
        ss_tot += (yv - mean).powi(2);
    }
    if ss_tot < 1e-12 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_2x2_system() {
        // x + y = 3 ; 2x - y = 0 -> x = 1, y = 2
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 2.0, -1.0]);
        let x = solve_linear_system(&a, &[3.0, 0.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(
            solve_linear_system(&a, &[1.0, 2.0]),
            Err(LinAlgError::SingularMatrix)
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Matrix::from_vec(2, 3, vec![0.0; 6]);
        assert!(matches!(
            solve_linear_system(&a, &[1.0, 2.0]),
            Err(LinAlgError::DimensionMismatch(_))
        ));
        let a = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert!(matches!(
            solve_linear_system(&a, &[1.0]),
            Err(LinAlgError::DimensionMismatch(_))
        ));
        assert_eq!(
            solve_linear_system(&Matrix::zeros(0, 0), &[]),
            Err(LinAlgError::EmptySystem)
        );
    }

    #[test]
    fn least_squares_recovers_exact_linear_relationship() {
        // y = 3*n + 7 : the seq-scan logical formula of Table I.
        let ns = [10.0, 20.0, 50.0, 100.0, 500.0];
        let rows: Vec<Vec<f64>> = ns.iter().map(|&n| vec![n, 1.0]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = ns.iter().map(|&n| 3.0 * n + 7.0).collect();
        let beta = least_squares(&x, &y).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-8);
        assert!((beta[1] - 7.0).abs() < 1e-8);
        assert!(r_squared(&x, &y, &beta) > 0.999_999);
    }

    #[test]
    fn least_squares_handles_noise() {
        let ns: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let rows: Vec<Vec<f64>> = ns.iter().map(|&n| vec![n, 1.0]).collect();
        let x = Matrix::from_rows(&rows);
        // alternate +1/-1 noise so it averages out
        let y: Vec<f64> = ns
            .iter()
            .enumerate()
            .map(|(i, &n)| 0.5 * n + 2.0 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let beta = least_squares(&x, &y).unwrap();
        assert!((beta[0] - 0.5).abs() < 0.01, "slope {}", beta[0]);
        assert!((beta[1] - 2.0).abs() < 1.5, "intercept {}", beta[1]);
    }

    #[test]
    fn collinear_design_falls_back_to_ridge() {
        // two identical columns: singular normal matrix
        let rows: Vec<Vec<f64>> = (1..=10).map(|i| vec![i as f64, i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (1..=10).map(|i| 2.0 * i as f64).collect();
        let beta = least_squares(&x, &y).unwrap();
        // any split summing to ~2 is acceptable
        assert!((beta[0] + beta[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_shrinks_towards_zero_with_large_lambda() {
        let rows: Vec<Vec<f64>> = (1..=10).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = (1..=10).map(|i| 2.0 * i as f64).collect();
        let small = ridge_regression(&x, &y, 1e-9).unwrap()[0];
        let large = ridge_regression(&x, &y, 1e6).unwrap()[0];
        assert!((small - 2.0).abs() < 1e-3);
        assert!(large.abs() < small.abs());
    }

    #[test]
    fn r_squared_handles_constant_targets() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let y = [5.0, 5.0];
        assert_eq!(r_squared(&x, &y, &[5.0]), 1.0);
        assert_eq!(r_squared(&x, &y, &[0.0]), 0.0);
    }
}

//! Pluggable dense matmul kernels behind [`crate::matrix::Matrix`].
//!
//! Every estimate the serving layer produces bottoms out in a handful of
//! dense `f64` matrix multiplies (one per MLP layer per micro-batch). This
//! module owns those inner loops and picks an implementation at runtime:
//!
//! # The dispatch ladder
//!
//! 1. **Forced kernel** ([`force_kernel`]): an in-process override used by
//!    benchmarks and equivalence tests to sweep kernels inside one run.
//! 2. **`QCFE_KERNEL` environment variable**: `scalar`, `portable` or
//!    `avx2`, read once on first use. An unsupported or unrecognised value
//!    falls back to auto-detection with a one-time diagnostic on stderr —
//!    a typo must never change results silently *and* must never abort a
//!    serving process.
//! 3. **Auto-detection**: on x86/x86_64 with AVX2+FMA available (checked
//!    via `is_x86_feature_detected!`), the [`MatmulKernel::Avx2`]
//!    microkernel; otherwise [`MatmulKernel::Portable`].
//!
//! The detected default is computed once and cached in a [`OnceLock`]; the
//! per-call cost of dispatch is one relaxed atomic load.
//!
//! # The accumulation-order contract
//!
//! All kernels compute `out[i][j] = Σ_p a[i][p] * b[p][j]` with the sum
//! taken in increasing `p`. Two tiers of agreement are guaranteed:
//!
//! * **Scalar ↔ portable: bit-identical.** The scalar kernel is the
//!   ground truth (the plain i-k-j loop). The portable kernel unrolls the
//!   `p` loop by four but keeps each output element's additions in exactly
//!   the same order (`((((o + a₀b₀) + a₁b₁) + a₂b₂) + a₃b₃)`), and Rust
//!   never contracts separate mul/add into FMA, so the two produce
//!   identical bits on every input. Non-x86 builds therefore keep the
//!   x86 scalar results exactly.
//! * **AVX2 vs scalar: documented tolerance, not bit-identity.** The AVX2
//!   kernel accumulates with `_mm256_fmadd_pd`; a fused multiply-add
//!   rounds once where mul-then-add rounds twice, so each of the `k`
//!   accumulation steps can differ by ≤ ½ ulp. Relative error versus the
//!   scalar kernel is bounded by ~`k * ε` (`ε = 2⁻⁵²`) for
//!   well-conditioned sums; the test suite enforces `1e-12` relative on
//!   adversarial shapes, orders of magnitude below the estimators'
//!   q-error budget.
//!
//! Every kernel is additionally **batch-invariant per row**: row `i` of a
//! batched product is computed with the identical operation sequence as a
//! 1-row product of that row (row-blocking in the AVX2 kernel keeps one
//! private accumulator per row). This is what keeps batched and scalar
//! tree-walk QPPNet inference bit-identical *within* any one kernel.
//!
//! The former per-element `a == 0.0` skip of the dense loops is gone — on
//! dense MLP weights it branch-predicts poorly and defeats vectorisation.
//! It survives only in [`t_matmul_sparse`], the training-side
//! `Xᵀ·G` kernel, where one-hot-ish design matrices make the skip a real
//! win; that kernel is shared verbatim by every dispatch choice, so
//! training results never depend on `QCFE_KERNEL`.
//!
//! The int8 variants ([`matmul_i8`] / [`matmul_i8_with`]) follow the same
//! ladder and the same contract with `b[p][j]` replaced by the dequantised
//! `q[p][j] as f64`; the per-layer scale is applied by the caller after
//! the accumulation (see [`crate::quant`]).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A dense-kernel implementation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulKernel {
    /// The plain i-k-j loop: the bit-exact ground truth.
    Scalar,
    /// k-unrolled loop, bit-identical to [`MatmulKernel::Scalar`] on every
    /// input; the default on targets without AVX2.
    Portable,
    /// Hand-rolled AVX2+FMA microkernel (x86/x86_64 only); agrees with
    /// scalar to the documented tolerance.
    Avx2,
}

impl MatmulKernel {
    /// All kernels, in dispatch-ladder order.
    pub const ALL: [MatmulKernel; 3] = [
        MatmulKernel::Scalar,
        MatmulKernel::Portable,
        MatmulKernel::Avx2,
    ];

    /// The name accepted by the `QCFE_KERNEL` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            MatmulKernel::Scalar => "scalar",
            MatmulKernel::Portable => "portable",
            MatmulKernel::Avx2 => "avx2",
        }
    }

    /// Parse a `QCFE_KERNEL` value (case-insensitive).
    pub fn from_name(name: &str) -> Option<MatmulKernel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(MatmulKernel::Scalar),
            "portable" => Some(MatmulKernel::Portable),
            "avx2" => Some(MatmulKernel::Avx2),
            _ => None,
        }
    }

    /// Whether this kernel can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            MatmulKernel::Scalar | MatmulKernel::Portable => true,
            MatmulKernel::Avx2 => avx2_available(),
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
fn avx2_available() -> bool {
    std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
}

#[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
fn avx2_available() -> bool {
    false
}

/// In-process kernel override; 0 = none, else 1 + index into
/// [`MatmulKernel::ALL`]. Read with one relaxed load on the hot path.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The env-var/auto-detected default, computed once.
static DEFAULT: OnceLock<MatmulKernel> = OnceLock::new();

fn detect_default() -> MatmulKernel {
    if let Ok(value) = std::env::var("QCFE_KERNEL") {
        match MatmulKernel::from_name(&value) {
            Some(kernel) if kernel.is_supported() => return kernel,
            Some(kernel) => eprintln!(
                "qcfe-nn: QCFE_KERNEL={} requested but unsupported on this CPU; auto-detecting",
                kernel.name()
            ),
            None => eprintln!(
                "qcfe-nn: QCFE_KERNEL={value:?} not recognised \
                 (expected scalar|portable|avx2); auto-detecting"
            ),
        }
    }
    if avx2_available() {
        MatmulKernel::Avx2
    } else {
        MatmulKernel::Portable
    }
}

/// The kernel every dense matmul currently dispatches to.
pub fn active_kernel() -> MatmulKernel {
    match FORCED.load(Ordering::Relaxed) {
        1 => MatmulKernel::Scalar,
        2 => MatmulKernel::Portable,
        3 => MatmulKernel::Avx2,
        _ => *DEFAULT.get_or_init(detect_default),
    }
}

/// Force a specific kernel process-wide (benchmarks and equivalence tests
/// sweep kernels this way), or clear the override with `None`. Returns
/// `false` — leaving the current choice untouched — when the requested
/// kernel is not supported on this CPU.
pub fn force_kernel(kernel: Option<MatmulKernel>) -> bool {
    match kernel {
        None => {
            FORCED.store(0, Ordering::Relaxed);
            true
        }
        Some(k) if !k.is_supported() => false,
        Some(MatmulKernel::Scalar) => {
            FORCED.store(1, Ordering::Relaxed);
            true
        }
        Some(MatmulKernel::Portable) => {
            FORCED.store(2, Ordering::Relaxed);
            true
        }
        Some(MatmulKernel::Avx2) => {
            FORCED.store(3, Ordering::Relaxed);
            true
        }
    }
}

fn check_shapes(a_len: usize, m: usize, k: usize, b_len: usize, n: usize, out_len: usize) {
    assert_eq!(a_len, m * k, "matmul kernel: a must be {m}x{k}");
    assert_eq!(b_len, k * n, "matmul kernel: b must be {k}x{n}");
    assert_eq!(out_len, m * n, "matmul kernel: out must be {m}x{n}");
}

/// `out += a (m×k) * b (k×n)` through the active kernel. `out` must be
/// zero-filled on entry (the kernels are free to either accumulate into it
/// or overwrite it with the full sum).
pub fn matmul_f64(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    matmul_f64_with(active_kernel(), a, m, k, b, n, out);
}

/// [`matmul_f64`] with an explicit kernel choice (equivalence tests).
/// Falls back to the portable kernel if AVX2 is requested on a CPU or
/// target without it.
pub fn matmul_f64_with(
    kernel: MatmulKernel,
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
) {
    check_shapes(a.len(), m, k, b.len(), n, out.len());
    debug_assert!(
        out.iter().all(|&v| v == 0.0),
        "matmul kernel: out must be zeroed on entry"
    );
    match kernel {
        MatmulKernel::Scalar => scalar_f64(a, m, k, b, n, out),
        MatmulKernel::Portable => portable_f64(a, m, k, b, n, out),
        MatmulKernel::Avx2 => {
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            if avx2_available() {
                // SAFETY: shapes were checked above and AVX2+FMA are
                // present on this CPU.
                unsafe { x86::matmul_f64_avx2(a, m, k, b, n, out) };
                return;
            }
            portable_f64(a, m, k, b, n, out)
        }
    }
}

/// `out += a (m×k) * q (k×n, int8)` through the active kernel, with the
/// int8 weights dequantised element-wise to `f64` inside the accumulation
/// (`f64` accumulate, so precision matches the f64 path up to the weight
/// rounding itself). The caller applies the per-layer scale afterwards.
/// `out` must be zero-filled on entry.
pub fn matmul_i8(a: &[f64], m: usize, k: usize, q: &[i8], n: usize, out: &mut [f64]) {
    matmul_i8_with(active_kernel(), a, m, k, q, n, out);
}

/// [`matmul_i8`] with an explicit kernel choice.
pub fn matmul_i8_with(
    kernel: MatmulKernel,
    a: &[f64],
    m: usize,
    k: usize,
    q: &[i8],
    n: usize,
    out: &mut [f64],
) {
    check_shapes(a.len(), m, k, q.len(), n, out.len());
    debug_assert!(
        out.iter().all(|&v| v == 0.0),
        "matmul kernel: out must be zeroed on entry"
    );
    match kernel {
        MatmulKernel::Scalar => scalar_i8(a, m, k, q, n, out),
        MatmulKernel::Portable => portable_i8(a, m, k, q, n, out),
        MatmulKernel::Avx2 => {
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            if avx2_available() {
                // SAFETY: shapes were checked above and AVX2+FMA are
                // present on this CPU.
                unsafe { x86::matmul_i8_avx2(a, m, k, q, n, out) };
                return;
            }
            portable_i8(a, m, k, q, n, out)
        }
    }
}

/// Training-side `aᵀ (rows×a_cols)ᵀ · b (rows×b_cols)` accumulating into
/// `out (a_cols×b_cols)`, with the per-element `a == 0.0` skip *kept*: the
/// design matrices flowing through backprop (`Xᵀ·dZ` on one-hot-ish node
/// encodings) are genuinely sparse, so the branch wins there. One shared
/// implementation serves every kernel choice — training never depends on
/// `QCFE_KERNEL`.
pub fn t_matmul_sparse(
    a: &[f64],
    rows: usize,
    a_cols: usize,
    b: &[f64],
    b_cols: usize,
    out: &mut [f64],
) {
    assert_eq!(a.len(), rows * a_cols, "t_matmul kernel: a shape");
    assert_eq!(b.len(), rows * b_cols, "t_matmul kernel: b shape");
    assert_eq!(out.len(), a_cols * b_cols, "t_matmul kernel: out shape");
    for r in 0..rows {
        let a_row = &a[r * a_cols..(r + 1) * a_cols];
        let b_row = &b[r * b_cols..(r + 1) * b_cols];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * b_cols..(i + 1) * b_cols];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// The ground-truth i-k-j loop (dense: no zero skip).
fn scalar_f64(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// k-unrolled portable kernel. Per output element the four products are
/// added left-associatively, which is the exact same addition sequence as
/// four scalar `+=` steps — bit-identical to [`scalar_f64`], but with 4×
/// fewer passes over the output row and an inner loop the autovectoriser
/// can chew on.
fn portable_f64(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut p = 0;
        while p + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let b2 = &b[(p + 2) * n..(p + 3) * n];
            let b3 = &b[(p + 3) * n..(p + 4) * n];
            for j in 0..n {
                out_row[j] = out_row[j] + a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            p += 4;
        }
        while p < k {
            let av = a_row[p];
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
            p += 1;
        }
    }
}

fn scalar_i8(a: &[f64], m: usize, k: usize, q: &[i8], n: usize, out: &mut [f64]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let q_row = &q[p * n..(p + 1) * n];
            for (o, &qv) in out_row.iter_mut().zip(q_row.iter()) {
                *o += av * qv as f64;
            }
        }
    }
}

fn portable_i8(a: &[f64], m: usize, k: usize, q: &[i8], n: usize, out: &mut [f64]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut p = 0;
        while p + 4 <= k {
            let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
            let q0 = &q[p * n..(p + 1) * n];
            let q1 = &q[(p + 1) * n..(p + 2) * n];
            let q2 = &q[(p + 2) * n..(p + 3) * n];
            let q3 = &q[(p + 3) * n..(p + 4) * n];
            for j in 0..n {
                out_row[j] = out_row[j]
                    + a0 * q0[j] as f64
                    + a1 * q1[j] as f64
                    + a2 * q2[j] as f64
                    + a3 * q3[j] as f64;
            }
            p += 4;
        }
        while p < k {
            let av = a_row[p];
            let q_row = &q[p * n..(p + 1) * n];
            for (o, &qv) in out_row.iter_mut().zip(q_row.iter()) {
                *o += av * qv as f64;
            }
            p += 1;
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    //! The AVX2+FMA microkernels.
    //!
    //! Shape: 4-row × 4-lane register blocks, `k` innermost. Each row of a
    //! block owns a private `__m256d` accumulator, so the per-row operation
    //! sequence — and therefore the result bits — is identical whether the
    //! row is computed in a 4-row block, the 1-row remainder loop, or a
    //! batch of one (the batch-invariance the estimators' bit-identity
    //! tests rely on). Columns beyond the last full 4-lane chunk run the
    //! scalar accumulation order.

    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    const LANES: usize = 4;

    /// # Safety
    /// Caller must ensure AVX2+FMA are available and that
    /// `a.len() == m*k`, `b.len() == k*n`, `out.len() == m*n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_f64_avx2(
        a: &[f64],
        m: usize,
        k: usize,
        b: &[f64],
        n: usize,
        out: &mut [f64],
    ) {
        let nv = n / LANES * LANES;
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            let mut j = 0;
            while j < nv {
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                let mut acc2 = _mm256_setzero_pd();
                let mut acc3 = _mm256_setzero_pd();
                for p in 0..k {
                    let bv = _mm256_loadu_pd(bp.add(p * n + j));
                    acc0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.get_unchecked(p)), bv, acc0);
                    acc1 = _mm256_fmadd_pd(_mm256_set1_pd(*a1.get_unchecked(p)), bv, acc1);
                    acc2 = _mm256_fmadd_pd(_mm256_set1_pd(*a2.get_unchecked(p)), bv, acc2);
                    acc3 = _mm256_fmadd_pd(_mm256_set1_pd(*a3.get_unchecked(p)), bv, acc3);
                }
                _mm256_storeu_pd(op.add(i * n + j), acc0);
                _mm256_storeu_pd(op.add((i + 1) * n + j), acc1);
                _mm256_storeu_pd(op.add((i + 2) * n + j), acc2);
                _mm256_storeu_pd(op.add((i + 3) * n + j), acc3);
                j += LANES;
            }
            if nv < n {
                scalar_cols_f64(a0, k, b, n, nv, &mut out[i * n..(i + 1) * n]);
                scalar_cols_f64(a1, k, b, n, nv, &mut out[(i + 1) * n..(i + 2) * n]);
                scalar_cols_f64(a2, k, b, n, nv, &mut out[(i + 2) * n..(i + 3) * n]);
                scalar_cols_f64(a3, k, b, n, nv, &mut out[(i + 3) * n..(i + 4) * n]);
            }
            i += 4;
        }
        while i < m {
            let a0 = &a[i * k..(i + 1) * k];
            let mut j = 0;
            while j < nv {
                let mut acc0 = _mm256_setzero_pd();
                for p in 0..k {
                    let bv = _mm256_loadu_pd(bp.add(p * n + j));
                    acc0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.get_unchecked(p)), bv, acc0);
                }
                _mm256_storeu_pd(op.add(i * n + j), acc0);
                j += LANES;
            }
            if nv < n {
                scalar_cols_f64(a0, k, b, n, nv, &mut out[i * n..(i + 1) * n]);
            }
            i += 1;
        }
    }

    /// Tail columns `nv..n` of one output row, scalar accumulation order.
    #[inline]
    fn scalar_cols_f64(
        a_row: &[f64],
        k: usize,
        b: &[f64],
        n: usize,
        nv: usize,
        out_row: &mut [f64],
    ) {
        for j in nv..n {
            let mut acc = 0.0;
            for (p, &av) in a_row.iter().enumerate().take(k) {
                acc += av * b[p * n + j];
            }
            out_row[j] = acc;
        }
    }

    /// # Safety
    /// Caller must ensure AVX2+FMA are available and that
    /// `a.len() == m*k`, `q.len() == k*n`, `out.len() == m*n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_i8_avx2(
        a: &[f64],
        m: usize,
        k: usize,
        q: &[i8],
        n: usize,
        out: &mut [f64],
    ) {
        let nv = n / LANES * LANES;
        let qp = q.as_ptr();
        let op = out.as_mut_ptr();
        // Sign-extend 4 packed i8 weights to 4 f64 lanes.
        #[inline]
        unsafe fn load4(ptr: *const i8) -> __m256d {
            let raw = std::ptr::read_unaligned(ptr as *const i32);
            _mm256_cvtepi32_pd(_mm_cvtepi8_epi32(_mm_cvtsi32_si128(raw)))
        }
        let mut i = 0;
        while i + 4 <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            let mut j = 0;
            while j < nv {
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                let mut acc2 = _mm256_setzero_pd();
                let mut acc3 = _mm256_setzero_pd();
                for p in 0..k {
                    let qv = load4(qp.add(p * n + j));
                    acc0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.get_unchecked(p)), qv, acc0);
                    acc1 = _mm256_fmadd_pd(_mm256_set1_pd(*a1.get_unchecked(p)), qv, acc1);
                    acc2 = _mm256_fmadd_pd(_mm256_set1_pd(*a2.get_unchecked(p)), qv, acc2);
                    acc3 = _mm256_fmadd_pd(_mm256_set1_pd(*a3.get_unchecked(p)), qv, acc3);
                }
                _mm256_storeu_pd(op.add(i * n + j), acc0);
                _mm256_storeu_pd(op.add((i + 1) * n + j), acc1);
                _mm256_storeu_pd(op.add((i + 2) * n + j), acc2);
                _mm256_storeu_pd(op.add((i + 3) * n + j), acc3);
                j += LANES;
            }
            if nv < n {
                scalar_cols_i8(a0, k, q, n, nv, &mut out[i * n..(i + 1) * n]);
                scalar_cols_i8(a1, k, q, n, nv, &mut out[(i + 1) * n..(i + 2) * n]);
                scalar_cols_i8(a2, k, q, n, nv, &mut out[(i + 2) * n..(i + 3) * n]);
                scalar_cols_i8(a3, k, q, n, nv, &mut out[(i + 3) * n..(i + 4) * n]);
            }
            i += 4;
        }
        while i < m {
            let a0 = &a[i * k..(i + 1) * k];
            let mut j = 0;
            while j < nv {
                let mut acc0 = _mm256_setzero_pd();
                for p in 0..k {
                    let qv = load4(qp.add(p * n + j));
                    acc0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.get_unchecked(p)), qv, acc0);
                }
                _mm256_storeu_pd(op.add(i * n + j), acc0);
                j += LANES;
            }
            if nv < n {
                scalar_cols_i8(a0, k, q, n, nv, &mut out[i * n..(i + 1) * n]);
            }
            i += 1;
        }
    }

    #[inline]
    fn scalar_cols_i8(a_row: &[f64], k: usize, q: &[i8], n: usize, nv: usize, out_row: &mut [f64]) {
        for j in nv..n {
            let mut acc = 0.0;
            for (p, &av) in a_row.iter().enumerate().take(k) {
                acc += av * q[p * n + j] as f64;
            }
            out_row[j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn random_f64(rng: &mut rand::rngs::StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn kernel_names_roundtrip() {
        for kernel in MatmulKernel::ALL {
            assert_eq!(MatmulKernel::from_name(kernel.name()), Some(kernel));
        }
        assert_eq!(MatmulKernel::from_name(" AVX2 "), Some(MatmulKernel::Avx2));
        assert_eq!(MatmulKernel::from_name("sse"), None);
        assert!(MatmulKernel::Scalar.is_supported());
        assert!(MatmulKernel::Portable.is_supported());
    }

    #[test]
    fn force_kernel_round_trips_and_rejects_unsupported() {
        // Portable is always supported; forcing and clearing must stick.
        assert!(force_kernel(Some(MatmulKernel::Portable)));
        assert_eq!(active_kernel(), MatmulKernel::Portable);
        assert!(force_kernel(None));
        if !MatmulKernel::Avx2.is_supported() {
            assert!(!force_kernel(Some(MatmulKernel::Avx2)));
        }
    }

    #[test]
    fn portable_is_bit_identical_to_scalar() {
        let mut r = rng(0xBEEF);
        for _ in 0..200 {
            let m = r.gen_range(1usize..9);
            let k = r.gen_range(1usize..17);
            let n = r.gen_range(1usize..13);
            let a = random_f64(&mut r, m * k);
            let b = random_f64(&mut r, k * n);
            let mut scalar = vec![0.0; m * n];
            let mut portable = vec![0.0; m * n];
            matmul_f64_with(MatmulKernel::Scalar, &a, m, k, &b, n, &mut scalar);
            matmul_f64_with(MatmulKernel::Portable, &a, m, k, &b, n, &mut portable);
            for (s, p) in scalar.iter().zip(&portable) {
                assert_eq!(s.to_bits(), p.to_bits());
            }
        }
    }

    #[test]
    fn avx2_agrees_with_scalar_within_tolerance() {
        if !MatmulKernel::Avx2.is_supported() {
            return;
        }
        let mut r = rng(0xCAFE);
        for _ in 0..200 {
            let m = r.gen_range(1usize..9);
            let k = r.gen_range(1usize..17);
            let n = r.gen_range(1usize..13);
            let a = random_f64(&mut r, m * k);
            let b = random_f64(&mut r, k * n);
            let mut scalar = vec![0.0; m * n];
            let mut avx2 = vec![0.0; m * n];
            matmul_f64_with(MatmulKernel::Scalar, &a, m, k, &b, n, &mut scalar);
            matmul_f64_with(MatmulKernel::Avx2, &a, m, k, &b, n, &mut avx2);
            for (s, v) in scalar.iter().zip(&avx2) {
                let tol = 1e-12 * s.abs().max(1.0);
                assert!((s - v).abs() <= tol, "scalar {s} vs avx2 {v}");
            }
        }
    }

    #[test]
    fn i8_kernels_agree_across_dispatch() {
        let mut r = rng(0xD00D);
        for _ in 0..100 {
            let m = r.gen_range(1usize..7);
            let k = r.gen_range(1usize..15);
            let n = r.gen_range(1usize..11);
            let a = random_f64(&mut r, m * k);
            let q: Vec<i8> = (0..k * n)
                .map(|_| r.gen_range(-127i32..=127) as i8)
                .collect();
            let mut scalar = vec![0.0; m * n];
            let mut portable = vec![0.0; m * n];
            matmul_i8_with(MatmulKernel::Scalar, &a, m, k, &q, n, &mut scalar);
            matmul_i8_with(MatmulKernel::Portable, &a, m, k, &q, n, &mut portable);
            for (s, p) in scalar.iter().zip(&portable) {
                assert_eq!(s.to_bits(), p.to_bits());
            }
            if MatmulKernel::Avx2.is_supported() {
                let mut avx2 = vec![0.0; m * n];
                matmul_i8_with(MatmulKernel::Avx2, &a, m, k, &q, n, &mut avx2);
                for (s, v) in scalar.iter().zip(&avx2) {
                    let tol = 1e-10 * s.abs().max(1.0);
                    assert!((s - v).abs() <= tol, "scalar {s} vs avx2 {v}");
                }
            }
        }
    }

    #[test]
    fn avx2_rows_are_batch_invariant() {
        // Row i of a tall product must be bit-identical to a 1-row product
        // of the same row — the property batched-vs-scalar estimator
        // equality rests on.
        if !MatmulKernel::Avx2.is_supported() {
            return;
        }
        let mut r = rng(0xF00D);
        let (m, k, n) = (9usize, 11usize, 7usize);
        let a = random_f64(&mut r, m * k);
        let b = random_f64(&mut r, k * n);
        let mut batched = vec![0.0; m * n];
        matmul_f64_with(MatmulKernel::Avx2, &a, m, k, &b, n, &mut batched);
        for i in 0..m {
            let mut single = vec![0.0; n];
            matmul_f64_with(
                MatmulKernel::Avx2,
                &a[i * k..(i + 1) * k],
                1,
                k,
                &b,
                n,
                &mut single,
            );
            for (x, y) in batched[i * n..(i + 1) * n].iter().zip(&single) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn t_matmul_sparse_matches_dense_transpose_product() {
        let mut r = rng(0xACED);
        for _ in 0..50 {
            let rows = r.gen_range(1usize..8);
            let a_cols = r.gen_range(1usize..8);
            let b_cols = r.gen_range(1usize..8);
            // Half the entries exactly zero: the skip path must not change
            // results.
            let a: Vec<f64> = (0..rows * a_cols)
                .map(|_| {
                    if r.gen_range(0.0..1.0) < 0.5 {
                        0.0
                    } else {
                        r.gen_range(-2.0..2.0)
                    }
                })
                .collect();
            let b = random_f64(&mut r, rows * b_cols);
            let mut sparse = vec![0.0; a_cols * b_cols];
            t_matmul_sparse(&a, rows, a_cols, &b, b_cols, &mut sparse);
            // Dense reference: transpose then scalar matmul.
            let mut at = vec![0.0; a_cols * rows];
            for rr in 0..rows {
                for cc in 0..a_cols {
                    at[cc * rows + rr] = a[rr * a_cols + cc];
                }
            }
            let mut dense = vec![0.0; a_cols * b_cols];
            matmul_f64_with(
                MatmulKernel::Scalar,
                &at,
                a_cols,
                rows,
                &b,
                b_cols,
                &mut dense,
            );
            for (s, d) in sparse.iter().zip(&dense) {
                assert!((s - d).abs() <= 1e-12 * d.abs().max(1.0));
            }
        }
    }
}

//! Row-major dense matrix with the small set of kernels needed by dense layers.
//!
//! The matrix stores `f64` values contiguously in row-major order. All hot
//! loops iterate rows in the outer loop so memory access stays sequential, as
//! recommended by the Rust performance guidance used by this workspace.

use rand::Rng;

/// A dense, row-major `f64` matrix.
///
/// The default value is the empty `0x0` matrix, which makes `Matrix` usable
/// as a reusable scratch buffer: [`Matrix::reset`] reshapes it in place
/// without shrinking the backing allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(
                r.len(),
                cols,
                "from_rows: all rows must have the same length"
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Build a single-column matrix from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Xavier/Glorot-uniform initialised matrix, the standard initialisation
    /// for the ReLU/sigmoid MLPs used by QPPNet and MSCN.
    pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow the flat row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reshape in place to `rows x cols`, zero-filled. The backing allocation
    /// is kept (and grown only when needed), so a matrix reused as a scratch
    /// buffer stops allocating once it has seen its largest shape.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape in place to `rows x cols` leaving the element values
    /// unspecified (whatever the buffer previously held, zero where it has
    /// to grow). For scratch buffers whose every element the caller writes
    /// before reading — skips the full zero-fill of [`Matrix::reset`].
    pub fn reshape_unspecified(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape in place to a single row holding a copy of `values`.
    pub fn reset_from_row(&mut self, values: &[f64]) {
        self.rows = 1;
        self.cols = values.len();
        self.data.clear();
        self.data.extend_from_slice(values);
    }

    /// Matrix multiplication `self * other`.
    ///
    /// Thin allocate-then-[`Matrix::matmul_into`] wrapper, so the two can
    /// never drift apart.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix multiplication `self * other` written into a caller-owned
    /// output buffer (reshaped in place), so repeated inference passes do
    /// not allocate. Dispatches through the pluggable dense kernel layer
    /// ([`crate::kernel`]): AVX2+FMA when the CPU has it, a bit-exact
    /// portable unrolled loop otherwise, overridable with `QCFE_KERNEL`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul_into: inner dimensions must agree ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset(self.rows, other.cols);
        crate::kernel::matmul_f64(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// `self^T * other`, computed without materialising the transpose.
    ///
    /// Routes through the kernel module's shared sparsity-aware
    /// implementation ([`crate::kernel::t_matmul_sparse`]), which keeps the
    /// per-element zero skip: this is the training-side `Xᵀ·G` product
    /// where one-hot-ish design matrices make the skip a real win.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul: row counts must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        crate::kernel::t_matmul_sparse(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// `self * other^T`, computed without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t: column counts must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shapes must agree");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shapes must agree");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shapes must agree");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard: shapes must agree");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scalar multiply-accumulate: `self += other * s`.
    pub fn axpy(&mut self, s: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shapes must agree");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * *b;
        }
    }

    /// Broadcast-add a row vector to every row (used for bias addition).
    pub fn add_row_broadcast(&self, row: &[f64]) -> Matrix {
        assert_eq!(
            self.cols,
            row.len(),
            "add_row_broadcast: length must equal cols"
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, b) in out.row_mut(r).iter_mut().zip(row.iter()) {
                *v += *b;
            }
        }
        out
    }

    /// In-place variant of [`Matrix::add_row_broadcast`]: add a row vector to
    /// every row without allocating.
    pub fn add_row_broadcast_assign(&mut self, row: &[f64]) {
        assert_eq!(
            self.cols,
            row.len(),
            "add_row_broadcast_assign: length must equal cols"
        );
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(row.iter()) {
                *v += *b;
            }
        }
    }

    /// Column-wise sums, returned as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, v) in sums.iter_mut().zip(self.row(r)) {
                *s += *v;
            }
        }
        sums
    }

    /// Apply a function to every element, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Apply a function to every element in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|i| i as f64).collect());
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.5).collect());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_vec(3, 3, (0..9).map(|i| i as f64).collect());
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn broadcast_and_col_sums() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let with_bias = a.add_row_broadcast(&[10.0, 20.0, 30.0]);
        assert_eq!(with_bias.row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(with_bias.row(1), &[14.0, 25.0, 36.0]);
        assert_eq!(a.col_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn xavier_initialisation_is_bounded_and_deterministic() {
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(42);
        let a = Matrix::xavier_uniform(8, 4, &mut rng1);
        let b = Matrix::xavier_uniform(8, 4, &mut rng2);
        assert_eq!(a, b, "same seed must give identical initialisation");
        let limit = (6.0 / 12.0_f64).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn norms_and_finiteness() {
        let a = Matrix::from_vec(1, 3, vec![3.0, 4.0, 0.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
        let bad = Matrix::from_vec(1, 1, vec![f64::NAN]);
        assert!(!bad.is_finite());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_into_matches_matmul_and_reuses_capacity() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // A second call into the same (now stale-shaped) buffer still agrees.
        let c = Matrix::from_vec(3, 4, (0..12).map(|i| i as f64 * 0.25).collect());
        a.matmul_into(&c, &mut out);
        assert_eq!(out, a.matmul(&c));
    }

    #[test]
    fn reset_reshapes_and_zeroes_in_place() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.reset(1, 3);
        assert_eq!(m.shape(), (1, 3));
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0]);
        m.reset_from_row(&[5.0, 6.0]);
        assert_eq!(m.shape(), (1, 2));
        assert_eq!(m.row(0), &[5.0, 6.0]);
    }

    #[test]
    fn add_row_broadcast_assign_matches_allocating_variant() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut b = a.clone();
        b.add_row_broadcast_assign(&[10.0, 20.0, 30.0]);
        assert_eq!(b, a.add_row_broadcast(&[10.0, 20.0, 30.0]));
    }
}

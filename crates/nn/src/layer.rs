//! A fully-connected layer with cached forward state and an explicit
//! backward pass.
//!
//! The layer computes `Y = act(X * W + b)` for a batch `X` (one sample per
//! row). The backward pass consumes `dL/dY` and produces `dL/dX` while
//! accumulating `dL/dW` and `dL/db` internally for the optimizer to consume.

use crate::activation::Activation;
use crate::matrix::Matrix;
use rand::Rng;

/// A dense (fully-connected) layer.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    /// Weight matrix of shape `(input_dim, output_dim)`.
    weights: Matrix,
    /// Bias vector of length `output_dim`.
    biases: Vec<f64>,
    /// Activation applied element-wise to the affine output.
    activation: Activation,
    /// Cached input of the most recent forward pass (batch x input_dim).
    cached_input: Option<Matrix>,
    /// Cached pre-activation of the most recent forward pass (batch x output_dim).
    cached_pre_activation: Option<Matrix>,
    /// Accumulated weight gradient.
    grad_weights: Matrix,
    /// Accumulated bias gradient.
    grad_biases: Vec<f64>,
}

impl DenseLayer {
    /// Create a layer with Xavier-uniform weights and zero biases.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        DenseLayer {
            weights: Matrix::xavier_uniform(input_dim, output_dim, rng),
            biases: vec![0.0; output_dim],
            activation,
            cached_input: None,
            cached_pre_activation: None,
            grad_weights: Matrix::zeros(input_dim, output_dim),
            grad_biases: vec![0.0; output_dim],
        }
    }

    /// Create a layer with explicitly provided parameters (used in tests and
    /// for reproducing the worked example of Figure 4 in the paper).
    pub fn with_parameters(weights: Matrix, biases: Vec<f64>, activation: Activation) -> Self {
        assert_eq!(
            weights.cols(),
            biases.len(),
            "bias length must equal output dim"
        );
        let (input_dim, output_dim) = weights.shape();
        DenseLayer {
            weights,
            biases,
            activation,
            cached_input: None,
            cached_pre_activation: None,
            grad_weights: Matrix::zeros(input_dim, output_dim),
            grad_biases: vec![0.0; output_dim],
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.biases.len()
    }

    /// Immutable access to the weights.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Immutable access to the biases.
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Mutable access to the weights (used by optimizers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable access to the biases (used by optimizers).
    pub fn biases_mut(&mut self) -> &mut [f64] {
        &mut self.biases
    }

    /// Accumulated weight gradient from the most recent backward pass.
    pub fn grad_weights(&self) -> &Matrix {
        &self.grad_weights
    }

    /// Accumulated bias gradient from the most recent backward pass.
    pub fn grad_biases(&self) -> &[f64] {
        &self.grad_biases
    }

    /// Forward pass, caching the state needed for `backward`.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "forward: input has {} columns, layer expects {}",
            input.cols(),
            self.input_dim()
        );
        let pre = input.matmul(&self.weights).add_row_broadcast(&self.biases);
        let out = pre.map(|v| self.activation.apply(v));
        self.cached_input = Some(input.clone());
        self.cached_pre_activation = Some(pre);
        out
    }

    /// Forward pass without caching; usable on `&self` for pure inference.
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "forward_inference: dimension mismatch"
        );
        input
            .matmul(&self.weights)
            .add_row_broadcast(&self.biases)
            .map(|v| self.activation.apply(v))
    }

    /// Allocation-free variant of [`DenseLayer::forward_inference`]: writes
    /// the activations into a caller-owned buffer (reshaped in place). This
    /// is the kernel behind the batched inference path — the buffer is part
    /// of an [`crate::mlp::InferenceScratch`] reused across calls.
    pub fn forward_inference_into(&self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "forward_inference_into: dimension mismatch"
        );
        input.matmul_into(&self.weights, out);
        out.add_row_broadcast_assign(&self.biases);
        out.map_inplace(|v| self.activation.apply(v));
    }

    /// Backward pass.
    ///
    /// `grad_output` is `dL/dY` with one row per batch sample. Gradients with
    /// respect to the parameters are *accumulated* (use [`zero_grad`] between
    /// optimizer steps); the return value is `dL/dX`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let pre = self
            .cached_pre_activation
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(
            grad_output.shape(),
            pre.shape(),
            "backward: grad shape mismatch"
        );

        // dZ = dY ⊙ act'(Z)
        let mut grad_pre = grad_output.clone();
        for r in 0..grad_pre.rows() {
            for c in 0..grad_pre.cols() {
                let d = self.activation.derivative(pre.get(r, c));
                grad_pre.set(r, c, grad_pre.get(r, c) * d);
            }
        }

        // dW += X^T dZ ; db += colsum(dZ)
        let grad_w = input.t_matmul(&grad_pre);
        self.grad_weights.add_assign(&grad_w);
        for (gb, s) in self.grad_biases.iter_mut().zip(grad_pre.col_sums()) {
            *gb += s;
        }

        // dX = dZ W^T
        grad_pre.matmul_t(&self.weights)
    }

    /// Functional forward pass that does not touch the internal cache.
    ///
    /// Returns `(pre_activation, output)`; the caller owns the cache. This is
    /// what the tree-structured QPPNet trainer uses, because a single shared
    /// neural unit is applied to many plan nodes before any backward pass
    /// runs.
    pub fn forward_explicit(&self, input: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "forward_explicit: dimension mismatch"
        );
        let pre = input.matmul(&self.weights).add_row_broadcast(&self.biases);
        let out = pre.map(|v| self.activation.apply(v));
        (pre, out)
    }

    /// Functional backward pass using caller-provided cached state.
    ///
    /// Accumulates parameter gradients exactly like [`DenseLayer::backward`]
    /// but takes the forward-pass `input` and `pre_activation` explicitly
    /// instead of reading the internal cache.
    pub fn backward_explicit(
        &mut self,
        input: &Matrix,
        pre_activation: &Matrix,
        grad_output: &Matrix,
    ) -> Matrix {
        assert_eq!(
            grad_output.shape(),
            pre_activation.shape(),
            "backward_explicit: grad shape"
        );
        assert_eq!(
            input.rows(),
            pre_activation.rows(),
            "backward_explicit: batch size"
        );
        let mut grad_pre = grad_output.clone();
        for r in 0..grad_pre.rows() {
            for c in 0..grad_pre.cols() {
                let d = self.activation.derivative(pre_activation.get(r, c));
                grad_pre.set(r, c, grad_pre.get(r, c) * d);
            }
        }
        let grad_w = input.t_matmul(&grad_pre);
        self.grad_weights.add_assign(&grad_w);
        for (gb, s) in self.grad_biases.iter_mut().zip(grad_pre.col_sums()) {
            *gb += s;
        }
        grad_pre.matmul_t(&self.weights)
    }

    /// Reset the accumulated parameter gradients to zero.
    pub fn zero_grad(&mut self) {
        self.grad_weights = Matrix::zeros(self.input_dim(), self.output_dim());
        for g in &mut self.grad_biases {
            *g = 0.0;
        }
    }

    /// Drop cached forward state (frees memory between epochs).
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
        self.cached_pre_activation = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_layer() -> DenseLayer {
        // 2 inputs -> 2 outputs, identity activation, hand-set weights.
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        DenseLayer::with_parameters(w, vec![0.5, -0.5], Activation::Identity)
    }

    #[test]
    fn forward_matches_manual_affine() {
        let mut l = tiny_layer();
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = l.forward(&x);
        // [1,1] * [[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5]
        assert_eq!(y.row(0), &[4.5, 5.5]);
    }

    #[test]
    fn relu_masks_negative_preactivations() {
        let w = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let mut l = DenseLayer::with_parameters(w, vec![0.0, 0.0], Activation::Relu);
        let y = l.forward(&Matrix::from_vec(1, 1, vec![2.0]));
        assert_eq!(y.row(0), &[2.0, 0.0]);
    }

    #[test]
    fn backward_produces_expected_gradients() {
        let mut l = tiny_layer();
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let _ = l.forward(&x);
        let grad_in = l.backward(&Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        // dX = dY * W^T = [1,1] * [[1,3],[2,4]] = [3, 7]
        assert_eq!(grad_in.row(0), &[3.0, 7.0]);
        // dW = X^T dY = [[1],[2]] * [1,1] = [[1,1],[2,2]]
        assert_eq!(l.grad_weights().as_slice(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(l.grad_biases(), &[1.0, 1.0]);
    }

    #[test]
    fn gradients_accumulate_until_zero_grad() {
        let mut l = tiny_layer();
        let x = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        for _ in 0..3 {
            let _ = l.forward(&x);
            let _ = l.backward(&Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        }
        assert_eq!(l.grad_weights().get(0, 0), 3.0);
        l.zero_grad();
        assert_eq!(l.grad_weights().get(0, 0), 0.0);
        assert_eq!(l.grad_biases(), &[0.0, 0.0]);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut l = DenseLayer::new(4, 3, Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(2, 4, (0..8).map(|i| i as f64 * 0.1).collect());
        let a = l.forward(&x);
        let b = l.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_inference_into_matches_forward_inference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let l = DenseLayer::new(5, 3, Activation::Relu, &mut rng);
        let x = Matrix::from_vec(4, 5, (0..20).map(|i| i as f64 * 0.07 - 0.5).collect());
        let mut out = Matrix::default();
        l.forward_inference_into(&x, &mut out);
        assert_eq!(out, l.forward_inference(&x));
        // Reuse with a different batch size.
        let y = Matrix::from_vec(1, 5, (0..5).map(|i| i as f64).collect());
        l.forward_inference_into(&y, &mut out);
        assert_eq!(out, l.forward_inference(&y));
    }

    #[test]
    fn parameter_count_is_correct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let l = DenseLayer::new(10, 5, Activation::Relu, &mut rng);
        assert_eq!(l.parameter_count(), 10 * 5 + 5);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut l = tiny_layer();
        let _ = l.backward(&Matrix::zeros(1, 2));
    }
}

//! # qcfe-nn — minimal neural network substrate
//!
//! A small, dependency-light dense neural-network library used by the QCFE
//! reproduction as the substrate for the learned cost estimators (QPPNet,
//! MSCN) and for the feature-importance machinery (plain input gradients and
//! difference propagation).
//!
//! The crate deliberately implements only what the paper needs:
//!
//! * a row-major [`Matrix`](matrix::Matrix) type with the handful of BLAS-like
//!   kernels required by dense layers,
//! * [`DenseLayer`](layer::DenseLayer) with forward/backward passes,
//! * the activations used by existing cost estimators (ReLU in QPPNet,
//!   sigmoid/ReLU in MSCN),
//! * mean-squared / q-error-friendly losses,
//! * SGD (with momentum) and Adam optimizers,
//! * an [`Mlp`](mlp::Mlp) that composes the above and can additionally return
//!   the gradient of its output with respect to its *input* (needed by the
//!   gradient feature-reduction baseline of the paper),
//! * an allocation-free batched inference path
//!   ([`Mlp::predict_batch_into`](mlp::Mlp::predict_batch_into) with
//!   caller-owned [`InferenceScratch`](mlp::InferenceScratch) buffers) used
//!   by the serving layer's operator-grouped micro-batching,
//! * a pluggable dense-kernel layer ([`kernel`]) behind every inference
//!   matmul: runtime-detected AVX2+FMA microkernel with a bit-exact
//!   portable fallback, overridable via `QCFE_KERNEL=scalar|portable|avx2`,
//! * an opt-in int8 quantized inference path ([`quant`]:
//!   [`QuantizedDenseLayer`](quant::QuantizedDenseLayer) /
//!   [`QuantizedMlp`](quant::QuantizedMlp)) — per-layer symmetric
//!   scale + zero-point, f64 accumulate, quantize-at-publish,
//! * a tiny linear-algebra module with a least-squares solver (used to fit
//!   the feature-snapshot coefficients of Table I),
//! * dataset utilities (mini-batching, shuffling, train/test split, scaling),
//! * the versioned, checksummed `QCFW` weight codec ([`codec`]) that
//!   persists trained [`Mlp`](mlp::Mlp) parameters bit-exactly for the
//!   serving layer's restart-without-retraining path.
//!
//! Everything is deterministic given a seeded RNG, which keeps the experiment
//! harness reproducible run-to-run.
//!
//! ## Example
//!
//! ```
//! use qcfe_nn::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // learn y = 2*x0 + 3*x1
//! let xs: Vec<Vec<f64>> = (0..256)
//!     .map(|i| vec![(i % 16) as f64 / 16.0, (i / 16) as f64 / 16.0])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 3.0 * x[1]).collect();
//! let data = Dataset::new(xs, ys).unwrap();
//!
//! let mut mlp = Mlp::new(&[2, 16, 1], Activation::Relu, &mut rng);
//! let cfg = TrainConfig { epochs: 200, batch_size: 32, ..TrainConfig::default() };
//! mlp.train(&data, &cfg, &mut rng);
//! let pred = mlp.predict_one(&[0.5, 0.5]);
//! assert!((pred - 2.5).abs() < 0.25, "prediction {pred} too far from 2.5");
//! ```

pub mod activation;
pub mod codec;
pub mod dataset;
pub mod gradcheck;
pub mod kernel;
pub mod layer;
pub mod linalg;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optimizer;
pub mod quant;

pub use activation::Activation;
pub use codec::WeightsCodecError;
pub use dataset::{Dataset, Scaler, ScalerKind};
pub use kernel::MatmulKernel;
pub use layer::DenseLayer;
pub use linalg::{least_squares, ridge_regression, solve_linear_system, LinAlgError};
pub use loss::Loss;
pub use matrix::Matrix;
pub use mlp::{BatchForward, InferenceScratch, Mlp, TrainConfig, TrainHistory};
pub use optimizer::Optimizer;
pub use quant::{QuantizedDenseLayer, QuantizedMlp};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::dataset::{Dataset, Scaler, ScalerKind};
    pub use crate::kernel::MatmulKernel;
    pub use crate::layer::DenseLayer;
    pub use crate::linalg::{least_squares, ridge_regression};
    pub use crate::loss::Loss;
    pub use crate::matrix::Matrix;
    pub use crate::mlp::{BatchForward, InferenceScratch, Mlp, TrainConfig, TrainHistory};
    pub use crate::optimizer::Optimizer;
    pub use crate::quant::{QuantizedDenseLayer, QuantizedMlp};
}

/// Errors produced by the neural-network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A matrix/vector shape did not match what the operation required.
    ShapeMismatch {
        /// Human-readable description of the context in which the mismatch occurred.
        context: String,
    },
    /// The dataset was empty or features/targets had inconsistent lengths.
    InvalidDataset(String),
    /// The network architecture specification was invalid (e.g. fewer than two layer sizes).
    InvalidArchitecture(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            NnError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            NnError::InvalidArchitecture(msg) => write!(f, "invalid architecture: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = NnError::ShapeMismatch {
            context: "matmul 2x3 * 4x5".into(),
        };
        assert!(e.to_string().contains("matmul"));
        let e = NnError::InvalidDataset("empty".into());
        assert!(e.to_string().contains("empty"));
        let e = NnError::InvalidArchitecture("need >= 2 sizes".into());
        assert!(e.to_string().contains("2 sizes"));
    }
}

//! The versioned `QCFW` model-weight codec.
//!
//! `QCFW` is the third member of the workspace's binary codec family
//! (`QCFS` feature snapshots and `QVEC` knob vectors live in
//! `qcfe_core::snapshot` / the serving store): a framed, checksummed,
//! little-endian container for trained model weights. This module owns the
//! *framing* and the *[`Mlp`] record* — the estimator-level payloads
//! (MSCN / QPPNet state) are composed on top of it by
//! `qcfe_core::model_codec` using the same reader and error taxonomy.
//!
//! # Format specification (version 2)
//!
//! Every `QCFW` file is one frame:
//!
//! ```text
//! offset size  field
//! 0      4     magic "QCFW"
//! 4      4     u32 codec version (writers emit 2; 1..=2 decode)
//! 8      1     u8 payload kind (0 = raw Mlp, 3 = quantized Mlp;
//!              qcfe-core defines 1 = MSCN, 2 = QPPNet,
//!              4 = int8 MSCN, 5 = int8 QPPNet)
//! 9      8     u64 payload length in bytes
//! 17     4     u32 CRC-32 (IEEE) over the kind byte followed by the payload
//! 21     …     payload
//! ```
//!
//! All integers and floats are **little-endian**; `f64` values are raw IEEE
//! bit patterns, so weights round-trip *bit-exactly* — a reloaded model
//! produces identical estimates, not merely close ones.
//!
//! Inside a payload, an **Mlp record** is:
//!
//! ```text
//! u32 layer count (≥ 1)
//! per layer:
//!   u32 input dim (≥ 1)
//!   u32 output dim (≥ 1)
//!   u8  activation index (Activation::index)
//!   input*output f64 weights (row-major, the Matrix storage order)
//!   output f64 biases
//! ```
//!
//! Version 2 adds the **quantized Mlp record** (the only layout change; a
//! version-2 frame holding a plain Mlp record is byte-identical to its
//! version-1 form apart from the version field):
//!
//! ```text
//! u32 layer count (≥ 1)
//! per layer:
//!   u8  record tag (1 = int8 symmetric; others rejected as
//!       WeightsCodecError::UnknownRecordTag)
//!   u32 input dim (≥ 1)
//!   u32 output dim (≥ 1)
//!   u8  activation index (Activation::index)
//!   f64 scale (finite, > 0)
//!   i8  zero point
//!   input*output i8 weights (row-major)
//!   output f64 biases
//! ```
//!
//! Optimizer state is deliberately *not* persisted: the codec captures the
//! inference surface; a reloaded network re-initialises optimizer moments
//! on its first training step.
//!
//! # Versioning policy
//!
//! Mirrors `QCFS`: writers always emit [`WEIGHTS_CODEC_VERSION`]; decoders
//! accept the whole range [`WEIGHTS_CODEC_MIN_VERSION`]`..=`current (v1
//! buffers written before quantization existed still decode) and reject
//! anything else with [`WeightsCodecError::UnsupportedVersion`] instead of
//! guessing. Unknown per-layer record tags are rejected strictly
//! ([`WeightsCodecError::UnknownRecordTag`]); there is no lenient skip
//! path. The CRC means *any* single corrupted byte — header or payload —
//! is rejected with a typed error rather than silently decoding to
//! different weights.

use crate::activation::Activation;
use crate::layer::DenseLayer;
use crate::matrix::Matrix;
use crate::mlp::Mlp;
use crate::quant::{QuantizedDenseLayer, QuantizedMlp};

/// Magic prefix of every `QCFW` frame.
pub const WEIGHTS_MAGIC: &[u8; 4] = b"QCFW";

/// Current version of the `QCFW` codec (what [`frame`] writes).
pub const WEIGHTS_CODEC_VERSION: u32 = 2;

/// Oldest version [`unframe`] still decodes.
pub const WEIGHTS_CODEC_MIN_VERSION: u32 = 1;

/// Payload kind of a frame holding one raw [`Mlp`] record.
pub const PAYLOAD_MLP: u8 = 0;

/// Payload kind of a frame holding one quantized [`QuantizedMlp`] record
/// (version ≥ 2).
pub const PAYLOAD_QUANT_MLP: u8 = 3;

/// Per-layer record tag of the int8 symmetric quantization scheme — the
/// only scheme version 2 defines. Unknown tags are rejected strictly.
pub const QUANT_LAYER_TAG_INT8: u8 = 1;

/// Size of the fixed frame header (magic + version + kind + length + CRC).
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 1 + 8 + 4;

/// Errors produced when decoding persisted model weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightsCodecError {
    /// The buffer did not start with [`WEIGHTS_MAGIC`].
    BadMagic,
    /// The frame's codec version is not understood by this build.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared content was read.
    Truncated,
    /// Extra bytes after the declared content.
    TrailingBytes(usize),
    /// The frame checksum did not match its content (corruption).
    Checksum {
        /// CRC stored in the frame header.
        expected: u32,
        /// CRC computed over the received content.
        actual: u32,
    },
    /// The frame's payload kind is not one this decoder accepts.
    UnknownPayload(u8),
    /// An activation index outside [`Activation::ALL`].
    UnknownActivation(u8),
    /// A per-layer record tag this decoder does not define (e.g. a
    /// quantization scheme from a future version).
    UnknownRecordTag(u8),
    /// The content decoded but violates a structural invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for WeightsCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightsCodecError::BadMagic => write!(f, "not a QCFW weight file (bad magic)"),
            WeightsCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported QCFW codec version {v}")
            }
            WeightsCodecError::Truncated => write!(f, "QCFW buffer truncated"),
            WeightsCodecError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after QCFW content")
            }
            WeightsCodecError::Checksum { expected, actual } => write!(
                f,
                "QCFW checksum mismatch: header says {expected:#010x}, content hashes to {actual:#010x}"
            ),
            WeightsCodecError::UnknownPayload(k) => {
                write!(f, "unknown QCFW payload kind {k}")
            }
            WeightsCodecError::UnknownActivation(i) => {
                write!(f, "unknown activation index {i} in QCFW record")
            }
            WeightsCodecError::UnknownRecordTag(t) => {
                write!(f, "unknown QCFW per-layer record tag {t}")
            }
            WeightsCodecError::Malformed(what) => write!(f, "malformed QCFW record: {what}"),
        }
    }
}

impl std::error::Error for WeightsCodecError {}

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    incremental_crc32(0, bytes)
}

/// A bounds-checked little-endian reader over a byte slice. Every take that
/// runs off the end yields [`WeightsCodecError::Truncated`] — decoding
/// never panics on short input.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WeightsCodecError> {
        if self.buf.len() < n {
            return Err(WeightsCodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8, WeightsCodecError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WeightsCodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WeightsCodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Consume a little-endian `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WeightsCodecError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Assert the reader is exhausted (else
    /// [`WeightsCodecError::TrailingBytes`]).
    pub fn finish(self) -> Result<(), WeightsCodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WeightsCodecError::TrailingBytes(self.buf.len()))
        }
    }
}

/// Wrap a payload into a checksummed `QCFW` frame.
pub fn frame(payload_kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(WEIGHTS_MAGIC);
    out.extend_from_slice(&WEIGHTS_CODEC_VERSION.to_le_bytes());
    out.push(payload_kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    // CRC covers the kind byte plus the payload, so a flipped kind byte is
    // as detectable as a flipped weight byte.
    let crc = incremental_crc32(crc32(&[payload_kind]), payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental CRC-32: resume a finalised CRC value over more bytes
/// (`crc32(x) == incremental_crc32(0, x)`).
fn incremental_crc32(crc: u32, bytes: &[u8]) -> u32 {
    let mut state = !crc;
    for &b in bytes {
        state = CRC32_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    !state
}

/// Validate and strip a `QCFW` frame, returning `(payload kind, payload)`.
///
/// Checks magic, version, declared length (both truncation and trailing
/// bytes) and the CRC; any single corrupted byte anywhere in the frame
/// yields a typed error.
pub fn unframe(bytes: &[u8]) -> Result<(u8, &[u8]), WeightsCodecError> {
    let mut r = Reader::new(bytes);
    if r.take(WEIGHTS_MAGIC.len())? != WEIGHTS_MAGIC {
        return Err(WeightsCodecError::BadMagic);
    }
    let version = r.u32()?;
    if !(WEIGHTS_CODEC_MIN_VERSION..=WEIGHTS_CODEC_VERSION).contains(&version) {
        return Err(WeightsCodecError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    let declared = r.u64()? as usize;
    let expected = r.u32()?;
    if r.remaining() < declared {
        return Err(WeightsCodecError::Truncated);
    }
    if r.remaining() > declared {
        return Err(WeightsCodecError::TrailingBytes(r.remaining() - declared));
    }
    let payload = r.take(declared)?;
    let actual = incremental_crc32(crc32(&[kind]), payload);
    if actual != expected {
        return Err(WeightsCodecError::Checksum { expected, actual });
    }
    Ok((kind, payload))
}

/// Append one [`Mlp`] record (see the module docs for the layout) to a
/// caller-owned buffer.
pub fn write_mlp(mlp: &Mlp, out: &mut Vec<u8>) {
    let layers = mlp.layers();
    out.extend_from_slice(&(layers.len() as u32).to_le_bytes());
    for layer in layers {
        out.extend_from_slice(&(layer.input_dim() as u32).to_le_bytes());
        out.extend_from_slice(&(layer.output_dim() as u32).to_le_bytes());
        out.push(layer.activation().index() as u8);
        for w in layer.weights().as_slice() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for b in layer.biases() {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
}

/// Read one [`Mlp`] record written by [`write_mlp`].
pub fn read_mlp(r: &mut Reader<'_>) -> Result<Mlp, WeightsCodecError> {
    let layer_count = r.u32()? as usize;
    if layer_count == 0 {
        return Err(WeightsCodecError::Malformed(
            "an MLP needs at least one layer",
        ));
    }
    let mut layers = Vec::with_capacity(layer_count.min(64));
    let mut prev_out: Option<usize> = None;
    for _ in 0..layer_count {
        let input_dim = r.u32()? as usize;
        let output_dim = r.u32()? as usize;
        if input_dim == 0 || output_dim == 0 {
            return Err(WeightsCodecError::Malformed("zero layer dimension"));
        }
        if let Some(prev) = prev_out {
            if prev != input_dim {
                return Err(WeightsCodecError::Malformed(
                    "consecutive layer dimensions disagree",
                ));
            }
        }
        let act_index = r.u8()?;
        let activation = Activation::from_index(act_index as usize)
            .ok_or(WeightsCodecError::UnknownActivation(act_index))?;
        // Bound the parameter count by what the buffer can still hold
        // before allocating, so a corrupted dimension cannot trigger a
        // huge allocation.
        let weight_count = input_dim
            .checked_mul(output_dim)
            .ok_or(WeightsCodecError::Malformed("layer dimension overflow"))?;
        let needed = weight_count
            .checked_add(output_dim)
            .and_then(|n| n.checked_mul(8))
            .ok_or(WeightsCodecError::Malformed("layer dimension overflow"))?;
        if r.remaining() < needed {
            return Err(WeightsCodecError::Truncated);
        }
        let mut weights = Vec::with_capacity(weight_count);
        for _ in 0..weight_count {
            weights.push(r.f64()?);
        }
        let mut biases = Vec::with_capacity(output_dim);
        for _ in 0..output_dim {
            biases.push(r.f64()?);
        }
        layers.push(DenseLayer::with_parameters(
            Matrix::from_vec(input_dim, output_dim, weights),
            biases,
            activation,
        ));
        prev_out = Some(output_dim);
    }
    Ok(Mlp::from_layers(layers))
}

/// Append one [`QuantizedMlp`] record (see the module docs for the
/// version-2 layout) to a caller-owned buffer.
pub fn write_quantized_mlp(mlp: &QuantizedMlp, out: &mut Vec<u8>) {
    let layers = mlp.layers();
    out.extend_from_slice(&(layers.len() as u32).to_le_bytes());
    for layer in layers {
        out.push(QUANT_LAYER_TAG_INT8);
        out.extend_from_slice(&(layer.input_dim() as u32).to_le_bytes());
        out.extend_from_slice(&(layer.output_dim() as u32).to_le_bytes());
        out.push(layer.activation().index() as u8);
        out.extend_from_slice(&layer.scale().to_le_bytes());
        out.push(layer.zero_point() as u8);
        out.extend(layer.weights_q().iter().map(|&v| v as u8));
        for b in layer.biases() {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
}

/// Read one [`QuantizedMlp`] record written by [`write_quantized_mlp`].
pub fn read_quantized_mlp(r: &mut Reader<'_>) -> Result<QuantizedMlp, WeightsCodecError> {
    let layer_count = r.u32()? as usize;
    if layer_count == 0 {
        return Err(WeightsCodecError::Malformed(
            "a quantized MLP needs at least one layer",
        ));
    }
    let mut layers = Vec::with_capacity(layer_count.min(64));
    let mut prev_out: Option<usize> = None;
    for _ in 0..layer_count {
        let tag = r.u8()?;
        if tag != QUANT_LAYER_TAG_INT8 {
            return Err(WeightsCodecError::UnknownRecordTag(tag));
        }
        let input_dim = r.u32()? as usize;
        let output_dim = r.u32()? as usize;
        if input_dim == 0 || output_dim == 0 {
            return Err(WeightsCodecError::Malformed("zero layer dimension"));
        }
        if let Some(prev) = prev_out {
            if prev != input_dim {
                return Err(WeightsCodecError::Malformed(
                    "consecutive layer dimensions disagree",
                ));
            }
        }
        let act_index = r.u8()?;
        let activation = Activation::from_index(act_index as usize)
            .ok_or(WeightsCodecError::UnknownActivation(act_index))?;
        let scale = r.f64()?;
        if !scale.is_finite() || scale <= 0.0 {
            return Err(WeightsCodecError::Malformed(
                "quantization scale must be finite and positive",
            ));
        }
        let zero_point = r.u8()? as i8;
        // Bound the parameter count by what the buffer can still hold
        // before allocating (1 byte per weight, 8 per bias).
        let weight_count = input_dim
            .checked_mul(output_dim)
            .ok_or(WeightsCodecError::Malformed("layer dimension overflow"))?;
        let needed = output_dim
            .checked_mul(8)
            .and_then(|n| n.checked_add(weight_count))
            .ok_or(WeightsCodecError::Malformed("layer dimension overflow"))?;
        if r.remaining() < needed {
            return Err(WeightsCodecError::Truncated);
        }
        let weights_q: Vec<i8> = r.take(weight_count)?.iter().map(|&b| b as i8).collect();
        let mut biases = Vec::with_capacity(output_dim);
        for _ in 0..output_dim {
            biases.push(r.f64()?);
        }
        layers.push(QuantizedDenseLayer::from_parts(
            input_dim, output_dim, scale, zero_point, weights_q, biases, activation,
        ));
        prev_out = Some(output_dim);
    }
    Ok(QuantizedMlp::from_layers(layers))
}

impl QuantizedMlp {
    /// Serialise into a standalone framed `QCFW` v2 buffer
    /// ([`PAYLOAD_QUANT_MLP`]). Quantized weights, scales, zero-points and
    /// f64 biases round-trip bit-exactly, so a reloaded quantized model
    /// serves bit-identical estimates.
    pub fn to_weight_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_quantized_mlp(self, &mut payload);
        frame(PAYLOAD_QUANT_MLP, &payload)
    }

    /// Parse a framed `QCFW` buffer written by
    /// [`QuantizedMlp::to_weight_bytes`].
    pub fn from_weight_bytes(bytes: &[u8]) -> Result<QuantizedMlp, WeightsCodecError> {
        let (kind, payload) = unframe(bytes)?;
        if kind != PAYLOAD_QUANT_MLP {
            return Err(WeightsCodecError::UnknownPayload(kind));
        }
        let mut r = Reader::new(payload);
        let mlp = read_quantized_mlp(&mut r)?;
        r.finish()?;
        Ok(mlp)
    }
}

impl Mlp {
    /// Serialise the network into a standalone framed `QCFW` buffer
    /// ([`PAYLOAD_MLP`]). Weights and biases round-trip bit-exactly.
    pub fn to_weight_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_mlp(self, &mut payload);
        frame(PAYLOAD_MLP, &payload)
    }

    /// Parse a framed `QCFW` buffer written by [`Mlp::to_weight_bytes`].
    pub fn from_weight_bytes(bytes: &[u8]) -> Result<Mlp, WeightsCodecError> {
        let (kind, payload) = unframe(bytes)?;
        if kind != PAYLOAD_MLP {
            return Err(WeightsCodecError::UnknownPayload(kind));
        }
        let mut r = Reader::new(payload);
        let mlp = read_mlp(&mut r)?;
        r.finish()?;
        Ok(mlp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Bit-exact structural equality between two networks.
    fn assert_mlp_bit_identical(a: &Mlp, b: &Mlp) {
        assert_eq!(a.layer_count(), b.layer_count());
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            assert_eq!(la.input_dim(), lb.input_dim());
            assert_eq!(la.output_dim(), lb.output_dim());
            assert_eq!(la.activation(), lb.activation());
            for (wa, wb) in la.weights().as_slice().iter().zip(lb.weights().as_slice()) {
                assert_eq!(wa.to_bits(), wb.to_bits());
            }
            for (ba, bb) in la.biases().iter().zip(lb.biases()) {
                assert_eq!(ba.to_bits(), bb.to_bits());
            }
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental resumption equals one-shot hashing.
        let whole = crc32(b"hello world");
        let resumed = incremental_crc32(crc32(b"hello "), b"world");
        assert_eq!(whole, resumed);
    }

    #[test]
    fn mlp_roundtrips_bit_exactly() {
        let mut r = rng(42);
        let mlp = Mlp::with_output_activation(
            &[7, 12, 5, 1],
            Activation::Relu,
            Activation::Softplus,
            &mut r,
        );
        let bytes = mlp.to_weight_bytes();
        let back = Mlp::from_weight_bytes(&bytes).expect("decodes");
        assert_mlp_bit_identical(&mlp, &back);
        // Inference through the reloaded network is bit-identical.
        let x = [0.3, -0.1, 0.7, 0.0, 1.5, -2.0, 0.25];
        assert_eq!(
            mlp.predict_one(&x).to_bits(),
            back.predict_one(&x).to_bits()
        );
    }

    #[test]
    fn every_activation_roundtrips() {
        for (i, act) in Activation::ALL.iter().enumerate() {
            assert_eq!(act.index(), i);
            assert_eq!(Activation::from_index(i), Some(*act));
            let mut r = rng(7 + i as u64);
            let mlp = Mlp::with_output_activation(&[3, 4, 2], *act, *act, &mut r);
            let back = Mlp::from_weight_bytes(&mlp.to_weight_bytes()).expect("decodes");
            assert_mlp_bit_identical(&mlp, &back);
        }
        assert_eq!(Activation::from_index(Activation::ALL.len()), None);
    }

    #[test]
    fn decode_rejects_framing_corruption_with_typed_errors() {
        let mut r = rng(5);
        let mlp = Mlp::new(&[4, 6, 1], Activation::Relu, &mut r);
        let bytes = mlp.to_weight_bytes();

        assert_eq!(
            Mlp::from_weight_bytes(b"QC").unwrap_err(),
            WeightsCodecError::Truncated
        );
        assert_eq!(
            Mlp::from_weight_bytes(b"nope-not-a-weight-file").unwrap_err(),
            WeightsCodecError::BadMagic
        );

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(
            Mlp::from_weight_bytes(&wrong_version).unwrap_err(),
            WeightsCodecError::UnsupportedVersion(99)
        );

        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 5);
        assert_eq!(
            Mlp::from_weight_bytes(&truncated).unwrap_err(),
            WeightsCodecError::Truncated
        );

        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            Mlp::from_weight_bytes(&trailing).unwrap_err(),
            WeightsCodecError::TrailingBytes(3)
        );

        // Flipping any payload byte trips the checksum.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            Mlp::from_weight_bytes(&corrupt),
            Err(WeightsCodecError::Checksum { .. })
        ));

        // Flipping the kind byte is covered by the checksum too.
        let mut wrong_kind = bytes.clone();
        wrong_kind[8] = 7;
        assert!(matches!(
            Mlp::from_weight_bytes(&wrong_kind),
            Err(WeightsCodecError::Checksum { .. })
        ));

        // A well-formed frame of the wrong kind is rejected by kind.
        let reframed = {
            let (_, payload) = unframe(&bytes).expect("valid");
            frame(9, payload)
        };
        assert_eq!(
            Mlp::from_weight_bytes(&reframed).unwrap_err(),
            WeightsCodecError::UnknownPayload(9)
        );
    }

    #[test]
    fn decode_rejects_structural_corruption_without_panicking() {
        // Record-level corruption is re-framed with a fresh checksum so it
        // reaches the structural validators.
        let mut r = rng(6);
        let mlp = Mlp::new(&[3, 5, 1], Activation::Tanh, &mut r);
        let mut payload = Vec::new();
        write_mlp(&mlp, &mut payload);

        // Zero layers.
        let mut zero_layers = payload.clone();
        zero_layers[..4].copy_from_slice(&0u32.to_le_bytes());
        let framed = frame(PAYLOAD_MLP, &zero_layers);
        assert_eq!(
            Mlp::from_weight_bytes(&framed).unwrap_err(),
            WeightsCodecError::Malformed("an MLP needs at least one layer")
        );

        // A huge declared dimension must fail cleanly, not allocate.
        let mut huge = payload.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let framed = frame(PAYLOAD_MLP, &huge);
        assert!(Mlp::from_weight_bytes(&framed).is_err());

        // Unknown activation index.
        let mut bad_act = payload.clone();
        bad_act[12] = 200; // layer_count(4) + in(4) + out(4) → activation byte
        let framed = frame(PAYLOAD_MLP, &bad_act);
        assert_eq!(
            Mlp::from_weight_bytes(&framed).unwrap_err(),
            WeightsCodecError::UnknownActivation(200)
        );

        // Mismatched consecutive dimensions.
        let mut mismatched = payload;
        // Second layer's input dim lives after layer 1's record:
        // 4 (count) + 4+4+1 + (3*5 + 5) * 8 bytes.
        let layer2_input = 4 + 9 + (3 * 5 + 5) * 8;
        mismatched[layer2_input..layer2_input + 4].copy_from_slice(&4u32.to_le_bytes());
        let framed = frame(PAYLOAD_MLP, &mismatched);
        assert!(matches!(
            Mlp::from_weight_bytes(&framed),
            Err(WeightsCodecError::Malformed(_) | WeightsCodecError::Truncated)
        ));
    }

    #[test]
    fn quantized_mlp_roundtrips_bit_exactly() {
        let mut r = rng(11);
        let mlp = Mlp::with_output_activation(
            &[6, 10, 4, 1],
            Activation::Relu,
            Activation::Softplus,
            &mut r,
        );
        let q = QuantizedMlp::quantize(&mlp);
        let bytes = q.to_weight_bytes();
        let back = QuantizedMlp::from_weight_bytes(&bytes).expect("decodes");
        assert_eq!(q, back);
        let x = [0.3, -0.1, 0.7, 0.0, 1.5, -2.0];
        assert_eq!(q.predict_one(&x).to_bits(), back.predict_one(&x).to_bits());
    }

    #[test]
    fn quantized_decode_rejects_unknown_record_tag() {
        let mut r = rng(12);
        let q = QuantizedMlp::quantize(&Mlp::new(&[3, 5, 1], Activation::Relu, &mut r));
        let mut payload = Vec::new();
        write_quantized_mlp(&q, &mut payload);
        // First layer's record tag sits right after the u32 layer count.
        payload[4] = 9;
        let framed = frame(PAYLOAD_QUANT_MLP, &payload);
        assert_eq!(
            QuantizedMlp::from_weight_bytes(&framed).unwrap_err(),
            WeightsCodecError::UnknownRecordTag(9)
        );
    }

    #[test]
    fn quantized_decode_rejects_structural_corruption() {
        let mut r = rng(13);
        let q = QuantizedMlp::quantize(&Mlp::new(&[3, 5, 1], Activation::Relu, &mut r));
        let mut payload = Vec::new();
        write_quantized_mlp(&q, &mut payload);

        // Truncation inside a layer record.
        let mut truncated = payload.clone();
        truncated.truncate(truncated.len() - 3);
        let framed = frame(PAYLOAD_QUANT_MLP, &truncated);
        assert_eq!(
            QuantizedMlp::from_weight_bytes(&framed).unwrap_err(),
            WeightsCodecError::Truncated
        );

        // Non-finite scale (offset: count 4 + tag 1 + dims 8 + activation 1).
        let mut bad_scale = payload.clone();
        bad_scale[14..22].copy_from_slice(&f64::NAN.to_le_bytes());
        let framed = frame(PAYLOAD_QUANT_MLP, &bad_scale);
        assert_eq!(
            QuantizedMlp::from_weight_bytes(&framed).unwrap_err(),
            WeightsCodecError::Malformed("quantization scale must be finite and positive")
        );

        // A huge declared dimension must fail cleanly, not allocate.
        let mut huge = payload.clone();
        huge[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let framed = frame(PAYLOAD_QUANT_MLP, &huge);
        assert!(QuantizedMlp::from_weight_bytes(&framed).is_err());

        // A plain-Mlp frame is rejected by payload kind, not misparsed.
        let f64_frame = Mlp::new(&[3, 5, 1], Activation::Relu, &mut r).to_weight_bytes();
        assert_eq!(
            QuantizedMlp::from_weight_bytes(&f64_frame).unwrap_err(),
            WeightsCodecError::UnknownPayload(PAYLOAD_MLP)
        );
    }

    #[test]
    fn version_1_frames_still_decode() {
        // A v1 frame is a v2 frame with the version field rewritten: the
        // plain-Mlp payload layout never changed. Emulate a pre-upgrade
        // file on disk and decode it with today's code.
        let mut r = rng(14);
        let mlp = Mlp::new(&[4, 7, 1], Activation::Relu, &mut r);
        let mut v1 = mlp.to_weight_bytes();
        assert_eq!(
            u32::from_le_bytes(v1[4..8].try_into().unwrap()),
            WEIGHTS_CODEC_VERSION
        );
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let back = Mlp::from_weight_bytes(&v1).expect("v1 decodes");
        assert_mlp_bit_identical(&mlp, &back);

        // Versions outside the accepted range are still rejected.
        let mut v0 = v1.clone();
        v0[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            Mlp::from_weight_bytes(&v0).unwrap_err(),
            WeightsCodecError::UnsupportedVersion(0)
        );
        let mut v3 = v1;
        v3[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(
            Mlp::from_weight_bytes(&v3).unwrap_err(),
            WeightsCodecError::UnsupportedVersion(3)
        );
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WeightsCodecError::BadMagic.to_string().contains("QCFW"));
        assert!(WeightsCodecError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(WeightsCodecError::Checksum {
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(WeightsCodecError::UnknownRecordTag(7)
            .to_string()
            .contains('7'));
        assert!(WeightsCodecError::Malformed("x").to_string().contains('x'));
    }
}

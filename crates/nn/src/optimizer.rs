//! Parameter update rules (SGD with momentum, Adam).
//!
//! Optimizers are stateless value objects; the per-parameter state (momentum
//! buffers, Adam moments) lives in [`OptimizerState`] so one optimizer
//! configuration can be shared across the many small neural units of QPPNet.

use crate::layer::DenseLayer;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Optimizer {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Learning rate.
        learning_rate: f64,
        /// Momentum coefficient in `[0, 1)`; 0 disables momentum.
        momentum: f64,
    },
    /// Adam optimizer.
    Adam {
        /// Learning rate.
        learning_rate: f64,
        /// Exponential decay for the first moment.
        beta1: f64,
        /// Exponential decay for the second moment.
        beta2: f64,
        /// Numerical stabiliser.
        epsilon: f64,
    },
}

impl Optimizer {
    /// Plain SGD with the given learning rate.
    pub fn sgd(learning_rate: f64) -> Self {
        Optimizer::Sgd {
            learning_rate,
            momentum: 0.0,
        }
    }

    /// Adam with the conventional default hyper-parameters.
    pub fn adam(learning_rate: f64) -> Self {
        Optimizer::Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        match self {
            Optimizer::Sgd { learning_rate, .. } | Optimizer::Adam { learning_rate, .. } => {
                *learning_rate
            }
        }
    }

    /// Return a copy with a different learning rate (used for fine-tuning in
    /// the transfer-learning experiment).
    pub fn with_learning_rate(&self, learning_rate: f64) -> Self {
        match *self {
            Optimizer::Sgd { momentum, .. } => Optimizer::Sgd {
                learning_rate,
                momentum,
            },
            Optimizer::Adam {
                beta1,
                beta2,
                epsilon,
                ..
            } => Optimizer::Adam {
                learning_rate,
                beta1,
                beta2,
                epsilon,
            },
        }
    }
}

/// Per-layer optimizer state (one entry per [`DenseLayer`]).
#[derive(Debug, Clone)]
pub struct OptimizerState {
    /// First-moment / momentum buffers for the weights of each layer.
    m_weights: Vec<Matrix>,
    /// Second-moment buffers for the weights of each layer (Adam only).
    v_weights: Vec<Matrix>,
    /// First-moment / momentum buffers for the biases of each layer.
    m_biases: Vec<Vec<f64>>,
    /// Second-moment buffers for the biases of each layer (Adam only).
    v_biases: Vec<Vec<f64>>,
    /// Number of update steps performed so far (for Adam bias correction).
    step: u64,
}

impl OptimizerState {
    /// Allocate zeroed state matching the shapes of the given layers.
    pub fn for_layers(layers: &[DenseLayer]) -> Self {
        let m_weights = layers
            .iter()
            .map(|l| Matrix::zeros(l.input_dim(), l.output_dim()))
            .collect::<Vec<_>>();
        let v_weights = m_weights.clone();
        let m_biases = layers
            .iter()
            .map(|l| vec![0.0; l.output_dim()])
            .collect::<Vec<_>>();
        let v_biases = m_biases.clone();
        OptimizerState {
            m_weights,
            v_weights,
            m_biases,
            v_biases,
            step: 0,
        }
    }

    /// Number of optimizer steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Apply one update step to all layers using their accumulated gradients,
    /// then zero the gradients.
    pub fn apply(&mut self, optimizer: &Optimizer, layers: &mut [DenseLayer]) {
        assert_eq!(
            layers.len(),
            self.m_weights.len(),
            "optimizer state / layer count mismatch"
        );
        self.step += 1;
        for (idx, layer) in layers.iter_mut().enumerate() {
            match *optimizer {
                Optimizer::Sgd {
                    learning_rate,
                    momentum,
                } => {
                    self.sgd_update(idx, layer, learning_rate, momentum);
                }
                Optimizer::Adam {
                    learning_rate,
                    beta1,
                    beta2,
                    epsilon,
                } => {
                    self.adam_update(idx, layer, learning_rate, beta1, beta2, epsilon);
                }
            }
            layer.zero_grad();
        }
    }

    fn sgd_update(&mut self, idx: usize, layer: &mut DenseLayer, lr: f64, momentum: f64) {
        let grad_w = layer.grad_weights().clone();
        let grad_b: Vec<f64> = layer.grad_biases().to_vec();
        {
            let m = &mut self.m_weights[idx];
            // m = momentum * m + grad ; w -= lr * m
            for (mv, gv) in m.as_mut_slice().iter_mut().zip(grad_w.as_slice()) {
                *mv = momentum * *mv + *gv;
            }
            let w = layer.weights_mut();
            for (wv, mv) in w.as_mut_slice().iter_mut().zip(m.as_slice()) {
                *wv -= lr * *mv;
            }
        }
        {
            let mb = &mut self.m_biases[idx];
            for (mv, gv) in mb.iter_mut().zip(&grad_b) {
                *mv = momentum * *mv + *gv;
            }
            let b = layer.biases_mut();
            for (bv, mv) in b.iter_mut().zip(mb.iter()) {
                *bv -= lr * *mv;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn adam_update(
        &mut self,
        idx: usize,
        layer: &mut DenseLayer,
        lr: f64,
        beta1: f64,
        beta2: f64,
        epsilon: f64,
    ) {
        let t = self.step as f64;
        let bc1 = 1.0 - beta1.powf(t);
        let bc2 = 1.0 - beta2.powf(t);
        let grad_w = layer.grad_weights().clone();
        let grad_b: Vec<f64> = layer.grad_biases().to_vec();

        {
            let m = &mut self.m_weights[idx];
            let v = &mut self.v_weights[idx];
            for ((mv, vv), gv) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(grad_w.as_slice())
            {
                *mv = beta1 * *mv + (1.0 - beta1) * *gv;
                *vv = beta2 * *vv + (1.0 - beta2) * *gv * *gv;
            }
            let w = layer.weights_mut();
            for ((wv, mv), vv) in w
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *wv -= lr * m_hat / (v_hat.sqrt() + epsilon);
            }
        }
        {
            let mb = &mut self.m_biases[idx];
            let vb = &mut self.v_biases[idx];
            for ((mv, vv), gv) in mb.iter_mut().zip(vb.iter_mut()).zip(&grad_b) {
                *mv = beta1 * *mv + (1.0 - beta1) * *gv;
                *vv = beta2 * *vv + (1.0 - beta2) * *gv * *gv;
            }
            let b = layer.biases_mut();
            for ((bv, mv), vv) in b.iter_mut().zip(mb.iter()).zip(vb.iter()) {
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *bv -= lr * m_hat / (v_hat.sqrt() + epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::matrix::Matrix;

    fn layer_with_grad() -> DenseLayer {
        let mut l = DenseLayer::with_parameters(
            Matrix::from_vec(1, 1, vec![1.0]),
            vec![0.0],
            Activation::Identity,
        );
        // produce a known gradient of 2.0 on the single weight
        let _ = l.forward(&Matrix::from_vec(1, 1, vec![2.0]));
        let _ = l.backward(&Matrix::from_vec(1, 1, vec![1.0]));
        l
    }

    #[test]
    fn sgd_moves_parameters_against_gradient() {
        let mut layers = vec![layer_with_grad()];
        let mut state = OptimizerState::for_layers(&layers);
        let opt = Optimizer::sgd(0.1);
        state.apply(&opt, &mut layers);
        // weight 1.0, gradient 2.0, lr 0.1 -> 0.8
        assert!((layers[0].weights().get(0, 0) - 0.8).abs() < 1e-12);
        // gradient should be reset
        assert_eq!(layers[0].grad_weights().get(0, 0), 0.0);
        assert_eq!(state.steps_taken(), 1);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let make = || layer_with_grad();
        // two identical steps with momentum: second step moves further
        let mut layers = vec![make()];
        let mut state = OptimizerState::for_layers(&layers);
        let opt = Optimizer::Sgd {
            learning_rate: 0.1,
            momentum: 0.9,
        };
        state.apply(&opt, &mut layers);
        let after_first = layers[0].weights().get(0, 0);
        // re-create the same gradient and apply again
        let _ = layers[0].forward(&Matrix::from_vec(1, 1, vec![2.0]));
        let _ = layers[0].backward(&Matrix::from_vec(1, 1, vec![1.0]));
        state.apply(&opt, &mut layers);
        let after_second = layers[0].weights().get(0, 0);
        let first_delta = 1.0 - after_first;
        let second_delta = after_first - after_second;
        assert!(
            second_delta > first_delta,
            "momentum should accelerate the update"
        );
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        let mut layers = vec![layer_with_grad()];
        let mut state = OptimizerState::for_layers(&layers);
        let opt = Optimizer::adam(0.01);
        state.apply(&opt, &mut layers);
        // Adam's bias-corrected first step is ~lr regardless of gradient scale.
        let delta = 1.0 - layers[0].weights().get(0, 0);
        assert!((delta - 0.01).abs() < 1e-6, "delta {delta}");
    }

    #[test]
    fn with_learning_rate_preserves_other_hyperparameters() {
        let adam = Optimizer::adam(0.01).with_learning_rate(0.1);
        match adam {
            Optimizer::Adam {
                learning_rate,
                beta1,
                ..
            } => {
                assert_eq!(learning_rate, 0.1);
                assert_eq!(beta1, 0.9);
            }
            _ => panic!("expected Adam"),
        }
        assert_eq!(Optimizer::sgd(0.5).learning_rate(), 0.5);
    }
}

//! Multi-layer perceptron with explicit training loop, functional (cached)
//! forward/backward for tree-structured composition, and input-gradient
//! extraction.
//!
//! Two training surfaces are exposed:
//!
//! * [`Mlp::train`] — the standard flat mini-batch loop used by the MSCN-style
//!   estimator and by many unit tests;
//! * [`Mlp::forward_cached`] / [`Mlp::backward_cached`] / [`Mlp::step`] — the
//!   building blocks used by the QPPNet reimplementation, where one MLP per
//!   operator type is applied at every matching node of a plan tree and the
//!   gradients flow from parents into the outputs of children.
//!
//! # Batched, allocation-free inference
//!
//! The serving hot path is [`Mlp::predict_batch_into`]: a whole batch of
//! feature rows is pushed through the network in one matrix pass per layer,
//! writing every intermediate into a caller-owned [`InferenceScratch`] whose
//! buffers are reused across calls — after warm-up the forward pass performs
//! zero heap allocations. The convenience wrappers ([`Mlp::predict_vec`],
//! [`Mlp::predict_one`], [`Mlp::predict_rows`]) route through the same path
//! via a thread-local scratch, so single-row prediction no longer builds a
//! fresh 1-row [`Matrix`] per call. Batched and per-row results are
//! bit-identical because every kernel visits elements in the same order
//! row-by-row.

use crate::activation::Activation;
use crate::dataset::Dataset;
use crate::layer::DenseLayer;
use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::optimizer::{Optimizer, OptimizerState};
use rand::Rng;
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Configuration for the flat mini-batch training loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Parameter update rule.
    pub optimizer: Optimizer,
    /// Regression loss.
    pub loss: Loss,
    /// Whether to reshuffle the samples at every epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 64,
            optimizer: Optimizer::adam(1e-2),
            loss: Loss::LogMse,
            shuffle: true,
        }
    }
}

/// Record of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainHistory {
    /// Mean training loss after each epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock time spent inside `train`.
    pub wall_time: Duration,
}

impl TrainHistory {
    /// Final epoch loss, or infinity when no epoch ran.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Cached intermediate state of a functional forward pass, to be fed back
/// into [`Mlp::backward_cached`].
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Layer inputs, one per layer (index 0 is the network input).
    inputs: Vec<Matrix>,
    /// Pre-activation values, one per layer.
    pre_activations: Vec<Matrix>,
}

/// Caller-owned scratch buffers for the allocation-free batched forward
/// pass ([`Mlp::predict_batch_into`]).
///
/// The two ping-pong matrices hold successive layer activations; they are
/// reshaped in place per call, so after the first call at a given batch
/// size the forward pass allocates nothing. One scratch can be shared
/// across networks of different shapes (the buffers grow to the largest
/// shape seen).
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    pub(crate) ping: Matrix,
    pub(crate) pong: Matrix,
}

impl InferenceScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread (input staging, scratch) pair backing the convenience
    /// single-row / row-slice prediction wrappers.
    static TLS_SCRATCH: RefCell<(Matrix, InferenceScratch)> = RefCell::new(Default::default());
}

/// Batched-inference abstraction over the f64 [`Mlp`] and the int8
/// [`QuantizedMlp`](crate::quant::QuantizedMlp): one matrix pass per layer
/// into a caller-owned [`InferenceScratch`]. Lets batching engines (e.g.
/// the serving layer's operator-grouped QPPNet path) run either
/// representation through identical plumbing.
pub trait BatchForward {
    /// Input dimensionality.
    fn input_dim(&self) -> usize;
    /// Output dimensionality.
    fn output_dim(&self) -> usize;
    /// Allocation-free batched forward pass; returns a borrow of the
    /// output matrix living inside `scratch` (one row per input row).
    fn forward_batch_into<'a>(&self, x: &Matrix, scratch: &'a mut InferenceScratch) -> &'a Matrix;
}

impl BatchForward for Mlp {
    fn input_dim(&self) -> usize {
        Mlp::input_dim(self)
    }

    fn output_dim(&self) -> usize {
        Mlp::output_dim(self)
    }

    fn forward_batch_into<'a>(&self, x: &Matrix, scratch: &'a mut InferenceScratch) -> &'a Matrix {
        self.predict_batch_into(x, scratch)
    }
}

/// A dense feed-forward network.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
    optimizer_state: Option<OptimizerState>,
}

impl Mlp {
    /// Create an MLP from a list of layer sizes (`[input, hidden..., output]`).
    /// Hidden layers use `hidden_activation`; the output layer is linear.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden_activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self::with_output_activation(sizes, hidden_activation, Activation::Identity, rng)
    }

    /// Create an MLP with an explicit output-layer activation (e.g. softplus
    /// to force positive latency predictions).
    pub fn with_output_activation<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least an input and an output size"
        );
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() {
                output_activation
            } else {
                hidden_activation
            };
            layers.push(DenseLayer::new(sizes[i], sizes[i + 1], act, rng));
        }
        Mlp {
            layers,
            optimizer_state: None,
        }
    }

    /// Build an MLP directly from explicit layers (used to reproduce the
    /// worked example of Figure 4 in the paper and in tests).
    pub fn from_layers(layers: Vec<DenseLayer>) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_dim(),
                pair[1].input_dim(),
                "consecutive layer dimensions must agree"
            );
        }
        Mlp {
            layers,
            optimizer_state: None,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Borrow the layers (read-only).
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Stateful forward pass over a batch (caches per-layer state internally).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Pure inference over a batch.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward_inference(&cur);
        }
        cur
    }

    /// Allocation-free batched inference: one matrix pass per layer, every
    /// intermediate written into the caller-owned `scratch`. Returns a
    /// borrow of the output matrix living inside the scratch (one row per
    /// input row). Results are bit-identical to [`Mlp::predict`].
    pub fn predict_batch_into<'a>(
        &self,
        x: &Matrix,
        scratch: &'a mut InferenceScratch,
    ) -> &'a Matrix {
        let InferenceScratch { ping, pong } = scratch;
        let mut src: &mut Matrix = ping;
        let mut dst: &mut Matrix = pong;
        let (first, rest) = self.layers.split_first().expect("non-empty");
        first.forward_inference_into(x, src);
        for layer in rest {
            layer.forward_inference_into(src, dst);
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }

    /// Predict a scalar for a single feature vector (first output unit).
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        TLS_SCRATCH.with(|cell| {
            let (input, scratch) = &mut *cell.borrow_mut();
            input.reset_from_row(features);
            self.predict_batch_into(input, scratch).get(0, 0)
        })
    }

    /// Predict the full output vector for a single feature vector.
    pub fn predict_vec(&self, features: &[f64]) -> Vec<f64> {
        TLS_SCRATCH.with(|cell| {
            let (input, scratch) = &mut *cell.borrow_mut();
            input.reset_from_row(features);
            self.predict_batch_into(input, scratch).row(0).to_vec()
        })
    }

    /// Predict scalars (first output unit) for a slice of feature rows in
    /// one batched pass through the thread-local scratch.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        TLS_SCRATCH.with(|cell| {
            let (input, scratch) = &mut *cell.borrow_mut();
            input.reset(rows.len(), rows[0].len());
            for (r, row) in rows.iter().enumerate() {
                input.row_mut(r).copy_from_slice(row);
            }
            let out = self.predict_batch_into(input, scratch);
            (0..out.rows()).map(|r| out.get(r, 0)).collect()
        })
    }

    /// Predict scalars (first output unit) for every row of a dataset.
    /// Uses a local scratch: this one-shot whole-dataset path would
    /// otherwise pin dataset-sized buffers in the thread-local for the
    /// thread's remaining lifetime.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        let mut scratch = InferenceScratch::new();
        let out = self.predict_batch_into(&data.feature_matrix(), &mut scratch);
        (0..out.rows()).map(|r| out.get(r, 0)).collect()
    }

    /// Backward pass matching the most recent [`Mlp::forward`] call.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Functional forward pass returning the cache needed for
    /// [`Mlp::backward_cached`]; does not disturb internal layer caches.
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            inputs.push(cur.clone());
            let (pre, out) = layer.forward_explicit(&cur);
            pre_activations.push(pre);
            cur = out;
        }
        (
            cur,
            MlpCache {
                inputs,
                pre_activations,
            },
        )
    }

    /// Functional backward pass for a prior [`Mlp::forward_cached`] call.
    /// Accumulates parameter gradients and returns the gradient with respect
    /// to the network input.
    pub fn backward_cached(&mut self, cache: &MlpCache, grad_output: &Matrix) -> Matrix {
        assert_eq!(
            cache.inputs.len(),
            self.layers.len(),
            "cache/layer count mismatch"
        );
        let mut grad = grad_output.clone();
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward_explicit(&cache.inputs[idx], &cache.pre_activations[idx], &grad);
        }
        grad
    }

    /// Zero all accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Apply one optimizer step using the accumulated gradients, then clear
    /// them. Optimizer state is kept inside the MLP across calls.
    pub fn step(&mut self, optimizer: &Optimizer) {
        if self.optimizer_state.is_none() {
            self.optimizer_state = Some(OptimizerState::for_layers(&self.layers));
        }
        let state = self.optimizer_state.as_mut().expect("just initialised");
        state.apply(optimizer, &mut self.layers);
    }

    /// Reset any optimizer state (used when re-training from scratch).
    pub fn reset_optimizer(&mut self) {
        self.optimizer_state = None;
    }

    /// Gradient of the first output unit with respect to the input features,
    /// evaluated at a single point. This is the quantity the paper's gradient
    /// feature-reduction baseline averages over the dataset.
    pub fn input_gradient(&self, features: &[f64]) -> Vec<f64> {
        let x = Matrix::row_vector(features);
        let (out, cache) = self.forward_cached(&x);
        // Seed gradient: 1 on the first output unit.
        let mut seed = Matrix::zeros(1, out.cols());
        seed.set(0, 0, 1.0);
        // Backward without touching parameter gradients: use a scratch clone.
        let mut scratch = self.clone();
        scratch.zero_grad();
        let grad = scratch.backward_cached(&cache, &seed);
        grad.row(0).to_vec()
    }

    /// All layer activations (post-activation outputs) for a single input,
    /// in order from the first hidden layer to the output layer. Needed by
    /// the difference-propagation importance score (Equation 1).
    pub fn layer_activations(&self, features: &[f64]) -> Vec<Vec<f64>> {
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut cur = Matrix::row_vector(features);
        for layer in &self.layers {
            cur = layer.forward_inference(&cur);
            outs.push(cur.row(0).to_vec());
        }
        outs
    }

    /// Activations of the first hidden layer for a single input.
    pub fn first_hidden_activations(&self, features: &[f64]) -> Vec<f64> {
        self.layers[0]
            .forward_inference(&Matrix::row_vector(features))
            .row(0)
            .to_vec()
    }

    /// Mean loss over a dataset (scalar-output networks only).
    pub fn evaluate_loss(&self, data: &Dataset, loss: Loss) -> f64 {
        let preds = self.predict_batch(data);
        loss.value(&preds, data.targets())
    }

    /// Flat mini-batch training loop for scalar-output networks.
    ///
    /// # Panics
    /// Panics if the network output dimension is not 1 or the dataset
    /// dimensionality does not match the input layer.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        data: &Dataset,
        config: &TrainConfig,
        rng: &mut R,
    ) -> TrainHistory {
        assert_eq!(
            self.output_dim(),
            1,
            "train() requires a scalar-output network"
        );
        assert_eq!(
            data.dim(),
            self.input_dim(),
            "dataset dim {} does not match network input dim {}",
            data.dim(),
            self.input_dim()
        );
        let start = Instant::now();
        let mut working = data.clone();
        let mut epoch_losses = Vec::with_capacity(config.epochs);

        for _ in 0..config.epochs {
            if config.shuffle {
                working.shuffle(rng);
            }
            let mut epoch_loss = 0.0;
            let mut batches_seen = 0usize;
            for (x, y) in working.batches(config.batch_size) {
                let out = self.forward(&x);
                let preds: Vec<f64> = (0..out.rows()).map(|r| out.get(r, 0)).collect();
                epoch_loss += config.loss.value(&preds, &y);
                batches_seen += 1;
                let grads = config.loss.gradient(&preds, &y);
                let grad_out = Matrix::col_vector(&grads);
                self.backward(&grad_out);
                self.step(&config.optimizer);
            }
            epoch_losses.push(epoch_loss / batches_seen.max(1) as f64);
        }

        TrainHistory {
            epoch_losses,
            wall_time: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn architecture_accessors() {
        let mut r = rng();
        let mlp = Mlp::new(&[5, 8, 3, 1], Activation::Relu, &mut r);
        assert_eq!(mlp.input_dim(), 5);
        assert_eq!(mlp.output_dim(), 1);
        assert_eq!(mlp.layer_count(), 3);
        assert_eq!(mlp.parameter_count(), 5 * 8 + 8 + 8 * 3 + 3 + 3 + 1);
    }

    #[test]
    #[should_panic(expected = "at least an input and an output")]
    fn too_few_sizes_panics() {
        let mut r = rng();
        let _ = Mlp::new(&[4], Activation::Relu, &mut r);
    }

    #[test]
    fn forward_and_predict_agree() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, &mut r);
        let x = Matrix::from_rows(&[vec![0.1, 0.2, 0.3], vec![-0.5, 0.4, 0.0]]);
        let a = mlp.forward(&x);
        let b = mlp.predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn learns_a_linear_function() {
        let mut r = rng();
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 / 20.0, (i / 20) as f64 / 10.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x[0] - 2.0 * x[1] + 1.0).collect();
        let data = Dataset::new(xs, ys).unwrap();
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::Relu, &mut r);
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 32,
            optimizer: Optimizer::adam(0.01),
            loss: Loss::Mse,
            shuffle: true,
        };
        let hist = mlp.train(&data, &cfg, &mut r);
        assert!(hist.final_loss() < 0.05, "final loss {}", hist.final_loss());
        assert!(hist.epoch_losses[0] > hist.final_loss());
        let pred = mlp.predict_one(&[0.5, 0.5]);
        assert!((pred - 2.0).abs() < 0.4, "pred {pred}");
    }

    #[test]
    fn predict_batch_into_is_bit_identical_to_predict() {
        let mut r = rng();
        let mlp = Mlp::new(&[4, 9, 5, 2], Activation::Relu, &mut r);
        let x = Matrix::from_rows(&[
            vec![0.1, -0.2, 0.3, 0.7],
            vec![1.5, 0.0, -0.4, 0.2],
            vec![-1.0, 2.0, 0.5, 0.0],
        ]);
        let mut scratch = InferenceScratch::new();
        let batched = mlp.predict_batch_into(&x, &mut scratch).clone();
        assert_eq!(batched, mlp.predict(&x));
        // Reusing the scratch across calls and batch sizes stays exact.
        let y = Matrix::from_rows(&[vec![0.9, 0.9, 0.9, 0.9]]);
        assert_eq!(*mlp.predict_batch_into(&y, &mut scratch), mlp.predict(&y));
    }

    #[test]
    fn scratch_is_shareable_across_network_shapes() {
        let mut r = rng();
        let a = Mlp::new(&[3, 8, 1], Activation::Tanh, &mut r);
        let b = Mlp::new(&[6, 4, 4, 2], Activation::Relu, &mut r);
        let xa = Matrix::from_rows(&[vec![0.1, 0.2, 0.3]]);
        let xb = Matrix::from_rows(&[vec![0.5; 6], vec![-0.5; 6]]);
        let mut scratch = InferenceScratch::new();
        assert_eq!(*a.predict_batch_into(&xa, &mut scratch), a.predict(&xa));
        assert_eq!(*b.predict_batch_into(&xb, &mut scratch), b.predict(&xb));
        assert_eq!(*a.predict_batch_into(&xa, &mut scratch), a.predict(&xa));
    }

    #[test]
    fn predict_rows_matches_per_row_prediction() {
        let mut r = rng();
        let mlp = Mlp::new(&[5, 12, 1], Activation::Relu, &mut r);
        let rows: Vec<Vec<f64>> = (0..32)
            .map(|i| (0..5).map(|j| ((i * 5 + j) as f64).sin()).collect())
            .collect();
        let batched = mlp.predict_rows(&rows);
        assert_eq!(batched.len(), rows.len());
        for (row, b) in rows.iter().zip(&batched) {
            assert_eq!(mlp.predict_one(row).to_bits(), b.to_bits());
        }
        assert!(mlp.predict_rows(&[]).is_empty());
    }

    #[test]
    fn cached_and_stateful_backward_agree() {
        let mut r = rng();
        let mut a = Mlp::new(&[4, 6, 1], Activation::Relu, &mut r);
        let mut b = a.clone();
        let x = Matrix::from_rows(&[vec![0.3, -0.2, 0.8, 0.1]]);
        let grad_out = Matrix::from_rows(&[vec![1.0]]);

        let _ = a.forward(&x);
        let ga = a.backward(&grad_out);

        let (_, cache) = b.forward_cached(&x);
        let gb = b.backward_cached(&cache, &grad_out);
        assert_eq!(ga, gb);
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            assert_eq!(la.grad_weights(), lb.grad_weights());
            assert_eq!(la.grad_biases(), lb.grad_biases());
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut r = rng();
        // tanh avoids the non-differentiable kink of ReLU at 0
        let mlp = Mlp::new(&[3, 8, 1], Activation::Tanh, &mut r);
        let x = [0.37, -0.8, 0.12];
        let analytic = mlp.input_gradient(&x);
        let numeric = gradcheck::numeric_input_gradient(&mlp, &x, 1e-5);
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-5, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn input_gradient_does_not_change_parameters() {
        let mut r = rng();
        let mlp = Mlp::new(&[3, 4, 1], Activation::Relu, &mut r);
        let before: Vec<f64> = mlp.layers()[0].weights().as_slice().to_vec();
        let _ = mlp.input_gradient(&[0.1, 0.2, 0.3]);
        let after: Vec<f64> = mlp.layers()[0].weights().as_slice().to_vec();
        assert_eq!(before, after);
    }

    #[test]
    fn layer_activations_shapes_match_architecture() {
        let mut r = rng();
        let mlp = Mlp::new(&[3, 7, 5, 1], Activation::Relu, &mut r);
        let acts = mlp.layer_activations(&[0.1, 0.2, 0.3]);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts[0].len(), 7);
        assert_eq!(acts[1].len(), 5);
        assert_eq!(acts[2].len(), 1);
        assert_eq!(mlp.first_hidden_activations(&[0.1, 0.2, 0.3]), acts[0]);
    }

    #[test]
    fn figure4_worked_example_reproduces_paper_numbers() {
        // The learned model of Figure 4(b): h1 = relu(-3*x1 + x2 + 6*x3 - x4 + 5),
        // h2 = relu(x1 + 2*x2 + x4 + 1), y = 2*h1 + h2.
        let l1 = DenseLayer::with_parameters(
            Matrix::from_vec(4, 2, vec![-3.0, 1.0, 1.0, 2.0, 6.0, 0.0, -1.0, 1.0]),
            vec![5.0, 1.0],
            Activation::Relu,
        );
        let l2 = DenseLayer::with_parameters(
            Matrix::from_vec(2, 1, vec![2.0, 1.0]),
            vec![0.0],
            Activation::Identity,
        );
        let mlp = Mlp::from_layers(vec![l1, l2]);
        // The paper states the gradient of [1,0,0,50] and [0,1,0,100] is zero
        // (dead ReLU on h1): check h1 saturates for the first input.
        let acts = mlp.layer_activations(&[1.0, 0.0, 0.0, 50.0]);
        assert_eq!(acts[0][0], 0.0, "h1 must be clipped to zero");
        let grad = mlp.input_gradient(&[1.0, 0.0, 0.0, 50.0]);
        // dy/dx1 via h1 is zero; only h2 contributes: dy/dx1 = 1*1 = 1
        assert_eq!(grad[2], 0.0, "x3 only feeds h1, so its gradient vanishes");
        // And the model output for the reference point [1,0,0,1]:
        // h1 = relu(-3+ -1 + 5) = 1, h2 = relu(1 + 1 + 1) = 3, y = 2*1+3 = 5... the
        // paper's absolute numbers differ because it uses unspecified weights, but
        // the qualitative vanishing-gradient behaviour is what matters here.
        assert!(mlp.predict_one(&[1.0, 0.0, 0.0, 1.0]) > 0.0);
    }

    #[test]
    fn evaluate_loss_is_zero_for_memorised_constant() {
        let mut r = rng();
        let data = Dataset::new(vec![vec![1.0], vec![1.0]], vec![0.0, 0.0]).unwrap();
        let mut mlp = Mlp::new(&[1, 4, 1], Activation::Relu, &mut r);
        let cfg = TrainConfig {
            epochs: 200,
            loss: Loss::Mse,
            ..Default::default()
        };
        mlp.train(&data, &cfg, &mut r);
        assert!(mlp.evaluate_loss(&data, Loss::Mse) < 1e-3);
    }

    #[test]
    fn train_rejects_mismatched_dataset() {
        let mut r = rng();
        let data = Dataset::new(vec![vec![1.0, 2.0]], vec![0.0]).unwrap();
        let mut mlp = Mlp::new(&[3, 4, 1], Activation::Relu, &mut r);
        let cfg = TrainConfig::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mlp.train(&data, &cfg, &mut r);
        }));
        assert!(result.is_err());
    }
}

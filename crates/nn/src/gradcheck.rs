//! Finite-difference gradient checking helpers.
//!
//! Used by the test-suites of this crate and of `qcfe-core` to validate that
//! analytic gradients (backprop and input gradients) match numerical
//! derivatives — an essential guard given that the paper's GD baseline and
//! the difference-propagation scores both depend on these quantities.

use crate::mlp::Mlp;

/// Numerically estimate the gradient of the first output unit of `mlp` with
/// respect to each input feature using central differences.
pub fn numeric_input_gradient(mlp: &Mlp, features: &[f64], epsilon: f64) -> Vec<f64> {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let mut grad = Vec::with_capacity(features.len());
    let mut probe = features.to_vec();
    for i in 0..features.len() {
        let original = probe[i];
        probe[i] = original + epsilon;
        let plus = mlp.predict_one(&probe);
        probe[i] = original - epsilon;
        let minus = mlp.predict_one(&probe);
        probe[i] = original;
        grad.push((plus - minus) / (2.0 * epsilon));
    }
    grad
}

/// Relative error between two gradient vectors, defined as
/// `max_i |a_i - b_i| / max(1, max_i |a_i|, max_i |b_i|)`.
pub fn relative_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "gradient vectors must have equal length");
    let max_diff = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max);
    let scale = a.iter().chain(b).map(|v| v.abs()).fold(1.0_f64, f64::max);
    max_diff / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::Mlp;
    use rand::SeedableRng;

    #[test]
    fn relative_error_of_identical_vectors_is_zero() {
        assert_eq!(relative_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn relative_error_is_scale_invariant_denominator() {
        let e = relative_error(&[1000.0], &[1001.0]);
        assert!(e < 0.01);
        let e = relative_error(&[0.0], &[0.5]);
        assert_eq!(e, 0.5);
    }

    #[test]
    fn numeric_gradient_of_smooth_network_is_close_to_analytic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mlp = Mlp::new(&[4, 10, 6, 1], Activation::Sigmoid, &mut rng);
        let x = [0.2, -0.4, 0.9, 0.05];
        let analytic = mlp.input_gradient(&x);
        let numeric = numeric_input_gradient(&mlp, &x, 1e-5);
        assert!(relative_error(&analytic, &numeric) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mlp = Mlp::new(&[2, 2, 1], Activation::Relu, &mut rng);
        let _ = numeric_input_gradient(&mlp, &[0.0, 0.0], 0.0);
    }
}

//! Loss functions for scalar-output regression models.
//!
//! Query cost spans several orders of magnitude, so besides the plain MSE the
//! crate offers a log-space MSE (`LogMse`) which is the loss actually used by
//! the QPPNet/MSCN reimplementations: minimising squared error between
//! `ln(1 + predicted)` and `ln(1 + actual)` closely tracks the q-error metric
//! reported by the paper.

use serde::{Deserialize, Serialize};

/// Supported scalar regression losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error in linear space.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Mean squared error between `ln(1 + pred)` and `ln(1 + actual)`.
    LogMse,
    /// Huber loss with delta = 1.0.
    Huber,
}

impl Loss {
    /// Loss value for a batch of (prediction, target) pairs.
    pub fn value(&self, predictions: &[f64], targets: &[f64]) -> f64 {
        assert_eq!(predictions.len(), targets.len(), "loss: length mismatch");
        if predictions.is_empty() {
            return 0.0;
        }
        let n = predictions.len() as f64;
        match self {
            Loss::Mse => {
                predictions
                    .iter()
                    .zip(targets)
                    .map(|(p, t)| (p - t).powi(2))
                    .sum::<f64>()
                    / n
            }
            Loss::Mae => {
                predictions
                    .iter()
                    .zip(targets)
                    .map(|(p, t)| (p - t).abs())
                    .sum::<f64>()
                    / n
            }
            Loss::LogMse => {
                predictions
                    .iter()
                    .zip(targets)
                    .map(|(p, t)| (log1p_clamped(*p) - log1p_clamped(*t)).powi(2))
                    .sum::<f64>()
                    / n
            }
            Loss::Huber => {
                predictions
                    .iter()
                    .zip(targets)
                    .map(|(p, t)| {
                        let d = (p - t).abs();
                        if d <= 1.0 {
                            0.5 * d * d
                        } else {
                            d - 0.5
                        }
                    })
                    .sum::<f64>()
                    / n
            }
        }
    }

    /// Per-sample gradient `dL/dprediction` (already divided by the batch size).
    pub fn gradient(&self, predictions: &[f64], targets: &[f64]) -> Vec<f64> {
        assert_eq!(
            predictions.len(),
            targets.len(),
            "loss gradient: length mismatch"
        );
        let n = predictions.len().max(1) as f64;
        match self {
            Loss::Mse => predictions
                .iter()
                .zip(targets)
                .map(|(p, t)| 2.0 * (p - t) / n)
                .collect(),
            Loss::Mae => predictions
                .iter()
                .zip(targets)
                .map(|(p, t)| {
                    let d = p - t;
                    if d == 0.0 {
                        0.0
                    } else {
                        d.signum() / n
                    }
                })
                .collect(),
            Loss::LogMse => predictions
                .iter()
                .zip(targets)
                .map(|(p, t)| {
                    let lp = log1p_clamped(*p);
                    let lt = log1p_clamped(*t);
                    // d/dp (lp - lt)^2 = 2 (lp - lt) * 1/(1 + max(p, 0))
                    2.0 * (lp - lt) / (1.0 + p.max(0.0)) / n
                })
                .collect(),
            Loss::Huber => predictions
                .iter()
                .zip(targets)
                .map(|(p, t)| {
                    let d = p - t;
                    if d.abs() <= 1.0 {
                        d / n
                    } else {
                        d.signum() / n
                    }
                })
                .collect(),
        }
    }
}

/// `ln(1 + max(x, 0))`, guarding against negative intermediate predictions.
#[inline]
fn log1p_clamped(x: f64) -> f64 {
    (1.0 + x.max(0.0)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_value_and_gradient() {
        let preds = vec![1.0, 2.0];
        let targets = vec![0.0, 4.0];
        assert!((Loss::Mse.value(&preds, &targets) - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        let g = Loss::Mse.gradient(&preds, &targets);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn mae_is_scale_of_absolute_errors() {
        let preds = vec![3.0, -1.0];
        let targets = vec![1.0, 1.0];
        assert!((Loss::Mae.value(&preds, &targets) - 2.0).abs() < 1e-12);
        let g = Loss::Mae.gradient(&preds, &targets);
        assert_eq!(g, vec![0.5, -0.5]);
    }

    #[test]
    fn perfect_predictions_give_zero_loss() {
        let v = vec![1.5, 200.0, 0.01];
        for loss in [Loss::Mse, Loss::Mae, Loss::LogMse, Loss::Huber] {
            assert_eq!(loss.value(&v, &v), 0.0, "{loss:?}");
            assert!(loss.gradient(&v, &v).iter().all(|g| g.abs() < 1e-12));
        }
    }

    #[test]
    fn logmse_compresses_large_errors() {
        let preds = vec![10_000.0];
        let targets = vec![1_000.0];
        let lin = Loss::Mse.value(&preds, &targets);
        let log = Loss::LogMse.value(&preds, &targets);
        assert!(
            log < lin,
            "log-space loss must be far smaller for large costs"
        );
        assert!(log > 0.0);
    }

    #[test]
    fn logmse_gradient_sign_matches_error_direction() {
        let g_over = Loss::LogMse.gradient(&[100.0], &[10.0]);
        assert!(
            g_over[0] > 0.0,
            "over-prediction should push the output down"
        );
        let g_under = Loss::LogMse.gradient(&[10.0], &[100.0]);
        assert!(
            g_under[0] < 0.0,
            "under-prediction should push the output up"
        );
    }

    #[test]
    fn huber_is_quadratic_near_zero_and_linear_far_away() {
        assert!((Loss::Huber.value(&[0.5], &[0.0]) - 0.125).abs() < 1e-12);
        assert!((Loss::Huber.value(&[3.0], &[0.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_zero_loss() {
        assert_eq!(Loss::Mse.value(&[], &[]), 0.0);
        assert!(Loss::Mse.gradient(&[], &[]).is_empty());
    }
}

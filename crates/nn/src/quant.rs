//! Opt-in int8 quantized inference for trained MLPs.
//!
//! A [`QuantizedDenseLayer`] stores its weight matrix as `i8` with one
//! symmetric scale (and a zero-point, always 0 when produced by
//! [`QuantizedDenseLayer::quantize`] but carried in the representation and
//! the `QCFW` v2 record for forward compatibility); biases and activations
//! stay `f64`. Quantization happens **at publish time** — training always
//! runs in f64, and a quantized network is inference-only.
//!
//! The forward pass accumulates `Σ input[i][p] * q[p][j]` in f64 through
//! the same pluggable kernel layer as the f64 path
//! ([`crate::kernel::matmul_i8`]), then applies the per-layer scale, bias
//! and activation in one fused pass over the output rows:
//!
//! ```text
//! y[i][j] = act( scale * (Σ_p x[i][p] * (q[p][j] - zp)) + bias[j] )
//! ```
//!
//! Accuracy model: symmetric round-to-nearest with `scale = max|w| / 127`
//! bounds the per-weight error by `scale / 2`, i.e. a relative resolution
//! of roughly 0.4% of the largest weight per layer. On the paper's
//! estimator workloads this keeps the mean q-error within a fraction of a
//! percent of the f64 model (asserted by the test suite and the
//! `serve_throughput` kernel sweep); the win is a 8× smaller weight
//! footprint, which keeps whole per-operator unit sets cache-resident
//! during batched serving.

use crate::activation::Activation;
use crate::kernel;
use crate::layer::DenseLayer;
use crate::matrix::Matrix;
use crate::mlp::{BatchForward, InferenceScratch, Mlp};
use std::cell::RefCell;

/// An inference-only dense layer with int8 weights.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDenseLayer {
    weights_q: Vec<i8>,
    input_dim: usize,
    output_dim: usize,
    scale: f64,
    zero_point: i8,
    biases: Vec<f64>,
    activation: Activation,
}

impl QuantizedDenseLayer {
    /// Quantize a trained f64 layer: symmetric scale `max|w| / 127`
    /// (1.0 for an all-zero weight matrix), round-to-nearest, zero-point 0.
    pub fn quantize(layer: &DenseLayer) -> Self {
        let weights = layer.weights();
        let max_abs = weights.max_abs();
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let weights_q = weights
            .as_slice()
            .iter()
            .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedDenseLayer {
            weights_q,
            input_dim: weights.rows(),
            output_dim: weights.cols(),
            scale,
            zero_point: 0,
            biases: layer.biases().to_vec(),
            activation: layer.activation(),
        }
    }

    /// Assemble a layer from already-quantized parts (codec decode path).
    ///
    /// # Panics
    /// Panics on inconsistent dimensions or a non-finite / non-positive
    /// scale; the codec validates before calling this.
    pub fn from_parts(
        input_dim: usize,
        output_dim: usize,
        scale: f64,
        zero_point: i8,
        weights_q: Vec<i8>,
        biases: Vec<f64>,
        activation: Activation,
    ) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "zero layer dimension");
        assert_eq!(weights_q.len(), input_dim * output_dim, "weight count");
        assert_eq!(biases.len(), output_dim, "bias count");
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive"
        );
        QuantizedDenseLayer {
            weights_q,
            input_dim,
            output_dim,
            scale,
            zero_point,
            biases,
            activation,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Per-layer symmetric quantization scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantization zero-point (0 for layers produced by
    /// [`QuantizedDenseLayer::quantize`]).
    pub fn zero_point(&self) -> i8 {
        self.zero_point
    }

    /// Row-major int8 weights (`input_dim × output_dim`).
    pub fn weights_q(&self) -> &[i8] {
        &self.weights_q
    }

    /// Bias vector (still f64).
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Activation applied after the affine transform.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The effective f64 weight this layer computes with:
    /// `scale * (q - zero_point)`.
    pub fn dequantized_weight(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.input_dim && c < self.output_dim);
        self.scale * (self.weights_q[r * self.output_dim + c] as f64 - self.zero_point as f64)
    }

    /// Batched inference into a caller-owned output matrix: int8 matmul
    /// through the active kernel, then a fused scale + bias + activation
    /// pass per row.
    ///
    /// # Panics
    /// Panics if `input.cols() != input_dim`.
    pub fn forward_inference_into(&self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(
            input.cols(),
            self.input_dim,
            "quantized forward: input dim mismatch"
        );
        let rows = input.rows();
        out.reset(rows, self.output_dim);
        kernel::matmul_i8(
            input.as_slice(),
            rows,
            self.input_dim,
            &self.weights_q,
            self.output_dim,
            out.as_mut_slice(),
        );
        let scale = self.scale;
        if self.zero_point == 0 {
            for r in 0..rows {
                for (v, &b) in out.row_mut(r).iter_mut().zip(self.biases.iter()) {
                    *v = self.activation.apply(*v * scale + b);
                }
            }
        } else {
            // General zero-point: Σ x*(q - zp) = Σ x*q − zp·Σ x, so one row
            // sum corrects the whole output row.
            let zp = self.zero_point as f64;
            for r in 0..rows {
                let row_sum: f64 = input.row(r).iter().sum();
                for (v, &b) in out.row_mut(r).iter_mut().zip(self.biases.iter()) {
                    *v = self.activation.apply((*v - zp * row_sum) * scale + b);
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread staging for the convenience wrappers (the f64 `Mlp` has
    /// its own; sharing would alias borrows when mixing representations on
    /// one thread).
    static TLS_SCRATCH_Q: RefCell<(Matrix, InferenceScratch)> = RefCell::new(Default::default());
}

/// An inference-only MLP whose layers carry int8 weights.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDenseLayer>,
}

impl QuantizedMlp {
    /// Quantize every layer of a trained f64 network.
    pub fn quantize(mlp: &Mlp) -> Self {
        QuantizedMlp {
            layers: mlp
                .layers()
                .iter()
                .map(QuantizedDenseLayer::quantize)
                .collect(),
        }
    }

    /// Build from explicit quantized layers (codec decode path).
    ///
    /// # Panics
    /// Panics if the list is empty or consecutive dimensions disagree.
    pub fn from_layers(layers: Vec<QuantizedDenseLayer>) -> Self {
        assert!(
            !layers.is_empty(),
            "a quantized MLP needs at least one layer"
        );
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_dim(),
                pair[1].input_dim(),
                "consecutive layer dimensions must agree"
            );
        }
        QuantizedMlp { layers }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Borrow the layers (read-only).
    pub fn layers(&self) -> &[QuantizedDenseLayer] {
        &self.layers
    }

    /// Allocation-free batched inference, mirroring
    /// [`Mlp::predict_batch_into`].
    pub fn predict_batch_into<'a>(
        &self,
        x: &Matrix,
        scratch: &'a mut InferenceScratch,
    ) -> &'a Matrix {
        let InferenceScratch { ping, pong } = scratch;
        let mut src: &mut Matrix = ping;
        let mut dst: &mut Matrix = pong;
        let (first, rest) = self.layers.split_first().expect("non-empty");
        first.forward_inference_into(x, src);
        for layer in rest {
            layer.forward_inference_into(src, dst);
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }

    /// Predict a scalar for a single feature vector (first output unit).
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        TLS_SCRATCH_Q.with(|cell| {
            let (input, scratch) = &mut *cell.borrow_mut();
            input.reset_from_row(features);
            self.predict_batch_into(input, scratch).get(0, 0)
        })
    }

    /// Predict scalars (first output unit) for a slice of feature rows in
    /// one batched pass through the thread-local scratch.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        TLS_SCRATCH_Q.with(|cell| {
            let (input, scratch) = &mut *cell.borrow_mut();
            input.reset(rows.len(), rows[0].len());
            for (r, row) in rows.iter().enumerate() {
                input.row_mut(r).copy_from_slice(row);
            }
            let out = self.predict_batch_into(input, scratch);
            (0..out.rows()).map(|r| out.get(r, 0)).collect()
        })
    }
}

impl BatchForward for QuantizedMlp {
    fn input_dim(&self) -> usize {
        QuantizedMlp::input_dim(self)
    }

    fn output_dim(&self) -> usize {
        QuantizedMlp::output_dim(self)
    }

    fn forward_batch_into<'a>(&self, x: &Matrix, scratch: &'a mut InferenceScratch) -> &'a Matrix {
        self.predict_batch_into(x, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn quantize_round_trip_error_is_bounded_by_half_scale() {
        let mut r = rng();
        for _ in 0..50 {
            let rows = r.gen_range(1usize..10);
            let cols = r.gen_range(1usize..10);
            let data: Vec<f64> = (0..rows * cols).map(|_| r.gen_range(-3.0..3.0)).collect();
            let layer = DenseLayer::with_parameters(
                Matrix::from_vec(rows, cols, data.clone()),
                vec![0.0; cols],
                Activation::Identity,
            );
            let q = QuantizedDenseLayer::quantize(&layer);
            let bound = q.scale() / 2.0 + 1e-12;
            for rr in 0..rows {
                for cc in 0..cols {
                    let w = data[rr * cols + cc];
                    let dq = q.dequantized_weight(rr, cc);
                    assert!(
                        (w - dq).abs() <= bound,
                        "w {w} dequantized {dq} scale {}",
                        q.scale()
                    );
                }
            }
        }
    }

    #[test]
    fn all_zero_layer_quantizes_cleanly() {
        let layer =
            DenseLayer::with_parameters(Matrix::zeros(3, 2), vec![0.5, -0.5], Activation::Relu);
        let q = QuantizedDenseLayer::quantize(&layer);
        assert_eq!(q.scale(), 1.0);
        assert!(q.weights_q().iter().all(|&v| v == 0));
        let pred = {
            let mut out = Matrix::default();
            q.forward_inference_into(&Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]), &mut out);
            out.row(0).to_vec()
        };
        assert_eq!(pred, vec![0.5, 0.0]);
    }

    #[test]
    fn quantized_mlp_tracks_f64_network_closely() {
        let mut r = rng();
        let mlp = Mlp::new(&[6, 16, 8, 1], Activation::Relu, &mut r);
        let q = QuantizedMlp::quantize(&mlp);
        assert_eq!(q.input_dim(), 6);
        assert_eq!(q.output_dim(), 1);
        assert_eq!(q.layer_count(), 3);
        let mut max_dev = 0.0f64;
        let mut max_mag = 0.0f64;
        for i in 0..64 {
            let x: Vec<f64> = (0..6).map(|j| ((i * 6 + j) as f64 * 0.37).sin()).collect();
            let f = mlp.predict_one(&x);
            let qp = q.predict_one(&x);
            max_dev = max_dev.max((f - qp).abs());
            max_mag = max_mag.max(f.abs());
        }
        // int8 resolution is ~0.4% per weight; a 3-layer network stays
        // within a few percent of the output scale on smooth inputs.
        // (Pure relative error is meaningless where the output crosses 0.)
        assert!(max_mag > 0.0, "degenerate test network");
        assert!(
            max_dev < 0.05 * max_mag,
            "max deviation {max_dev} vs output scale {max_mag}"
        );
    }

    #[test]
    fn batched_and_single_row_quantized_predictions_are_bit_identical() {
        let mut r = rng();
        let mlp = Mlp::new(&[5, 12, 1], Activation::Relu, &mut r);
        let q = QuantizedMlp::quantize(&mlp);
        let rows: Vec<Vec<f64>> = (0..32)
            .map(|i| (0..5).map(|j| ((i * 5 + j) as f64).cos()).collect())
            .collect();
        let batched = q.predict_rows(&rows);
        for (row, b) in rows.iter().zip(&batched) {
            assert_eq!(q.predict_one(row).to_bits(), b.to_bits());
        }
        assert!(q.predict_rows(&[]).is_empty());
    }

    #[test]
    fn nonzero_zero_point_is_corrected_exactly() {
        // Hand-build a layer with zp = 3 and check against the dequantized
        // dense reference.
        let weights_q = vec![5i8, -2, 7, 0, 3, -127];
        let q = QuantizedDenseLayer::from_parts(
            3,
            2,
            0.25,
            3,
            weights_q.clone(),
            vec![0.1, -0.2],
            Activation::Identity,
        );
        let x = vec![0.5, -1.5, 2.0];
        let mut out = Matrix::default();
        q.forward_inference_into(&Matrix::from_rows(std::slice::from_ref(&x)), &mut out);
        for c in 0..2 {
            let mut acc = 0.0;
            for (p, &xv) in x.iter().enumerate() {
                acc += xv * (weights_q[p * 2 + c] as f64 - 3.0);
            }
            let expect = acc * 0.25 + q.biases()[c];
            assert!((out.get(0, c) - expect).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be finite and positive")]
    fn from_parts_rejects_bad_scale() {
        let _ =
            QuantizedDenseLayer::from_parts(1, 1, 0.0, 0, vec![1], vec![0.0], Activation::Identity);
    }
}

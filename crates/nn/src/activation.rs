//! Activation functions used by the learned cost estimators.
//!
//! QPPNet's neural units use ReLU; MSCN uses ReLU in the set-embedding MLPs
//! and a sigmoid-free linear output head. The paper's motivation for
//! difference propagation (Section IV-B) is precisely that ReLU gradients can
//! vanish, so the exact derivative semantics here matter for reproducing the
//! GD-vs-FR comparison (Figure 6/7).

use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity / linear activation (used on output layers).
    Identity,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Leaky ReLU with a fixed 0.01 negative slope.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softplus, a smooth approximation of ReLU; useful for strictly
    /// positive cost outputs.
    Softplus,
}

impl Activation {
    /// Every supported activation, in the stable order the `QCFW` weight
    /// codec uses for its on-disk activation indices. Appending here is a
    /// compatible change; reordering requires a codec version bump.
    pub const ALL: [Activation; 6] = [
        Activation::Identity,
        Activation::Relu,
        Activation::LeakyRelu,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Softplus,
    ];

    /// Stable index of this activation in [`Activation::ALL`]. The
    /// exhaustive match forces any new variant to pick its codec index at
    /// compile time (and the codec tests assert it agrees with `ALL`).
    pub fn index(&self) -> usize {
        match self {
            Activation::Identity => 0,
            Activation::Relu => 1,
            Activation::LeakyRelu => 2,
            Activation::Sigmoid => 3,
            Activation::Tanh => 4,
            Activation::Softplus => 5,
        }
    }

    /// Inverse of [`Activation::index`]; `None` for out-of-range indices
    /// (e.g. from a corrupted or newer weight file).
    pub fn from_index(index: usize) -> Option<Activation> {
        Activation::ALL.get(index).copied()
    }

    /// Apply the activation to a single pre-activation value.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Softplus => {
                // Numerically stable softplus.
                if x > 30.0 {
                    x
                } else if x < -30.0 {
                    0.0
                } else {
                    (1.0 + x.exp()).ln()
                }
            }
        }
    }

    /// Derivative of the activation with respect to its pre-activation input.
    #[inline]
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::Softplus => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Whether the derivative can be exactly zero on a non-trivial input
    /// region (the "gradient vanishing" property that motivates difference
    /// propagation in the paper).
    pub fn can_saturate_to_zero(&self) -> bool {
        matches!(self, Activation::Relu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 6] = [
        Activation::Identity,
        Activation::Relu,
        Activation::LeakyRelu,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Softplus,
    ];

    #[test]
    fn relu_behaviour() {
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.derivative(3.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-3.0), 0.0);
        assert!(Activation::Relu.can_saturate_to_zero());
        assert!(!Activation::Sigmoid.can_saturate_to_zero());
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(10.0) > 0.9999);
        assert!(s.apply(-10.0) < 0.0001);
        // derivative peaks at 0 with value 0.25
        assert!((s.derivative(0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn softplus_is_stable_for_extreme_inputs() {
        let sp = Activation::Softplus;
        assert!(sp.apply(1000.0).is_finite());
        assert_eq!(sp.apply(1000.0), 1000.0);
        assert_eq!(sp.apply(-1000.0), 0.0);
        assert!(sp.derivative(1000.0) <= 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in ALL {
            for &x in &[-2.3, -0.7, -0.1, 0.1, 0.9, 2.5] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn identity_is_transparent() {
        for &x in &[-5.0, 0.0, 2.5] {
            assert_eq!(Activation::Identity.apply(x), x);
            assert_eq!(Activation::Identity.derivative(x), 1.0);
        }
    }
}

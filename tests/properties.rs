//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;
use qcfe::core::metrics::{pearson, percentile, q_error, q_errors};
use qcfe::core::snapshot::{FeatureSnapshot, OperatorSample};
use qcfe::db::plan::OperatorKind;
use qcfe::db::stats::ColumnStats;
use qcfe::db::data::ColumnVector;
use qcfe::db::expr::{ColumnRef, CompareOp, Predicate};
use qcfe::db::types::Value;
use qcfe::nn::{least_squares, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Q-error is symmetric, at least 1, and 1 exactly for perfect predictions.
    #[test]
    fn q_error_properties(actual in 0.001f64..1e6, predicted in 0.001f64..1e6) {
        let q = q_error(actual, predicted);
        prop_assert!(q >= 1.0 - 1e-12);
        prop_assert!((q - q_error(predicted, actual)).abs() < 1e-9);
        prop_assert!((q_error(actual, actual) - 1.0).abs() < 1e-12);
    }

    /// Pearson correlation is bounded by [-1, 1] and invariant to affine
    /// rescaling of the predictions.
    #[test]
    fn pearson_bounds_and_affine_invariance(values in prop::collection::vec(0.1f64..1e4, 3..40)) {
        let noisy: Vec<f64> = values.iter().enumerate().map(|(i, v)| v * (1.0 + 0.01 * (i % 5) as f64)).collect();
        let r = pearson(&values, &noisy);
        prop_assert!(r <= 1.0 + 1e-9 && r >= -1.0 - 1e-9);
        let rescaled: Vec<f64> = noisy.iter().map(|v| 3.0 * v + 10.0).collect();
        prop_assert!((pearson(&values, &noisy) - pearson(&values, &rescaled)).abs() < 1e-9);
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone(values in prop::collection::vec(0.0f64..1e5, 1..60)) {
        let p25 = percentile(&values, 25.0);
        let p50 = percentile(&values, 50.0);
        let p95 = percentile(&values, 95.0);
        prop_assert!(p25 <= p50 + 1e-9);
        prop_assert!(p50 <= p95 + 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p25 >= min - 1e-9 && p95 <= max + 1e-9);
    }

    /// Mean q-error of identical vectors is exactly 1.
    #[test]
    fn identical_predictions_have_unit_q_error(values in prop::collection::vec(0.01f64..1e4, 1..50)) {
        let qs = q_errors(&values, &values);
        prop_assert!(qs.iter().all(|q| (q - 1.0).abs() < 1e-9));
    }

    /// The feature snapshot recovers linear coefficients from noise-free
    /// operator samples for any positive slope/intercept.
    #[test]
    fn snapshot_recovers_linear_coefficients(c0 in 0.0001f64..0.1, c1 in 0.0f64..10.0) {
        let samples: Vec<OperatorSample> = (1..=40)
            .map(|i| {
                let n = (i * 25) as f64;
                OperatorSample { kind: OperatorKind::SeqScan, n1: n, n2: 0.0, self_ms: c0 * n + c1 }
            })
            .collect();
        let snap = FeatureSnapshot::fit(&samples);
        let c = snap.coefficients(OperatorKind::SeqScan);
        prop_assert!((c[0] - c0).abs() < 1e-6 * (1.0 + c0));
        prop_assert!((c[1] - c1).abs() < 1e-4 * (1.0 + c1));
    }

    /// Least squares reproduces exact solutions of well-conditioned systems.
    #[test]
    fn least_squares_exact_fit(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 1.0]).collect();
        let ys: Vec<f64> = (0..30).map(|i| a * i as f64 + b).collect();
        let beta = least_squares(&Matrix::from_rows(&xs), &ys).unwrap();
        prop_assert!((beta[0] - a).abs() < 1e-6);
        prop_assert!((beta[1] - b).abs() < 1e-6);
    }

    /// Histogram selectivity estimates of uniform integer columns track the
    /// true fraction within a loose tolerance.
    #[test]
    fn selectivity_tracks_truth_on_uniform_data(cutoff in 50i64..950) {
        let column = ColumnVector::Int((0..1000).collect());
        let stats = ColumnStats::analyze(&column);
        let pred = Predicate::Compare {
            column: ColumnRef::new("t", "c"),
            op: CompareOp::Lt,
            value: Value::Int(cutoff),
        };
        let est = stats.selectivity(&pred);
        let truth = cutoff as f64 / 1000.0;
        prop_assert!((est - truth).abs() < 0.08, "est {est} truth {truth}");
    }

    /// Predicate evaluation agrees with selection-bitmap counting.
    #[test]
    fn bitmap_count_matches_direct_evaluation(threshold in 0i64..100) {
        let column = ColumnVector::Int((0..100).collect());
        let pred = Predicate::Compare {
            column: ColumnRef::new("t", "c"),
            op: CompareOp::Ge,
            value: Value::Int(threshold),
        };
        let matches = column.evaluate(&pred).iter().filter(|b| **b).count() as i64;
        prop_assert_eq!(matches, 100 - threshold);
    }
}

//! Property-style tests over the core invariants of the reproduction.
//!
//! The original proptest harness is unavailable offline, so each property is
//! checked over a seeded random sample of its input domain (64 cases per
//! property, mirroring the old `ProptestConfig::with_cases(64)`).

use qcfe::core::metrics::{pearson, percentile, q_error, q_errors};
use qcfe::core::snapshot::{FeatureSnapshot, OperatorSample};
use qcfe::db::data::ColumnVector;
use qcfe::db::expr::{ColumnRef, CompareOp, Predicate};
use qcfe::db::plan::OperatorKind;
use qcfe::db::stats::ColumnStats;
use qcfe::db::types::Value;
use qcfe::nn::codec::WeightsCodecError;
use qcfe::nn::{least_squares, Activation, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

/// The `QCFW` weight-codec properties run many more cases: the acceptance
/// bar for model persistence is "any shape, any activation, bit-exact".
const QCFW_CASES: usize = 1000;

/// Q-error is symmetric, at least 1, and 1 exactly for perfect predictions.
#[test]
fn q_error_properties() {
    let mut rng = StdRng::seed_from_u64(0xA0);
    for _ in 0..CASES {
        let actual = rng.gen_range(0.001f64..1e6);
        let predicted = rng.gen_range(0.001f64..1e6);
        let q = q_error(actual, predicted);
        assert!(q >= 1.0 - 1e-12);
        assert!((q - q_error(predicted, actual)).abs() < 1e-9);
        assert!((q_error(actual, actual) - 1.0).abs() < 1e-12);
    }
}

/// Pearson correlation is bounded by [-1, 1] and invariant to affine
/// rescaling of the predictions.
#[test]
fn pearson_bounds_and_affine_invariance() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let n = rng.gen_range(3usize..40);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1f64..1e4)).collect();
        let noisy: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(i, v)| v * (1.0 + 0.01 * (i % 5) as f64))
            .collect();
        let r = pearson(&values, &noisy);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        let rescaled: Vec<f64> = noisy.iter().map(|v| 3.0 * v + 10.0).collect();
        assert!((pearson(&values, &noisy) - pearson(&values, &rescaled)).abs() < 1e-9);
    }
}

/// Percentiles are monotone in p and bounded by the extremes.
#[test]
fn percentile_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..60);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..1e5)).collect();
        let p25 = percentile(&values, 25.0);
        let p50 = percentile(&values, 50.0);
        let p95 = percentile(&values, 95.0);
        assert!(p25 <= p50 + 1e-9);
        assert!(p50 <= p95 + 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p25 >= min - 1e-9 && p95 <= max + 1e-9);
    }
}

/// Mean q-error of identical vectors is exactly 1.
#[test]
fn identical_predictions_have_unit_q_error() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..50);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01f64..1e4)).collect();
        let qs = q_errors(&values, &values);
        assert!(qs.iter().all(|q| (q - 1.0).abs() < 1e-9));
    }
}

/// The feature snapshot recovers linear coefficients from noise-free
/// operator samples for any positive slope/intercept.
#[test]
fn snapshot_recovers_linear_coefficients() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let c0 = rng.gen_range(0.0001f64..0.1);
        let c1 = rng.gen_range(0.0f64..10.0);
        let samples: Vec<OperatorSample> = (1..=40)
            .map(|i| {
                let n = (i * 25) as f64;
                OperatorSample {
                    kind: OperatorKind::SeqScan,
                    n1: n,
                    n2: 0.0,
                    self_ms: c0 * n + c1,
                }
            })
            .collect();
        let snap = FeatureSnapshot::fit(&samples);
        let c = snap.coefficients(OperatorKind::SeqScan);
        assert!(
            (c[0] - c0).abs() < 1e-6 * (1.0 + c0),
            "c0 {} vs {}",
            c[0],
            c0
        );
        assert!(
            (c[1] - c1).abs() < 1e-4 * (1.0 + c1),
            "c1 {} vs {}",
            c[1],
            c1
        );
    }
}

/// Draw a random fitted snapshot: 1–4 operator kinds, each with 4–40
/// samples following that operator's formula shape at random coefficients
/// (plus deterministic per-sample jitter so least squares has real work).
fn random_snapshot_samples(rng: &mut StdRng) -> Vec<OperatorSample> {
    let kind_count = rng.gen_range(1usize..=4);
    let mut samples = Vec::new();
    for _ in 0..kind_count {
        let kind = OperatorKind::ALL[rng.gen_range(0..OperatorKind::ALL.len())];
        let c0 = rng.gen_range(0.0001f64..0.05);
        let c1 = rng.gen_range(0.0f64..5.0);
        let count = rng.gen_range(4usize..=40);
        for i in 1..=count {
            let n1 = (i * rng.gen_range(5usize..50)) as f64;
            let n2 = if kind == OperatorKind::NestedLoop {
                (i * 7) as f64
            } else {
                0.0
            };
            let jitter = 1.0 + 0.01 * ((i % 7) as f64 - 3.0);
            samples.push(OperatorSample {
                kind,
                n1,
                n2,
                self_ms: (c0 * (n1 + n2) + c1) * jitter,
            });
        }
    }
    samples
}

/// Satellite acceptance (≥1000 seeded cases): `FeatureSnapshot` under
/// refinement — `fit(samples)` → `to_bytes` → `from_bytes` is bit-identical
/// (including the refined provenance bit), refitting a snapshot on the very
/// samples it was fitted from is idempotent on the coefficients, and
/// `relative_difference` is symmetric, non-negative and exactly zero on
/// self.
#[test]
fn snapshot_refit_and_codec_properties() {
    let mut rng = StdRng::seed_from_u64(0x05AF_EF17);
    for case in 0..QCFW_CASES {
        let samples = random_snapshot_samples(&mut rng);
        let mut snap = FeatureSnapshot::fit(&samples);
        snap.collection_cost_ms = rng.gen_range(0.0f64..1e6);

        // Codec round-trip: bit-identical, coefficient by coefficient.
        let back = FeatureSnapshot::from_bytes(&snap.to_bytes())
            .unwrap_or_else(|e| panic!("case {case}: valid buffer rejected: {e}"));
        assert_eq!(back, snap, "case {case}");
        assert!(!back.refined, "case {case}: fit output is unrefined");
        for (kind, coeffs) in snap.entries() {
            for (a, b) in coeffs.iter().zip(back.coefficients(kind).iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "case {case}: {kind:?} bits");
            }
        }

        // Refit idempotence: refitting on the fitting set keeps every
        // coefficient bit-stable and only flips the provenance bit — and
        // that bit survives its own codec round-trip.
        let refit = snap.refit_with(&samples);
        assert!(refit.refined, "case {case}");
        assert_eq!(refit.collection_cost_ms, snap.collection_cost_ms);
        assert_eq!(refit.entries().len(), snap.entries().len(), "case {case}");
        for (kind, coeffs) in snap.entries() {
            for (a, b) in coeffs.iter().zip(refit.coefficients(kind).iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "case {case}: {kind:?} refit");
            }
        }
        let refit_back = FeatureSnapshot::from_bytes(&refit.to_bytes())
            .unwrap_or_else(|e| panic!("case {case}: refit buffer rejected: {e}"));
        assert!(refit_back.refined, "case {case}: refined bit must persist");
        assert_eq!(refit_back, refit, "case {case}");

        // relative_difference: zero on self (exactly), non-negative and
        // symmetric against an independently drawn snapshot.
        assert_eq!(snap.relative_difference(&snap), 0.0, "case {case}");
        let other = FeatureSnapshot::fit(&random_snapshot_samples(&mut rng));
        let ab = snap.relative_difference(&other);
        let ba = other.relative_difference(&snap);
        assert!(ab >= 0.0, "case {case}: negative difference {ab}");
        assert!(
            (ab - ba).abs() < 1e-12 * (1.0 + ab),
            "case {case}: asymmetric difference {ab} vs {ba}"
        );
    }
}

/// Build a random small network: 1–3 hidden layers, dims 1–10, random
/// hidden and output activations drawn from the full supported set.
fn random_mlp(rng: &mut StdRng) -> Mlp {
    let layer_count = rng.gen_range(2usize..=4);
    let sizes: Vec<usize> = (0..=layer_count)
        .map(|_| rng.gen_range(1usize..=10))
        .collect();
    let hidden = Activation::ALL[rng.gen_range(0..Activation::ALL.len())];
    let output = Activation::ALL[rng.gen_range(0..Activation::ALL.len())];
    Mlp::with_output_activation(&sizes, hidden, output, rng)
}

/// The `QCFW` codec round-trips random `Mlp` shapes and activations
/// bit-identically: every weight, bias, dimension and activation — and
/// therefore every prediction — survives persistence exactly.
#[test]
fn qcfw_roundtrip_is_bit_identical_for_random_mlps() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for case in 0..QCFW_CASES {
        let mlp = random_mlp(&mut rng);
        let bytes = mlp.to_weight_bytes();
        let back = Mlp::from_weight_bytes(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: valid buffer rejected: {e}"));
        assert_eq!(back.layer_count(), mlp.layer_count(), "case {case}");
        for (la, lb) in mlp.layers().iter().zip(back.layers()) {
            assert_eq!(la.input_dim(), lb.input_dim(), "case {case}");
            assert_eq!(la.output_dim(), lb.output_dim(), "case {case}");
            assert_eq!(la.activation(), lb.activation(), "case {case}");
            for (wa, wb) in la.weights().as_slice().iter().zip(lb.weights().as_slice()) {
                assert_eq!(wa.to_bits(), wb.to_bits(), "case {case}: weight bits");
            }
            for (ba, bb) in la.biases().iter().zip(lb.biases()) {
                assert_eq!(ba.to_bits(), bb.to_bits(), "case {case}: bias bits");
            }
        }
        let input: Vec<f64> = (0..mlp.input_dim())
            .map(|_| rng.gen_range(-3.0f64..3.0))
            .collect();
        assert_eq!(
            mlp.predict_one(&input).to_bits(),
            back.predict_one(&input).to_bits(),
            "case {case}: prediction must be bit-identical"
        );
        // Serialization is deterministic: same network, same bytes.
        assert_eq!(back.to_weight_bytes(), bytes, "case {case}");
    }
}

/// `QCFW` decode rejects truncation, flipped magic, unknown versions and
/// arbitrary single-byte corruption with *typed* errors — never a panic,
/// never silently different weights.
#[test]
fn qcfw_decode_rejects_corruption_with_typed_errors() {
    let mut rng = StdRng::seed_from_u64(0xBAD5EED);
    for case in 0..QCFW_CASES {
        let mlp = random_mlp(&mut rng);
        let bytes = mlp.to_weight_bytes();
        match case % 4 {
            0 => {
                // Truncation at every kind of boundary.
                let cut = rng.gen_range(0..bytes.len());
                let err = Mlp::from_weight_bytes(&bytes[..cut])
                    .expect_err("truncated buffer must not decode");
                assert!(
                    matches!(
                        err,
                        WeightsCodecError::Truncated | WeightsCodecError::BadMagic
                    ),
                    "case {case}: cut {cut} gave {err:?}"
                );
            }
            1 => {
                // Flipped magic byte.
                let mut corrupt = bytes.clone();
                let index = rng.gen_range(0usize..4);
                corrupt[index] ^= 0xFF;
                assert_eq!(
                    Mlp::from_weight_bytes(&corrupt).expect_err("bad magic must not decode"),
                    WeightsCodecError::BadMagic,
                    "case {case}"
                );
            }
            2 => {
                // Unknown version.
                let mut corrupt = bytes.clone();
                let version = rng.gen_range(2u32..=u32::MAX);
                corrupt[4..8].copy_from_slice(&version.to_le_bytes());
                assert_eq!(
                    Mlp::from_weight_bytes(&corrupt).expect_err("unknown version must not decode"),
                    WeightsCodecError::UnsupportedVersion(version),
                    "case {case}"
                );
            }
            _ => {
                // A single flipped byte anywhere in the frame: magic,
                // version, kind, length, CRC or payload — all typed
                // rejections (the CRC catches everything the header
                // validators don't).
                let mut corrupt = bytes.clone();
                let index = rng.gen_range(0..corrupt.len());
                let mask = rng.gen_range(1u8..=255);
                corrupt[index] ^= mask;
                let err = Mlp::from_weight_bytes(&corrupt)
                    .expect_err("single-byte corruption must not decode");
                // Any variant is acceptable; what matters is a typed error
                // (and no panic). Exercise Display while at it.
                assert!(!err.to_string().is_empty(), "case {case}");
            }
        }
    }
}

/// Least squares reproduces exact solutions of well-conditioned systems.
#[test]
fn least_squares_exact_fit() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let a = rng.gen_range(-5.0f64..5.0);
        let b = rng.gen_range(-5.0f64..5.0);
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 1.0]).collect();
        let ys: Vec<f64> = (0..30).map(|i| a * i as f64 + b).collect();
        let beta = least_squares(&Matrix::from_rows(&xs), &ys).unwrap();
        assert!((beta[0] - a).abs() < 1e-6);
        assert!((beta[1] - b).abs() < 1e-6);
    }
}

/// Histogram selectivity estimates of uniform integer columns track the
/// true fraction within a loose tolerance.
#[test]
fn selectivity_tracks_truth_on_uniform_data() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    let column = ColumnVector::Int((0..1000).collect());
    let stats = ColumnStats::analyze(&column);
    for _ in 0..CASES {
        let cutoff = rng.gen_range(50i64..950);
        let pred = Predicate::Compare {
            column: ColumnRef::new("t", "c"),
            op: CompareOp::Lt,
            value: Value::Int(cutoff),
        };
        let est = stats.selectivity(&pred);
        let truth = cutoff as f64 / 1000.0;
        assert!((est - truth).abs() < 0.08, "est {est} truth {truth}");
    }
}

/// Predicate evaluation agrees with selection-bitmap counting.
#[test]
fn bitmap_count_matches_direct_evaluation() {
    let mut rng = StdRng::seed_from_u64(0xA7);
    let column = ColumnVector::Int((0..100).collect());
    for _ in 0..CASES {
        let threshold = rng.gen_range(0i64..100);
        let pred = Predicate::Compare {
            column: ColumnRef::new("t", "c"),
            op: CompareOp::Ge,
            value: Value::Int(threshold),
        };
        let matches = column.evaluate(&pred).iter().filter(|b| **b).count() as i64;
        assert_eq!(matches, 100 - threshold);
    }
}

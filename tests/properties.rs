//! Property-style tests over the core invariants of the reproduction.
//!
//! The original proptest harness is unavailable offline, so each property is
//! checked over a seeded random sample of its input domain (64 cases per
//! property, mirroring the old `ProptestConfig::with_cases(64)`).

use qcfe::core::metrics::{pearson, percentile, q_error, q_errors};
use qcfe::core::snapshot::{FeatureSnapshot, OperatorSample};
use qcfe::db::data::ColumnVector;
use qcfe::db::expr::{ColumnRef, CompareOp, Predicate};
use qcfe::db::plan::OperatorKind;
use qcfe::db::stats::ColumnStats;
use qcfe::db::types::Value;
use qcfe::nn::{least_squares, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

/// Q-error is symmetric, at least 1, and 1 exactly for perfect predictions.
#[test]
fn q_error_properties() {
    let mut rng = StdRng::seed_from_u64(0xA0);
    for _ in 0..CASES {
        let actual = rng.gen_range(0.001f64..1e6);
        let predicted = rng.gen_range(0.001f64..1e6);
        let q = q_error(actual, predicted);
        assert!(q >= 1.0 - 1e-12);
        assert!((q - q_error(predicted, actual)).abs() < 1e-9);
        assert!((q_error(actual, actual) - 1.0).abs() < 1e-12);
    }
}

/// Pearson correlation is bounded by [-1, 1] and invariant to affine
/// rescaling of the predictions.
#[test]
fn pearson_bounds_and_affine_invariance() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let n = rng.gen_range(3usize..40);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1f64..1e4)).collect();
        let noisy: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(i, v)| v * (1.0 + 0.01 * (i % 5) as f64))
            .collect();
        let r = pearson(&values, &noisy);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        let rescaled: Vec<f64> = noisy.iter().map(|v| 3.0 * v + 10.0).collect();
        assert!((pearson(&values, &noisy) - pearson(&values, &rescaled)).abs() < 1e-9);
    }
}

/// Percentiles are monotone in p and bounded by the extremes.
#[test]
fn percentile_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..60);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..1e5)).collect();
        let p25 = percentile(&values, 25.0);
        let p50 = percentile(&values, 50.0);
        let p95 = percentile(&values, 95.0);
        assert!(p25 <= p50 + 1e-9);
        assert!(p50 <= p95 + 1e-9);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p25 >= min - 1e-9 && p95 <= max + 1e-9);
    }
}

/// Mean q-error of identical vectors is exactly 1.
#[test]
fn identical_predictions_have_unit_q_error() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..50);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01f64..1e4)).collect();
        let qs = q_errors(&values, &values);
        assert!(qs.iter().all(|q| (q - 1.0).abs() < 1e-9));
    }
}

/// The feature snapshot recovers linear coefficients from noise-free
/// operator samples for any positive slope/intercept.
#[test]
fn snapshot_recovers_linear_coefficients() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let c0 = rng.gen_range(0.0001f64..0.1);
        let c1 = rng.gen_range(0.0f64..10.0);
        let samples: Vec<OperatorSample> = (1..=40)
            .map(|i| {
                let n = (i * 25) as f64;
                OperatorSample {
                    kind: OperatorKind::SeqScan,
                    n1: n,
                    n2: 0.0,
                    self_ms: c0 * n + c1,
                }
            })
            .collect();
        let snap = FeatureSnapshot::fit(&samples);
        let c = snap.coefficients(OperatorKind::SeqScan);
        assert!(
            (c[0] - c0).abs() < 1e-6 * (1.0 + c0),
            "c0 {} vs {}",
            c[0],
            c0
        );
        assert!(
            (c[1] - c1).abs() < 1e-4 * (1.0 + c1),
            "c1 {} vs {}",
            c[1],
            c1
        );
    }
}

/// Least squares reproduces exact solutions of well-conditioned systems.
#[test]
fn least_squares_exact_fit() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let a = rng.gen_range(-5.0f64..5.0);
        let b = rng.gen_range(-5.0f64..5.0);
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 1.0]).collect();
        let ys: Vec<f64> = (0..30).map(|i| a * i as f64 + b).collect();
        let beta = least_squares(&Matrix::from_rows(&xs), &ys).unwrap();
        assert!((beta[0] - a).abs() < 1e-6);
        assert!((beta[1] - b).abs() < 1e-6);
    }
}

/// Histogram selectivity estimates of uniform integer columns track the
/// true fraction within a loose tolerance.
#[test]
fn selectivity_tracks_truth_on_uniform_data() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    let column = ColumnVector::Int((0..1000).collect());
    let stats = ColumnStats::analyze(&column);
    for _ in 0..CASES {
        let cutoff = rng.gen_range(50i64..950);
        let pred = Predicate::Compare {
            column: ColumnRef::new("t", "c"),
            op: CompareOp::Lt,
            value: Value::Int(cutoff),
        };
        let est = stats.selectivity(&pred);
        let truth = cutoff as f64 / 1000.0;
        assert!((est - truth).abs() < 0.08, "est {est} truth {truth}");
    }
}

/// Predicate evaluation agrees with selection-bitmap counting.
#[test]
fn bitmap_count_matches_direct_evaluation() {
    let mut rng = StdRng::seed_from_u64(0xA7);
    let column = ColumnVector::Int((0..100).collect());
    for _ in 0..CASES {
        let threshold = rng.gen_range(0i64..100);
        let pred = Predicate::Compare {
            column: ColumnRef::new("t", "c"),
            op: CompareOp::Ge,
            value: Value::Int(threshold),
        };
        let matches = column.evaluate(&pred).iter().filter(|b| **b).count() as i64;
        assert_eq!(matches, 100 - threshold);
    }
}

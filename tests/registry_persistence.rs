//! Durable-model acceptance tests: a gateway rebuilt on the same store
//! directory must keep serving — bit-identically, without retraining —
//! from persisted `QCFW` weight sidecars, and the registry's disk-reload
//! path must hold up under eviction pressure and concurrent writers.

use qcfe::core::collect::{collect_workload, LabeledWorkload};
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::{EnvSnapshots, MscnEstimator, QppNetEstimator};
use qcfe::core::model_codec::PersistedModel;
use qcfe::core::pipeline::EstimatorKind;
use qcfe::core::snapshot::FeatureSnapshot;
use qcfe::db::catalog::{Catalog, TableBuilder};
use qcfe::db::env::{DbEnvironment, HardwareProfile};
use qcfe::db::plan::{PhysicalOp, PlanNode};
use qcfe::db::types::DataType;
use qcfe::nn::{Activation, DenseLayer, Matrix, Mlp};
use qcfe::serve::prelude::*;
use qcfe::serve::registry::ModelRegistry;
use qcfe::workloads::BenchmarkKind;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qcfe-registry-persistence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small-but-real labeled fixture: 2 environments, fitted snapshots.
fn fixture() -> (
    qcfe::workloads::Benchmark,
    Vec<DbEnvironment>,
    LabeledWorkload,
    EnvSnapshots,
) {
    let bench = BenchmarkKind::Sysbench.build(0.0005, 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let envs = DbEnvironment::sample_knob_configs(2, HardwareProfile::h1(), &mut rng);
    let workload = collect_workload(&bench, &envs, 30, 13);
    let snapshots: EnvSnapshots = (0..envs.len())
        .map(|env_index| {
            let executions: Vec<_> = workload
                .for_environment(env_index)
                .iter()
                .map(|q| q.executed.clone())
                .collect();
            Some(FeatureSnapshot::fit_from_executions(&executions))
        })
        .collect();
    (bench, envs, workload, snapshots)
}

/// Satellite acceptance: train → persist → drop the gateway → rebuild from
/// the same store directory → identical plans produce bit-identical
/// estimates for *both* learned families, with provenance asserting the
/// disk load (no retrain — the rebuilt gateway has no models registered and
/// no provider installed).
#[test]
fn gateway_restart_serves_bit_identical_estimates_from_disk() {
    let (bench, envs, workload, snapshots) = fixture();
    let env = envs[0].clone();
    let snapshot = snapshots[0].clone().expect("snapshot fitted");
    let kind = BenchmarkKind::Sysbench;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let encoder = FeatureEncoder::new(&bench.catalog, true);
    let (mscn, _) = MscnEstimator::train(
        encoder.clone(),
        &workload,
        Some(&snapshots),
        None,
        8,
        &mut rng,
    );
    let mut qpp = QppNetEstimator::new(encoder, None, &mut rng);
    qpp.train(&workload, Some(&snapshots), 1, &mut rng);

    let mscn_key = ModelKey::new(kind, EstimatorKind::QcfeMscn, env.fingerprint());
    let qpp_key = ModelKey::new(kind, EstimatorKind::QcfeQpp, env.fingerprint());
    let plans: Vec<PlanNode> = workload
        .for_environment(0)
        .iter()
        .take(12)
        .map(|q| q.executed.root.clone())
        .collect();
    assert!(plans.len() >= 10, "fixture must supply enough plans");

    let request_for = |env: &DbEnvironment, plan: &PlanNode, estimator: EstimatorKind| {
        EstimateRequest::new(kind, env.clone(), plan.clone()).with_estimator(estimator)
    };

    // First life: publish everything, serve, remember the exact bits.
    let root = temp_root("restart");
    let before: Vec<(EstimatorKind, u64)> = {
        let gateway = QcfeGateway::builder(&root).build().expect("gateway builds");
        gateway
            .publish_snapshot(kind, &env, &snapshot)
            .expect("snapshot published");
        gateway
            .publish_model(mscn_key, PersistedModel::Mscn(mscn))
            .expect("mscn weights persisted");
        gateway
            .publish_model(qpp_key, PersistedModel::QppNet(qpp))
            .expect("qpp weights persisted");
        let mut out = Vec::new();
        for estimator in [EstimatorKind::QcfeMscn, EstimatorKind::QcfeQpp] {
            for plan in &plans {
                let response = gateway
                    .estimate(request_for(&env, plan, estimator))
                    .expect("first-life estimate");
                assert_eq!(
                    response.provenance.snapshot_origin,
                    SnapshotOrigin::TrainedHere,
                    "first life serves in-memory registrations"
                );
                out.push((estimator, response.cost_ms.to_bits()));
            }
        }
        out
        // The gateway (and every shard) drops here: the simulated restart.
    };

    // Second life: same directory, empty registry, no provider. Everything
    // must come back from the QCFW sidecars.
    let gateway = QcfeGateway::builder(&root)
        .build()
        .expect("gateway rebuilds");
    let mut cold_starts = 0;
    let mut index = 0;
    for estimator in [EstimatorKind::QcfeMscn, EstimatorKind::QcfeQpp] {
        for plan in &plans {
            let response = gateway
                .estimate(request_for(&env, plan, estimator))
                .expect("post-restart estimate");
            let (expected_kind, expected_bits) = before[index];
            assert_eq!(expected_kind, estimator);
            assert_eq!(
                response.cost_ms.to_bits(),
                expected_bits,
                "{estimator:?}: restarted gateway must serve bit-identical estimates"
            );
            assert!(
                response.provenance.snapshot_origin.is_from_disk(),
                "{estimator:?}: provenance must assert the disk load, got {:?}",
                response.provenance.snapshot_origin
            );
            assert!(
                response.provenance.model_from_disk,
                "{estimator:?}: the model-origin flag must record the disk load"
            );
            cold_starts += usize::from(response.provenance.cold_start);
            index += 1;
        }
    }
    assert_eq!(cold_starts, 2, "one cold start per estimator family");
    let stats = gateway.stats();
    assert_eq!(
        stats.model_loads, 2,
        "exactly one disk load per family, zero retrains"
    );
    assert_eq!(stats.registry.loads, 2);

    // An unseen third environment still fails typed — disk loading must
    // not have weakened the missing-model path.
    let other = envs[1].clone();
    match gateway.estimate(request_for(&other, &plans[0], EstimatorKind::QcfeQpp)) {
        Err(QcfeError::ModelMissing { key }) => {
            assert_eq!(key.fingerprint, other.fingerprint())
        }
        other => panic!("expected ModelMissing, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// A deterministic, training-free MSCN model whose prediction is exactly
/// its bias: one identity layer with zero weights. Distinct biases make
/// every persisted model distinguishable on load.
fn constant_model(encoder: &FeatureEncoder, value: f64) -> PersistedModel {
    let dim = encoder.plan_dim();
    let layer =
        DenseLayer::with_parameters(Matrix::zeros(dim, 1), vec![value], Activation::Identity);
    PersistedModel::Mscn(
        MscnEstimator::from_parts(
            encoder.clone(),
            (0..dim).collect(),
            Mlp::from_layers(vec![layer]),
        )
        .expect("consistent parts"),
    )
}

fn tiny_encoder() -> FeatureEncoder {
    let mut catalog = Catalog::new();
    catalog.add_table(
        TableBuilder::new("t")
            .column("x", DataType::Int)
            .primary_key("x"),
    );
    FeatureEncoder::new(&catalog, false)
}

fn scan_plan() -> PlanNode {
    PlanNode::new(PhysicalOp::SeqScan { table: "t".into() }, vec![])
}

/// Satellite acceptance: a capacity-2 registry under eviction pressure from
/// 8 threads reloads each evicted model from disk — never rebuilds (the
/// build closure panics), never reloads a key while it is resident beyond
/// what evictions justify, and never serves a partially written file even
/// while writers keep rewriting the sidecars (write-to-temp + rename).
#[test]
fn evicted_models_reload_from_disk_at_most_once_while_resident() {
    const THREADS: usize = 8;
    const ITERS: usize = 60;
    let root = temp_root("eviction");
    let store = SnapshotStore::open(&root).expect("store opens");
    let kind = BenchmarkKind::Sysbench;
    let encoder = tiny_encoder();

    // One persisted model per thread, each predicting its own constant.
    let keys: Vec<ModelKey> = (0..THREADS)
        .map(|i| {
            let mut env = DbEnvironment::reference();
            env.knobs.work_mem_kb = 2048 + i as u64;
            ModelKey::new(kind, EstimatorKind::Mscn, env.fingerprint())
        })
        .collect();
    let models: Vec<PersistedModel> = (0..THREADS)
        .map(|i| constant_model(&encoder, 1.0 + i as f64))
        .collect();
    for (key, model) in keys.iter().zip(&models) {
        store
            .save_model(key.benchmark, key.estimator, key.fingerprint, model)
            .expect("seed weights persisted");
    }

    let loads = Arc::new(AtomicUsize::new(0));
    let mut registry = ModelRegistry::new(2);
    {
        let store = store.clone();
        let loads = Arc::clone(&loads);
        registry.set_loader(move |key: &ModelKey| {
            let model = store
                .load_model(key.benchmark, key.estimator, key.fingerprint)
                .expect("a persisted model must never fail to load (torn file?)")
                .expect("every key in this test is persisted");
            loads.fetch_add(1, Ordering::Relaxed);
            Some(model.into_cost_model())
        });
    }
    let registry = Arc::new(registry);

    let stop_writers = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Writers keep republishing the same weights; the atomic
        // temp-file + rename protocol means readers only ever observe
        // complete frames.
        for w in 0..2usize {
            let store = store.clone();
            let keys = &keys;
            let models = &models;
            let stop = Arc::clone(&stop_writers);
            scope.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let key = &keys[i % keys.len()];
                    store
                        .save_model(
                            key.benchmark,
                            key.estimator,
                            key.fingerprint,
                            &models[i % models.len()],
                        )
                        .expect("rewrite succeeds");
                    i += 1;
                }
            });
        }
        let mut readers = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let registry = Arc::clone(&registry);
            readers.push(scope.spawn(move || {
                let plan = scan_plan();
                let expected = 1.0 + i as f64;
                for _ in 0..ITERS {
                    let model = registry.get_or_insert_with(*key, || {
                        panic!("persisted key {i} must reload, never rebuild")
                    });
                    let predicted = model.predict_plan(&plan, None);
                    assert_eq!(
                        predicted.to_bits(),
                        expected.to_bits(),
                        "key {i} must serve its own complete weights"
                    );
                }
            }));
        }
        for reader in readers {
            reader
                .join()
                .expect("no reader may observe a torn or wrong file");
        }
        stop_writers.store(true, Ordering::Relaxed);
    });

    let stats = registry.stats();
    let total_loads = loads.load(Ordering::Relaxed);
    assert_eq!(stats.loads as usize, total_loads);
    assert!(stats.resident <= 2, "capacity bound held");
    assert!(
        stats.evictions >= (THREADS - 2) as u64,
        "8 keys through 2 slots must evict, saw {}",
        stats.evictions
    );
    assert!(total_loads >= THREADS, "every key loaded at least once");
    assert!(
        total_loads as u64 <= THREADS as u64 + stats.evictions,
        "{total_loads} loads vs {} evictions: a key was reloaded while resident",
        stats.evictions
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Weight files only ever appear complete: while a writer saves a large
/// model repeatedly, a reader polling the path must always decode a full
/// frame (or see the file as absent before the first rename) — never a
/// torn prefix.
#[test]
fn concurrent_saves_never_expose_partial_weight_files() {
    let root = temp_root("torn");
    let store = SnapshotStore::open(&root).expect("store opens");
    let kind = BenchmarkKind::Sysbench;
    let encoder = tiny_encoder();
    let fingerprint = DbEnvironment::reference().fingerprint();
    let estimator = EstimatorKind::Mscn;
    // A deeper network to make each write non-trivially sized.
    let model = {
        let dim = encoder.plan_dim();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mlp = Mlp::new(&[dim, 64, 64, 1], Activation::Relu, &mut rng);
        PersistedModel::Mscn(
            MscnEstimator::from_parts(encoder.clone(), (0..dim).collect(), mlp)
                .expect("consistent parts"),
        )
    };
    let expected = model.to_bytes();

    std::thread::scope(|scope| {
        let writer_store = store.clone();
        let writer_model = &model;
        let writer = scope.spawn(move || {
            for _ in 0..200 {
                writer_store
                    .save_model(kind, estimator, fingerprint, writer_model)
                    .expect("save succeeds");
            }
        });
        let mut observed = 0usize;
        while !writer.is_finished() {
            match store.load_model(kind, estimator, fingerprint) {
                Ok(None) => {} // before the first rename landed
                Ok(Some(loaded)) => {
                    observed += 1;
                    assert_eq!(
                        loaded.to_bytes(),
                        expected,
                        "a loaded model must always be the complete frame"
                    );
                }
                Err(e) => panic!("reader observed a torn weight file: {e}"),
            }
        }
        writer.join().expect("writer finishes");
        assert!(observed > 0, "the reader raced at least one complete load");
    });
    let _ = std::fs::remove_dir_all(&root);
}

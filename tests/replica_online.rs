//! Acceptance tests of replicated serving: rendezvous placement under a
//! seeded 1000-case removal/stability property sweep (including the
//! revival *reviving* state, which placement must treat as dead until
//! promotion), the `QCFP` ship and manifest frames under the same
//! round-trip/corruption bar as the request codec, shipped `QCFS`/`QCFW`
//! state applying bit-identically on a second gateway, live `NotOwner`
//! redirects over TCP, and two headline drills: kill one of three local
//! replicas mid-load and watch the survivors absorb its shards from
//! shipped state with bit-identical estimates; then revive a killed
//! replica mid-load *after* its keys were re-published during the outage
//! and watch the anti-entropy catch-up handshake keep every estimate
//! fresh and bit-identical — not one stale read.

use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::MscnEstimator;
use qcfe::core::model_codec::PersistedModel;
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind, ExperimentContext};
use qcfe::db::env::EnvFingerprint;
use qcfe::net::client::{ClientError, QcfeClient, ShardClient};
use qcfe::net::replicator::{Replicator, ReplicatorConfig};
use qcfe::net::server::{NetServerBuilder, ServerHandle};
use qcfe::net::wire::{
    self, Frame, WireError, WireFault, WireManifestEntry, WireManifestReply, WireManifestRequest,
    WireShipAck, WireShipModel, WireShipSnapshot, MAX_MANIFEST_ENTRIES, MAX_SHIP_BYTES,
};
use qcfe::serve::prelude::*;
use qcfe::serve::replica::{owner_among, placement_weight};
use qcfe::workloads::{run_timed_loop, BenchmarkKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const KIND: BenchmarkKind = BenchmarkKind::Sysbench;

/// Same acceptance bar as the `QCFP` request/response sweep in
/// `net_online.rs`: any placement or frame, deterministic/bit-exact; any
/// corruption, typed rejection.
const CASES: usize = 1000;

fn any_u64(rng: &mut StdRng) -> u64 {
    rng.gen_range(0..=u64::MAX)
}

fn random_key(rng: &mut StdRng) -> ModelKey {
    ModelKey::new(
        BenchmarkKind::ALL[rng.gen_range(0..BenchmarkKind::ALL.len())],
        EstimatorKind::ALL[rng.gen_range(0..EstimatorKind::ALL.len())],
        EnvFingerprint(any_u64(rng)),
    )
}

// ---------------------------------------------------------------------------
// Property sweep 1: rendezvous placement stability under peer removal.
// ---------------------------------------------------------------------------

/// Rendezvous placement is deterministic, agrees with the explicit
/// highest-weight/lowest-index rule, and is *minimally disruptive*:
/// removing a non-owner never moves a key, removing the owner moves it to
/// the survivor that already ranked second. The `ReplicaSet` liveness
/// mask must agree with `owner_among` over the alive subset, fall back
/// to the full set when everyone is marked dead, and exclude a peer
/// parked in the revival catch-up (*reviving*) state until it is
/// explicitly promoted.
#[test]
fn rendezvous_placement_is_stable_under_peer_removal() {
    let mut rng = StdRng::seed_from_u64(0x51AB1E);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..=8);
        let peers: Vec<String> = (0..n)
            .map(|i| {
                format!(
                    "10.{}.{}.{i}:{}",
                    case % 200,
                    rng.gen_range(0u8..=255),
                    7000 + i
                )
            })
            .collect();
        let key = random_key(&mut rng);

        let owner = owner_among(&peers, &key).expect("non-empty peer set");
        assert_eq!(
            owner_among(&peers, &key),
            Some(owner),
            "case {case}: placement must be deterministic"
        );
        // Cross-check against the explicit rule the module documents:
        // highest weight wins, ties break to the smaller index.
        let best = (0..n)
            .max_by(|&a, &b| {
                placement_weight(&peers[a], &key)
                    .cmp(&placement_weight(&peers[b], &key))
                    .then(b.cmp(&a))
            })
            .unwrap();
        assert_eq!(owner, best, "case {case}: owner is the max-weight peer");

        // Removing a random non-owner never moves the key.
        let removed = {
            let r = rng.gen_range(0..n - 1);
            if r >= owner {
                r + 1
            } else {
                r
            }
        };
        let survivors: Vec<String> = peers
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != removed)
            .map(|(_, p)| p.clone())
            .collect();
        let moved = owner_among(&survivors, &key).unwrap();
        assert_eq!(
            survivors[moved], peers[owner],
            "case {case}: removing non-owner {removed} must not move the key"
        );

        // Removing the owner hands the key to the second-ranked peer.
        let without_owner: Vec<String> = peers
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != owner)
            .map(|(_, p)| p.clone())
            .collect();
        let heir = owner_among(&without_owner, &key).unwrap();
        let second = (0..n)
            .filter(|&i| i != owner)
            .max_by(|&a, &b| {
                placement_weight(&peers[a], &key)
                    .cmp(&placement_weight(&peers[b], &key))
                    .then(b.cmp(&a))
            })
            .unwrap();
        assert_eq!(
            without_owner[heir], peers[second],
            "case {case}: the owner's keys fall to the second-ranked survivor"
        );

        // The shared liveness view agrees with owner_among over the alive
        // subset, and ownership is a property of the self index.
        let view = ReplicaSet::client_view(peers.clone()).unwrap();
        view.mark_dead(removed);
        assert_eq!(
            view.peers()[view.owner_index(&key)],
            peers[owner],
            "case {case}: masked view agrees with list-level placement"
        );
        view.mark_alive(removed);
        view.mark_dead(owner);
        assert_eq!(
            view.peers()[view.owner_index(&key)],
            peers[second],
            "case {case}: masked view fails over to the second-ranked peer"
        );
        for i in 0..n {
            view.mark_dead(i);
        }
        assert_eq!(
            view.owner_index(&key),
            owner,
            "case {case}: an all-dead mask falls back to the full set"
        );

        // The *reviving* state of the anti-entropy handshake: a peer
        // mid-catch-up still serves the bytes from before its outage, so
        // placement must treat it exactly like a dead peer — and nothing
        // short of an explicit promotion may let it back in.
        for i in 0..n {
            view.mark_alive(i);
        }
        assert!(
            !view.begin_revival(owner),
            "case {case}: an alive peer has nothing to revive from"
        );
        view.mark_dead(owner);
        assert!(
            view.begin_revival(owner),
            "case {case}: a dead peer enters revival"
        );
        assert!(view.is_reviving(owner));
        assert_eq!(
            view.peers()[view.owner_index(&key)],
            peers[second],
            "case {case}: a reviving peer is never selected as owner"
        );
        assert!(
            !view.mark_alive(owner),
            "case {case}: a stray liveness probe cannot promote a reviving peer"
        );
        assert_eq!(
            view.peers()[view.owner_index(&key)],
            peers[second],
            "case {case}: still excluded after the stray mark_alive"
        );
        assert!(
            view.promote_revived(owner),
            "case {case}: promotion completes the revival"
        );
        assert!(!view.promote_revived(owner), "case {case}: exactly once");
        assert_eq!(
            view.peers()[view.owner_index(&key)],
            peers[owner],
            "case {case}: a promoted peer owns its keys again"
        );

        let as_owner = ReplicaSet::new(peers.clone(), owner).unwrap();
        let as_other = ReplicaSet::new(peers.clone(), (owner + 1) % n).unwrap();
        assert!(as_owner.owns(&key), "case {case}: the owner owns its key");
        assert!(
            !as_other.owns(&key),
            "case {case}: a non-owner must refuse the key"
        );
    }
}

// ---------------------------------------------------------------------------
// Property sweep 2: ship-frame round-trip + corruption rejection.
// ---------------------------------------------------------------------------

fn random_blob(rng: &mut StdRng, max: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max);
    (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
}

fn random_knobs(rng: &mut StdRng) -> Vec<f64> {
    (0..rng.gen_range(0usize..12))
        .map(|_| match rng.gen_range(0u8..5) {
            0 => f64::INFINITY,
            1 => -0.0,
            2 => f64::MIN_POSITIVE / 2.0,
            _ => rng.gen_range(-1e6f64..1e6),
        })
        .collect()
}

fn random_message(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..24);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0u8..26)))
        .collect()
}

/// Every ship frame decodes back to an equal value and re-encodes to the
/// identical byte string; truncation, a flipped magic, an unknown version
/// and a random single-bit flip are each rejected with a typed error,
/// never a panic. Oversized payloads are refused at encode time.
#[test]
fn ship_frames_round_trip_bit_exactly_and_reject_corruption() {
    let mut rng = StdRng::seed_from_u64(0x51C0FE);
    for case in 0..CASES {
        let bytes = match case % 3 {
            0 => {
                let ship = WireShipSnapshot {
                    request_id: any_u64(&mut rng),
                    benchmark: BenchmarkKind::ALL[rng.gen_range(0..BenchmarkKind::ALL.len())],
                    fingerprint: any_u64(&mut rng),
                    knobs: random_knobs(&mut rng),
                    snapshot: random_blob(&mut rng, 1024),
                };
                let bytes = wire::encode_ship_snapshot(&ship).expect("encodable");
                match wire::decode_frame(&bytes).expect("decodable") {
                    Frame::ShipSnapshot(decoded) => {
                        assert_eq!(*decoded, ship, "case {case}: structural round-trip");
                        assert_eq!(
                            wire::encode_ship_snapshot(&decoded).expect("re-encodable"),
                            bytes,
                            "case {case}: bit-identical re-encode"
                        );
                    }
                    other => panic!("case {case}: wrong frame kind {other:?}"),
                }
                bytes
            }
            1 => {
                let ship = WireShipModel {
                    request_id: any_u64(&mut rng),
                    benchmark: BenchmarkKind::ALL[rng.gen_range(0..BenchmarkKind::ALL.len())],
                    estimator: EstimatorKind::ALL[rng.gen_range(0..EstimatorKind::ALL.len())],
                    fingerprint: any_u64(&mut rng),
                    weights: random_blob(&mut rng, 1024),
                };
                let bytes = wire::encode_ship_model(&ship).expect("encodable");
                match wire::decode_frame(&bytes).expect("decodable") {
                    Frame::ShipModel(decoded) => {
                        assert_eq!(*decoded, ship, "case {case}: structural round-trip");
                        assert_eq!(
                            wire::encode_ship_model(&decoded).expect("re-encodable"),
                            bytes,
                            "case {case}: bit-identical re-encode"
                        );
                    }
                    other => panic!("case {case}: wrong frame kind {other:?}"),
                }
                bytes
            }
            _ => {
                let ack = WireShipAck {
                    request_id: any_u64(&mut rng),
                    accepted: rng.gen_bool(0.5),
                    message: random_message(&mut rng),
                };
                let bytes = wire::encode_ship_ack(&ack).expect("encodable");
                match wire::decode_frame(&bytes).expect("decodable") {
                    Frame::ShipAck(decoded) => {
                        assert_eq!(decoded, ack, "case {case}: structural round-trip");
                        assert_eq!(
                            wire::encode_ship_ack(&decoded).expect("re-encodable"),
                            bytes,
                            "case {case}: bit-identical re-encode"
                        );
                    }
                    other => panic!("case {case}: wrong frame kind {other:?}"),
                }
                bytes
            }
        };
        assert_eq!(
            wire::frame_length(&bytes).expect("well-formed"),
            Some(bytes.len()),
            "case {case}: frame length self-describes"
        );

        match case % 4 {
            0 => {
                let cut = rng.gen_range(0..bytes.len());
                assert_eq!(
                    wire::frame_length(&bytes[..cut]).expect("prefix stays valid"),
                    None,
                    "case {case}: truncated frame reads as incomplete"
                );
                assert!(
                    wire::decode_frame(&bytes[..cut]).is_err(),
                    "case {case}: truncated frame must not decode"
                );
            }
            1 => {
                let mut corrupt = bytes.clone();
                let i = rng.gen_range(0usize..4);
                corrupt[i] ^= 1u8 << rng.gen_range(0u8..8);
                assert!(
                    matches!(wire::frame_length(&corrupt), Err(WireError::BadMagic(_))),
                    "case {case}: flipped magic must reject"
                );
            }
            2 => {
                let mut corrupt = bytes.clone();
                let version = rng.gen_range(2u32..u32::MAX);
                corrupt[4..8].copy_from_slice(&version.to_le_bytes());
                assert_eq!(
                    wire::frame_length(&corrupt),
                    Err(WireError::UnsupportedVersion(version)),
                    "case {case}: unknown version must reject"
                );
            }
            _ => {
                let mut corrupt = bytes.clone();
                let i = rng.gen_range(0..corrupt.len());
                corrupt[i] ^= 1u8 << rng.gen_range(0u8..8);
                assert!(
                    wire::decode_frame(&corrupt).is_err(),
                    "case {case}: single-bit flip at {i} must not decode"
                );
            }
        }
    }

    // The ship size cap is enforced at encode time: an oversized payload
    // must never reach a peer as a giant frame.
    let oversized = WireShipModel {
        request_id: 1,
        benchmark: KIND,
        estimator: EstimatorKind::QcfeMscn,
        fingerprint: 7,
        weights: vec![0u8; MAX_SHIP_BYTES + 1],
    };
    assert!(matches!(
        wire::encode_ship_model(&oversized),
        Err(WireError::ShipTooLarge { .. })
    ));
}

// ---------------------------------------------------------------------------
// Property sweep 3: manifest-frame round-trip + corruption rejection.
// ---------------------------------------------------------------------------

fn random_manifest_entry(rng: &mut StdRng) -> WireManifestEntry {
    let benchmark = BenchmarkKind::ALL[rng.gen_range(0..BenchmarkKind::ALL.len())];
    if rng.gen_bool(0.5) {
        WireManifestEntry::Snapshot {
            benchmark,
            fingerprint: any_u64(rng),
            crc: rng.gen_range(0..=u32::MAX),
        }
    } else {
        WireManifestEntry::Model {
            benchmark,
            estimator: EstimatorKind::ALL[rng.gen_range(0..EstimatorKind::ALL.len())],
            fingerprint: any_u64(rng),
            crc: rng.gen_range(0..=u32::MAX),
        }
    }
}

/// The revival catch-up frames under the `net_online.rs` bar: every
/// manifest request/reply decodes back to an equal value (entries in
/// exactly the order encoded — the store's deterministic manifest order
/// must survive the wire verbatim, or two peers would diff phantom
/// divergence) and re-encodes to the identical byte string; truncation, a
/// flipped magic, an unknown version and a random single-byte flip are
/// each rejected with a typed error, never a panic. The entry-count cap
/// is enforced at encode time too.
#[test]
fn manifest_frames_round_trip_bit_exactly_and_reject_corruption() {
    let mut rng = StdRng::seed_from_u64(0xCA7C11);
    for case in 0..CASES {
        let bytes = if case % 5 == 0 {
            let request = WireManifestRequest {
                request_id: any_u64(&mut rng),
            };
            let bytes = wire::encode_manifest_request(&request).expect("encodable");
            match wire::decode_frame(&bytes).expect("decodable") {
                Frame::ManifestRequest(decoded) => {
                    assert_eq!(decoded, request, "case {case}: structural round-trip");
                    assert_eq!(
                        wire::encode_manifest_request(&decoded).expect("re-encodable"),
                        bytes,
                        "case {case}: bit-identical re-encode"
                    );
                }
                other => panic!("case {case}: wrong frame kind {other:?}"),
            }
            bytes
        } else {
            let reply = WireManifestReply {
                request_id: any_u64(&mut rng),
                entries: (0..rng.gen_range(0usize..48))
                    .map(|_| random_manifest_entry(&mut rng))
                    .collect(),
            };
            let bytes = wire::encode_manifest_reply(&reply).expect("encodable");
            match wire::decode_frame(&bytes).expect("decodable") {
                Frame::ManifestReply(decoded) => {
                    // Vec equality is order-sensitive: the deterministic
                    // manifest order is preserved entry for entry.
                    assert_eq!(decoded, reply, "case {case}: ordered structural round-trip");
                    assert_eq!(
                        wire::encode_manifest_reply(&decoded).expect("re-encodable"),
                        bytes,
                        "case {case}: bit-identical re-encode"
                    );
                }
                other => panic!("case {case}: wrong frame kind {other:?}"),
            }
            bytes
        };
        assert_eq!(
            wire::frame_length(&bytes).expect("well-formed"),
            Some(bytes.len()),
            "case {case}: frame length self-describes"
        );

        match case % 4 {
            0 => {
                let cut = rng.gen_range(0..bytes.len());
                assert_eq!(
                    wire::frame_length(&bytes[..cut]).expect("prefix stays valid"),
                    None,
                    "case {case}: truncated frame reads as incomplete"
                );
                assert!(
                    wire::decode_frame(&bytes[..cut]).is_err(),
                    "case {case}: truncated frame must not decode"
                );
            }
            1 => {
                let mut corrupt = bytes.clone();
                let i = rng.gen_range(0usize..4);
                corrupt[i] ^= 1u8 << rng.gen_range(0u8..8);
                assert!(
                    matches!(wire::frame_length(&corrupt), Err(WireError::BadMagic(_))),
                    "case {case}: flipped magic must reject"
                );
            }
            2 => {
                let mut corrupt = bytes.clone();
                let version = rng.gen_range(2u32..u32::MAX);
                corrupt[4..8].copy_from_slice(&version.to_le_bytes());
                assert_eq!(
                    wire::frame_length(&corrupt),
                    Err(WireError::UnsupportedVersion(version)),
                    "case {case}: unknown version must reject"
                );
            }
            _ => {
                let mut corrupt = bytes.clone();
                let i = rng.gen_range(0..corrupt.len());
                corrupt[i] ^= 1u8 << rng.gen_range(0u8..8);
                assert!(
                    wire::decode_frame(&corrupt).is_err(),
                    "case {case}: single-bit flip at {i} must not decode"
                );
            }
        }
    }

    // The entry-count cap is enforced before any bytes travel: a store
    // beyond the cap must surface a typed error, not a giant frame.
    let oversized = WireManifestReply {
        request_id: 1,
        entries: vec![
            WireManifestEntry::Snapshot {
                benchmark: KIND,
                fingerprint: 7,
                crc: 0,
            };
            MAX_MANIFEST_ENTRIES + 1
        ],
    };
    assert!(matches!(
        wire::encode_manifest_reply(&oversized),
        Err(WireError::ListTooLong { .. })
    ));
}

// ---------------------------------------------------------------------------
// Live fixtures (same shape as net_online.rs).
// ---------------------------------------------------------------------------

fn ctx_with_envs(environments: usize) -> ExperimentContext {
    prepare_context(
        KIND,
        &ContextConfig {
            environments,
            queries_per_env: 30,
            template_scale: 1,
            seed: 91,
            data_scale: KIND.quick_scale(),
        },
    )
}

/// The concrete estimator (not a type-erased `CostModel`): replication
/// ships persisted `QCFW` weights, so the tests need the publishable form.
fn train_mscn(ctx: &ExperimentContext) -> MscnEstimator {
    let mut rng = StdRng::seed_from_u64(8);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, _) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        12,
        &mut rng,
    );
    model
}

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("qcfe-replica-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::remove_file(&path);
    path
}

fn small_service() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 256,
        max_batch: 16,
        encoding_cache_capacity: 1024,
    }
}

/// Reserve `n` distinct local TCP addresses by binding ephemeral
/// listeners, then releasing them for the servers to re-bind.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// An in-memory `ReplicationSink` that records every shipped event, for
/// driving `apply_shipped_*` without a network in between.
#[derive(Default)]
struct CollectSink {
    events: Mutex<Vec<ShipEvent>>,
}

impl ReplicationSink for CollectSink {
    fn ship(&self, event: ShipEvent) {
        self.events.lock().unwrap().push(event);
    }
}

// ---------------------------------------------------------------------------
// Shipped state applies bit-identically.
// ---------------------------------------------------------------------------

/// Everything a publishing gateway ships, a second gateway can apply —
/// and the two then serve bit-identical estimates, because the shipped
/// bytes ARE the persisted `QCFS`/`QCFW` codecs. Corrupted payloads are
/// rejected typed before anything is persisted.
#[test]
fn shipped_state_applies_bit_identically_and_rejects_corruption_typed() {
    let ctx = ctx_with_envs(2);
    let model = train_mscn(&ctx);
    let sink = Arc::new(CollectSink::default());
    let replicas =
        Arc::new(ReplicaSet::new(vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()], 0).unwrap());
    let dir_a = temp_path("apply-a");
    let source = QcfeGateway::builder(&dir_a)
        .service_config(small_service())
        .replication(Arc::clone(&replicas), Arc::clone(&sink) as _)
        .build()
        .unwrap();

    for (env, snapshot) in ctx
        .workload
        .environments
        .iter()
        .zip(ctx.snapshots_fso.iter())
    {
        let snapshot = snapshot.as_ref().expect("fitted");
        source.publish_snapshot(KIND, env, snapshot).unwrap();
        source
            .publish_model(
                ModelKey::new(KIND, EstimatorKind::QcfeMscn, env.fingerprint()),
                PersistedModel::Mscn(model.clone()),
            )
            .unwrap();
    }
    let events: Vec<ShipEvent> = std::mem::take(&mut *sink.events.lock().unwrap());
    assert_eq!(
        events.len(),
        2 * ctx.workload.environments.len(),
        "one snapshot and one model shipped per environment"
    );
    assert_eq!(source.stats().ships_emitted, events.len() as u64);

    // A second gateway over an empty store absorbs the shipped events.
    let dir_b = temp_path("apply-b");
    let target = QcfeGateway::builder(&dir_b)
        .service_config(small_service())
        .build()
        .unwrap();
    for event in &events {
        match event {
            ShipEvent::Snapshot {
                benchmark,
                fingerprint,
                snapshot,
                knobs,
            } => target
                .apply_shipped_snapshot(*benchmark, *fingerprint, snapshot, knobs)
                .unwrap(),
            ShipEvent::Model { key, weights } => target.apply_shipped_model(*key, weights).unwrap(),
        }
    }
    assert_eq!(target.stats().ships_applied, events.len() as u64);

    for env in &ctx.workload.environments {
        let env = Arc::new(env.clone());
        for labeled in ctx.workload.queries.iter().take(4) {
            let request =
                EstimateRequest::new(KIND, Arc::clone(&env), labeled.executed.root.clone());
            let a = source.estimate(request.clone()).unwrap();
            let b = target.estimate(request).unwrap();
            assert_eq!(
                a.cost_ms.to_bits(),
                b.cost_ms.to_bits(),
                "absorbed state must serve bit-identical estimates"
            );
        }
    }

    // Corruption: a flipped byte deep in the payload fails codec
    // validation typed, and nothing is persisted under the key.
    let dir_c = temp_path("apply-c");
    let fresh = QcfeGateway::builder(&dir_c)
        .service_config(small_service())
        .build()
        .unwrap();
    let unseen = EnvFingerprint(0xDEAD_BEEF_0BAD_CAFE);
    for event in &events {
        match event {
            ShipEvent::Snapshot {
                snapshot, knobs, ..
            } => {
                // QCFS validation is structural (magic, version, exact
                // framing); exercise each gate.
                let mut bad_magic = snapshot.clone();
                bad_magic[0] ^= 0x40;
                let mut bad_version = snapshot.clone();
                bad_version[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
                let truncated = &snapshot[..snapshot.len() - 3];
                for corrupt in [&bad_magic[..], &bad_version[..], truncated] {
                    assert!(matches!(
                        fresh.apply_shipped_snapshot(KIND, unseen, corrupt, knobs),
                        Err(QcfeError::Store(_))
                    ));
                }
                assert!(
                    !fresh.store().contains(KIND, unseen),
                    "a rejected snapshot must not be persisted"
                );
            }
            ShipEvent::Model { key, weights } => {
                let mut corrupt = weights.clone();
                let mid = corrupt.len() / 2;
                corrupt[mid] ^= 0x40;
                let key = ModelKey::new(key.benchmark, key.estimator, unseen);
                assert!(matches!(
                    fresh.apply_shipped_model(key, &corrupt),
                    Err(QcfeError::Store(_))
                ));
                assert!(
                    !fresh
                        .store()
                        .contains_model(key.benchmark, key.estimator, unseen),
                    "rejected weights must not be persisted"
                );
            }
        }
    }
    assert_eq!(fresh.stats().ships_applied, 0);
}

// ---------------------------------------------------------------------------
// Live NotOwner redirects over TCP.
// ---------------------------------------------------------------------------

/// A replica refuses another alive peer's key with a typed
/// `NotOwner { owner }` fault naming the right peer, and `ShardClient`
/// follows the redirect to a bit-identical answer.
#[test]
fn requests_for_another_peers_key_redirect_with_a_typed_not_owner_fault() {
    let ctx = ctx_with_envs(1);
    let model = train_mscn(&ctx);
    let peers = reserve_addrs(2);
    let env = Arc::new(ctx.workload.environments[0].clone());
    let snapshot = ctx.snapshots_fso[0].as_ref().expect("fitted");
    let key = ModelKey::new(KIND, EstimatorKind::QcfeMscn, env.fingerprint());
    let owner = owner_among(&peers, &key).unwrap();
    let other = 1 - owner;

    let mut gateways = Vec::new();
    let mut servers = Vec::new();
    for (i, addr) in peers.iter().enumerate() {
        let dir = temp_path(&format!("redirect-{i}"));
        let gateway = Arc::new(
            QcfeGateway::builder(&dir)
                .service_config(small_service())
                .build()
                .unwrap(),
        );
        gateway.publish_snapshot(KIND, &env, snapshot).unwrap();
        gateway
            .publish_model(key, PersistedModel::Mscn(model.clone()))
            .unwrap();
        let set = Arc::new(ReplicaSet::new(peers.clone(), i).unwrap());
        let server = NetServerBuilder::new(Arc::clone(&gateway))
            .tcp(addr.clone())
            .replica(set)
            .start()
            .unwrap();
        gateways.push(gateway);
        servers.push(server);
    }

    let plan = ctx.workload.queries[0].executed.root.clone();
    let request = EstimateRequest::new(KIND, Arc::clone(&env), plan);
    let expected = gateways[owner].estimate(request.clone()).unwrap();

    // Straight at the wrong peer: a typed redirect naming the owner.
    let mut direct = QcfeClient::connect_tcp(peers[other].as_str()).unwrap();
    direct
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match direct.estimate(&request) {
        Err(ClientError::Fault(WireFault::NotOwner { owner: named })) => {
            assert_eq!(
                named, peers[owner],
                "the redirect names the owner's address"
            )
        }
        other => panic!("expected a NotOwner fault, got {other:?}"),
    }

    // Straight at the owner: served, bit-identical to in-process.
    let mut at_owner = QcfeClient::connect_tcp(peers[owner].as_str()).unwrap();
    at_owner
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let served = at_owner.estimate(&request).unwrap();
    assert_eq!(served.cost_ms.to_bits(), expected.cost_ms.to_bits());

    // A ShardClient whose stale liveness view routes to the wrong peer
    // follows the redirect and still lands the bit-identical answer.
    let view = Arc::new(ReplicaSet::client_view(peers.clone()).unwrap());
    view.mark_dead(owner);
    let mut shard_client = ShardClient::new(Arc::clone(&view))
        .read_timeout(Some(Duration::from_secs(30)))
        .attempt_backoff(Duration::from_millis(10));
    let routed = shard_client.estimate(&request).unwrap();
    assert_eq!(routed.cost_ms.to_bits(), expected.cost_ms.to_bits());
    assert!(
        shard_client.stats().redirects >= 1,
        "the stale route must have been redirected"
    );
    assert!(
        view.is_alive(owner),
        "a successful redirect revives the owner in the client's view"
    );

    let other_stats = servers.swap_remove(other).join().unwrap();
    assert!(
        other_stats.not_owner_redirects >= 2,
        "the non-owner refused both misrouted requests, got {}",
        other_stats.not_owner_redirects
    );
    servers.pop().unwrap().join().unwrap();
}

// ---------------------------------------------------------------------------
// Headline: kill a replica mid-load, survivors absorb its shards.
// ---------------------------------------------------------------------------

/// Three local replicas serve a sharded store under closed-loop load; one
/// is killed mid-load. Every request completes or fails typed (the timed
/// loop returning at all proves nothing hung), and after failover the
/// survivors serve the dead peer's keys from shipped `QCFS`/`QCFW` state
/// with bit-identical estimates.
#[test]
fn killing_a_replica_mid_load_fails_over_with_bit_identical_estimates() {
    const REPLICAS: usize = 3;
    let ctx = ctx_with_envs(3);
    let model = train_mscn(&ctx);
    let peers = reserve_addrs(REPLICAS);

    let mut sets = Vec::new();
    let mut replicators = Vec::new();
    let mut gateways = Vec::new();
    let mut servers: Vec<Option<ServerHandle>> = Vec::new();
    for i in 0..REPLICAS {
        let set = Arc::new(ReplicaSet::new(peers.clone(), i).unwrap());
        let replicator = Replicator::start(
            Arc::clone(&set),
            ReplicatorConfig {
                heartbeat: Duration::from_millis(100),
                connect_timeout: Duration::from_millis(100),
                ..ReplicatorConfig::default()
            },
        );
        let dir = temp_path(&format!("failover-{i}"));
        let gateway = Arc::new(
            QcfeGateway::builder(&dir)
                .service_config(small_service())
                .replication(Arc::clone(&set), replicator.sink())
                .build()
                .unwrap(),
        );
        let server = NetServerBuilder::new(Arc::clone(&gateway))
            .tcp(peers[i].clone())
            .replica(Arc::clone(&set))
            .max_connections(64)
            .start()
            .unwrap();
        sets.push(set);
        replicators.push(Some(replicator));
        gateways.push(gateway);
        servers.push(Some(server));
    }

    // Publish every environment through its rendezvous owner only; the
    // replicators ship the persisted bytes to the other two.
    let keys: Vec<ModelKey> = ctx
        .workload
        .environments
        .iter()
        .map(|env| ModelKey::new(KIND, EstimatorKind::QcfeMscn, env.fingerprint()))
        .collect();
    for ((env, snapshot), key) in ctx
        .workload
        .environments
        .iter()
        .zip(ctx.snapshots_fso.iter())
        .zip(keys.iter())
    {
        let owner = owner_among(&peers, key).unwrap();
        gateways[owner]
            .publish_snapshot(KIND, env, snapshot.as_ref().expect("fitted"))
            .unwrap();
        gateways[owner]
            .publish_model(*key, PersistedModel::Mscn(model.clone()))
            .unwrap();
    }

    // Replication is asynchronous; wait until every peer's store holds
    // every environment's snapshot AND weights before pulling the plug.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let converged = gateways.iter().all(|g| {
            keys.iter().all(|key| {
                g.store().contains(KIND, key.fingerprint)
                    && g.store()
                        .contains_model(key.benchmark, key.estimator, key.fingerprint)
            })
        });
        if converged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication did not converge within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Fixed probes, measured before the kill through the sharded client.
    let probes: Vec<EstimateRequest> = ctx
        .workload
        .environments
        .iter()
        .flat_map(|env| {
            let env = Arc::new(env.clone());
            ctx.workload.queries.iter().take(2).map(move |labeled| {
                EstimateRequest::new(KIND, Arc::clone(&env), labeled.executed.root.clone())
            })
        })
        .collect();
    let shard_client = || {
        ShardClient::new(Arc::new(ReplicaSet::client_view(peers.clone()).unwrap()))
            .read_timeout(Some(Duration::from_secs(5)))
            .attempt_backoff(Duration::from_millis(50))
    };
    let mut probe_client = shard_client();
    let before: Vec<u64> = probes
        .iter()
        .map(|r| probe_client.estimate(r).unwrap().cost_ms.to_bits())
        .collect();

    // The victim owns the environment the load targets, so in-flight
    // requests are mid-failover when it dies.
    let victim = owner_among(&peers, &keys[0]).unwrap();
    let load_env = Arc::new(ctx.workload.environments[0].clone());
    let db = ctx
        .benchmark
        .build_database(ctx.workload.environments[0].clone());
    let victim_server = Mutex::new(servers[victim].take());
    let victim_replicator = Mutex::new(replicators[victim].take());

    const LOAD_CLIENTS: usize = 4;
    let pool = Mutex::new(
        (0..LOAD_CLIENTS)
            .map(|_| shard_client())
            .collect::<Vec<_>>(),
    );
    // Placement follows the (ephemeral) peer addresses, so some runs hand
    // the victim every key — then the victim is the only publisher that
    // shipped anything, and its counter must be read before the kill
    // thread drops its replicator.
    let victim_ships = Mutex::new(0u64);
    let report = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(800));
            if let Some(handle) = victim_server.lock().unwrap().take() {
                handle.join().unwrap();
            }
            if let Some(replicator) = victim_replicator.lock().unwrap().take() {
                *victim_ships.lock().unwrap() = replicator.stats().ships_sent;
            }
        });
        run_timed_loop(
            &ctx.benchmark,
            LOAD_CLIENTS,
            Duration::from_millis(2500),
            0xFA11,
            |query| {
                let plan = db.plan(&query).map_err(|e| e.to_string())?;
                let request = EstimateRequest::new(KIND, Arc::clone(&load_env), plan);
                let mut client = pool.lock().unwrap().pop().expect("client available");
                let result = client.estimate(&request);
                pool.lock().unwrap().push(client);
                result.map(|r| r.cost_ms).map_err(|e| e.to_string())
            },
        )
    });

    assert!(
        report.completed > 0,
        "the loop must keep completing requests across the kill"
    );
    assert_eq!(
        report.completed + report.errors,
        report.latencies_ms.len() + report.errors,
        "every submitted request is accounted for"
    );

    // After failover a fresh client reaches every key on the survivors,
    // and the absorbed shards answer bit-identically to the pre-kill run.
    let mut after_client = shard_client();
    for (request, expected) in probes.iter().zip(before.iter()) {
        let response = after_client.estimate(request).unwrap();
        assert_eq!(
            response.cost_ms.to_bits(),
            *expected,
            "post-failover estimates must be bit-identical"
        );
    }
    assert!(
        !after_client.replicas().is_alive(victim),
        "the client must have learned the victim is dead"
    );

    // The publishing owners shipped real state and nothing was silently
    // dropped (the victim's deliveries count too — see above).
    let shipped: u64 = replicators
        .iter()
        .flatten()
        .map(|r| r.stats().ships_sent)
        .sum::<u64>()
        + *victim_ships.lock().unwrap();
    assert!(shipped > 0, "the publishing owners must have shipped state");
    for (i, server) in servers.iter_mut().enumerate() {
        if let Some(handle) = server.take() {
            let stats = handle.join().unwrap();
            assert_eq!(
                stats.ships_rejected, 0,
                "replica {i} must not have rejected any shipped state"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Headline 2: revive a replica mid-load after its keys were re-published.
// ---------------------------------------------------------------------------

/// The anti-entropy drill. Three replicas converge, then the owner of the
/// load key is killed; while it is down, its key's snapshot *and* model
/// are re-published on the failover owner (so the victim's disk is now
/// stale for that key). The victim is restarted mid-load over its old
/// store.
///
/// Before the catch-up handshake existed, this was the staleness hole PR
/// 9 shipped with: the first heartbeat that reconnected flipped the
/// victim straight back into every survivor's alive mask, `NotOwner`
/// redirects sent the load back to it, and it served the pre-outage
/// estimate bytes — this test's mid-load bit-identity check counted
/// stale reads until the re-publish happened to be repeated. With the
/// handshake, a revived peer parks in the *reviving* state (never routed
/// to), the survivors diff store manifests and re-ship the divergent
/// snapshot + weights, and only then promote it — so the drill asserts
/// the strict post-fix contract: **zero** stale estimates at any point,
/// and the revived peer's post-promotion answers bit-identical to the
/// re-publishing owner's.
#[test]
fn reviving_a_replica_mid_load_catches_up_before_serving() {
    const REPLICAS: usize = 3;
    let ctx = ctx_with_envs(3);
    let model = train_mscn(&ctx);
    let peers = reserve_addrs(REPLICAS);
    let dirs: Vec<PathBuf> = (0..REPLICAS)
        .map(|i| temp_path(&format!("revive-{i}")))
        .collect();

    // One node = shared liveness set + store-backed replicator (the
    // anti-entropy variant) + gateway + server. The victim is restarted
    // through the same constructor, over the same directory.
    let start_node = |i: usize| {
        let set = Arc::new(ReplicaSet::new(peers.clone(), i).unwrap());
        let replicator = Replicator::with_store(
            Arc::clone(&set),
            ReplicatorConfig {
                heartbeat: Duration::from_millis(100),
                connect_timeout: Duration::from_millis(100),
                ..ReplicatorConfig::default()
            },
            SnapshotStore::open(&dirs[i]).unwrap(),
        );
        let gateway = Arc::new(
            QcfeGateway::builder(&dirs[i])
                .service_config(small_service())
                .replication(Arc::clone(&set), replicator.sink())
                .build()
                .unwrap(),
        );
        let server = NetServerBuilder::new(Arc::clone(&gateway))
            .tcp(peers[i].clone())
            .replica(Arc::clone(&set))
            .max_connections(64)
            .start()
            .unwrap();
        (set, replicator, gateway, server)
    };

    let mut sets = Vec::new();
    let mut replicators = Vec::new();
    let mut gateways = Vec::new();
    let mut servers: Vec<Option<ServerHandle>> = Vec::new();
    for i in 0..REPLICAS {
        let (set, replicator, gateway, server) = start_node(i);
        sets.push(set);
        replicators.push(Some(replicator));
        gateways.push(gateway);
        servers.push(Some(server));
    }

    // Publish every environment through its rendezvous owner and wait for
    // full store convergence, exactly like the failover drill.
    let keys: Vec<ModelKey> = ctx
        .workload
        .environments
        .iter()
        .map(|env| ModelKey::new(KIND, EstimatorKind::QcfeMscn, env.fingerprint()))
        .collect();
    for ((env, snapshot), key) in ctx
        .workload
        .environments
        .iter()
        .zip(ctx.snapshots_fso.iter())
        .zip(keys.iter())
    {
        let owner = owner_among(&peers, key).unwrap();
        gateways[owner]
            .publish_snapshot(KIND, env, snapshot.as_ref().expect("fitted"))
            .unwrap();
        gateways[owner]
            .publish_model(*key, PersistedModel::Mscn(model.clone()))
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let converged = gateways.iter().all(|g| {
            keys.iter().all(|key| {
                g.store().contains(KIND, key.fingerprint)
                    && g.store()
                        .contains_model(key.benchmark, key.estimator, key.fingerprint)
            })
        });
        if converged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication did not converge within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let victim = owner_among(&peers, &keys[0]).unwrap();
    let survivors: Vec<usize> = (0..REPLICAS).filter(|&i| i != victim).collect();
    // The failover owner (second-ranked peer) will re-publish during the
    // outage. Known before the kill, because placement is deterministic.
    let heir = {
        let survivor_addrs: Vec<String> = survivors.iter().map(|&s| peers[s].clone()).collect();
        survivors[owner_among(&survivor_addrs, &keys[0]).unwrap()]
    };
    // Baselines are probed in-process on the *other* survivor: a gateway
    // shard keeps the model it started with until it is retired, so
    // probing the heir here would warm a shard that later masks its own
    // re-publish (registry updates only reach new shard starts).
    let reference = *survivors.iter().find(|&&s| s != heir).unwrap();
    let load_env = Arc::new(ctx.workload.environments[0].clone());
    let load_probes: Vec<EstimateRequest> = ctx
        .workload
        .queries
        .iter()
        .take(4)
        .map(|labeled| {
            EstimateRequest::new(KIND, Arc::clone(&load_env), labeled.executed.root.clone())
        })
        .collect();
    let other_probes: Vec<EstimateRequest> = ctx.workload.environments[1..]
        .iter()
        .flat_map(|env| {
            let env = Arc::new(env.clone());
            ctx.workload.queries.iter().take(2).map(move |labeled| {
                EstimateRequest::new(KIND, Arc::clone(&env), labeled.executed.root.clone())
            })
        })
        .collect();

    // Pre-outage baselines (every store is converged, so any member
    // serves the same bits).
    let stale_bits: Vec<u64> = load_probes
        .iter()
        .map(|r| {
            gateways[reference]
                .estimate(r.clone())
                .unwrap()
                .cost_ms
                .to_bits()
        })
        .collect();
    let other_bits: Vec<u64> = other_probes
        .iter()
        .map(|r| {
            gateways[reference]
                .estimate(r.clone())
                .unwrap()
                .cost_ms
                .to_bits()
        })
        .collect();

    // Kill the victim (graceful: the server drains, the replicator
    // stops), and wait until every survivor's heartbeat has noticed.
    servers[victim].take().unwrap().join().unwrap();
    replicators[victim].take();
    let deadline = Instant::now() + Duration::from_secs(30);
    while survivors.iter().any(|&s| sets[s].is_alive(victim)) {
        assert!(
            Instant::now() < deadline,
            "survivors did not notice the kill within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // During the outage, the load key's state moves on without the
    // victim: the failover owner re-publishes a different fitted snapshot
    // and a retrained model under the same fingerprint. The victim's
    // store is now stale for exactly these two artifacts.
    assert_eq!(
        sets[heir].owner_index(&keys[0]),
        heir,
        "the masked view must hand the load key to the predicted heir"
    );
    let refit_model = {
        let mut rng = StdRng::seed_from_u64(99);
        let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
        MscnEstimator::train(
            encoder,
            &ctx.workload,
            Some(&ctx.snapshots_fso),
            None,
            14,
            &mut rng,
        )
        .0
    };
    gateways[heir]
        .publish_snapshot(
            KIND,
            &ctx.workload.environments[0],
            ctx.snapshots_fso[1].as_ref().expect("fitted"),
        )
        .unwrap();
    gateways[heir]
        .publish_model(keys[0], PersistedModel::Mscn(refit_model))
        .unwrap();

    // Both survivors must hold the re-published bytes before the load
    // starts — the deterministic store manifest is the convergence check.
    let deadline = Instant::now() + Duration::from_secs(30);
    while gateways[survivors[0]].store().manifest().unwrap()
        != gateways[survivors[1]].store().manifest().unwrap()
    {
        assert!(
            Instant::now() < deadline,
            "survivors did not converge on the re-published state within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The fresh reference bits, and proof the re-publish actually moved
    // the estimates — otherwise the stale-read check below is vacuous.
    let fresh_bits: Vec<u64> = load_probes
        .iter()
        .map(|r| {
            gateways[heir]
                .estimate(r.clone())
                .unwrap()
                .cost_ms
                .to_bits()
        })
        .collect();
    assert_ne!(
        stale_bits, fresh_bits,
        "the re-publish must change the served estimates"
    );

    // Closed-loop load over the survivors; the victim is restarted over
    // its stale store mid-load. Every networked answer is compared
    // bit-for-bit against the heir's in-process answer at that moment —
    // any divergence is a stale read (all converged members serve
    // identical bits, so only a pre-catch-up victim can differ).
    let db = ctx
        .benchmark
        .build_database(ctx.workload.environments[0].clone());
    const LOAD_CLIENTS: usize = 4;
    let shard_client = || {
        ShardClient::new(Arc::new(ReplicaSet::client_view(peers.clone()).unwrap()))
            .read_timeout(Some(Duration::from_secs(5)))
            .attempt_backoff(Duration::from_millis(50))
    };
    let pool = Mutex::new(
        (0..LOAD_CLIENTS)
            .map(|_| shard_client())
            .collect::<Vec<_>>(),
    );
    let stale_reads = AtomicU64::new(0);
    let revived = Mutex::new(None);
    let report = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(1000));
            *revived.lock().unwrap() = Some(start_node(victim));
        });
        run_timed_loop(
            &ctx.benchmark,
            LOAD_CLIENTS,
            Duration::from_millis(4000),
            0x2EB1BE,
            |query| {
                let plan = db.plan(&query).map_err(|e| e.to_string())?;
                let request = EstimateRequest::new(KIND, Arc::clone(&load_env), plan);
                let expected = gateways[heir]
                    .estimate(request.clone())
                    .map_err(|e| e.to_string())?;
                let mut client = pool.lock().unwrap().pop().expect("client available");
                let result = client.estimate(&request);
                pool.lock().unwrap().push(client);
                let response = result.map_err(|e| e.to_string())?;
                if response.cost_ms.to_bits() != expected.cost_ms.to_bits() {
                    stale_reads.fetch_add(1, Ordering::Relaxed);
                }
                Ok(response.cost_ms)
            },
        )
    });
    let (revived_set, revived_replicator, revived_gateway, revived_server) =
        revived.into_inner().unwrap().expect("revival thread ran");

    assert!(
        report.completed > 0,
        "the loop must keep completing requests across the revival"
    );
    assert_eq!(
        stale_reads.load(Ordering::Relaxed),
        0,
        "no request may ever see pre-outage bits: the reviving victim \
         must stay out of placement until its catch-up drains"
    );

    // Promotion lands on every survivor (each runs its own handshake
    // from its own store), and the victim's disk converges to the
    // re-published manifest.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !survivors
        .iter()
        .all(|&s| sets[s].is_alive(victim) && !sets[s].is_reviving(victim))
    {
        assert!(
            Instant::now() < deadline,
            "survivors did not promote the revived victim within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while revived_gateway.store().manifest().unwrap() != gateways[heir].store().manifest().unwrap()
    {
        assert!(
            Instant::now() < deadline,
            "the revived store did not converge to the heir's manifest within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // A fresh client (all-alive view) routes the load key straight to the
    // revived victim: post-promotion it must serve the *re-published*
    // bits, bit-identical to the heir — and the untouched keys still
    // serve their pre-outage bits.
    let mut after_client = shard_client();
    for (request, expected) in load_probes.iter().zip(fresh_bits.iter()) {
        let response = after_client.estimate(request).unwrap();
        assert_eq!(
            response.cost_ms.to_bits(),
            *expected,
            "the revived owner must serve the re-published state bit-identically"
        );
    }
    for (request, expected) in other_probes.iter().zip(other_bits.iter()) {
        let response = after_client.estimate(request).unwrap();
        assert_eq!(
            response.cost_ms.to_bits(),
            *expected,
            "keys untouched by the outage must be unchanged"
        );
    }
    assert!(
        after_client.replicas().is_alive(victim),
        "nothing the fresh client saw may have looked dead"
    );

    // The catch-up really ran: each survivor exchanged a manifest and
    // completed a revival, the divergent snapshot + weights were
    // re-shipped at least once in total, and the counters surface
    // operator-visibly through GatewayStats.replication.
    let mut total_reshipped = 0u64;
    for &s in &survivors {
        let stats = replicators[s].as_ref().unwrap().stats();
        assert!(
            stats.manifests_exchanged >= 1,
            "survivor {s} must have interrogated the revived peer"
        );
        assert!(
            stats.revivals >= 1,
            "survivor {s} must have completed a revival"
        );
        assert_eq!(stats.ships_rejected, 0, "no re-ship may have been rejected");
        total_reshipped += stats.keys_reshipped;
        let health = gateways[s].stats().replication;
        assert_eq!(health.manifests_exchanged, stats.manifests_exchanged);
        assert_eq!(health.keys_reshipped, stats.keys_reshipped);
        assert_eq!(health.revivals, stats.revivals);
        assert_eq!(
            health.ships_dropped,
            replicators[s].as_ref().unwrap().stats().ships_dropped,
            "queue drops surface through the gateway too"
        );
    }
    assert!(
        total_reshipped >= 2,
        "the stale snapshot and the stale weights must both have been re-shipped, \
         got {total_reshipped}"
    );

    // Teardown; the revived server answered manifest interrogations and
    // served post-promotion traffic.
    drop(revived_replicator);
    let revived_stats = revived_server.join().unwrap();
    assert!(
        revived_stats.manifests_served >= 1,
        "the revived server must have answered at least one manifest request"
    );
    assert!(
        revived_stats.responses_ok >= 1,
        "the revived server must have served requests after promotion"
    );
    assert_eq!(
        revived_stats.ships_rejected, 0,
        "the revived server must have accepted every catch-up re-ship"
    );
    drop(revived_set);
    drop(revived_gateway);
    for server in servers.iter_mut() {
        if let Some(handle) = server.take() {
            handle.join().unwrap();
        }
    }
}

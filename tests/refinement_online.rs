//! Acceptance tests of the online refinement subsystem — the second half
//! of the paper's Table VII transfer loop, run through the serving front
//! door:
//!
//! * **convergence**: a shard warm-started from a neighbour's snapshot
//!   (`Transferred`) refines itself purely from streamed observed labels,
//!   is promoted to `TrainedHere` exactly once, converges toward a
//!   from-scratch locally-fitted baseline, and survives a gateway restart
//!   bit-identically (`LoadedFromDisk` + `refined`);
//! * **promotion race**: estimate threads racing concurrent feedback
//!   writers never observe a provenance regression or a torn snapshot, and
//!   a trigger refits at most once;
//! * **deadlines**: an effectively-expired deadline fails typed and
//!   promptly even while the shard is wedged in slow inference.

use qcfe::core::cost_model::CostModel;
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::MscnEstimator;
use qcfe::core::model_codec::PersistedModel;
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind, ExperimentContext};
use qcfe::core::snapshot::FeatureSnapshot;
use qcfe::db::executor::ExecutedQuery;
use qcfe::db::plan::{OperatorKind, PhysicalOp, PlanNode};
use qcfe::db::DbEnvironment;
use qcfe::serve::prelude::*;
use qcfe::workloads::BenchmarkKind;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const KIND: BenchmarkKind = BenchmarkKind::Sysbench;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qcfe-refine-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two labeled environments: A (the published neighbour) and B (the cold
/// environment that must refine itself).
fn two_env_ctx() -> ExperimentContext {
    let cfg = ContextConfig {
        environments: 2,
        queries_per_env: 60,
        template_scale: 1,
        seed: 91,
        data_scale: KIND.quick_scale(),
    };
    prepare_context(KIND, &cfg)
}

fn train_mscn(ctx: &ExperimentContext) -> MscnEstimator {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, _) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        15,
        &mut rng,
    );
    model
}

/// Mean absolute log-ratio between two prediction vectors (0 = identical).
fn mean_log_gap(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x.max(1e-9) / y.max(1e-9)).ln().abs())
        .sum();
    sum / a.len() as f64
}

/// Tentpole acceptance: warm-start env B from env A, stream B's executed
/// queries through `record_execution`, and watch the full lifecycle —
/// `Transferred` → refit → `TrainedHere` (exactly one promotion), estimates
/// converging toward a from-scratch B-fitted baseline, and the refit
/// snapshot surviving a gateway restart bit-identically with
/// `LoadedFromDisk` + `refined` provenance.
#[test]
fn transferred_shard_converges_and_survives_restart() {
    let ctx = two_env_ctx();
    let env_a = ctx.workload.environments[0].clone();
    let env_b = ctx.workload.environments[1].clone();
    assert_ne!(env_a.fingerprint(), env_b.fingerprint());
    let snapshot_a = ctx.snapshots_fso[0].clone().expect("A fitted");
    let model = train_mscn(&ctx);
    let key_b = ModelKey::new(KIND, EstimatorKind::QcfeMscn, env_b.fingerprint());

    let dir = temp_dir("converge");
    let gateway = QcfeGateway::builder(&dir)
        .refinement(RefinementConfig {
            // B's 60 labeled queries yield ~108 operator samples: one
            // trigger fires mid-stream, a second cannot.
            refit_threshold: 60,
            min_drift: 0.0,
            buffer_capacity: 8192,
        })
        .build()
        .unwrap();
    gateway.publish_snapshot(KIND, &env_a, &snapshot_a).unwrap();
    // B's weights are persisted (QCFW) so the restarted gateway can serve
    // without retraining; B has no snapshot of its own yet.
    gateway
        .publish_model(key_b, PersistedModel::Mscn(model.clone()))
        .unwrap();

    let b_queries: Vec<_> = ctx
        .workload
        .for_environment(1)
        .iter()
        .map(|q| q.executed.clone())
        .collect();
    assert!(b_queries.len() >= 50, "need a real label stream");
    let eval_plans: Vec<PlanNode> = b_queries.iter().take(20).map(|e| e.root.clone()).collect();

    // The from-scratch baseline: B's snapshot fitted from exactly the
    // labels that will be streamed, and the model's predictions under it.
    let baseline = FeatureSnapshot::fit_from_executions(&b_queries);
    let baseline_preds: Vec<f64> = eval_plans
        .iter()
        .map(|p| model.predict_plan(p, Some(&baseline)))
        .collect();

    // Phase 1: cold environment serves under the transferred snapshot.
    let before: Vec<f64> = eval_plans
        .iter()
        .map(|plan| {
            let response = gateway
                .estimate(EstimateRequest::new(KIND, env_b.clone(), plan.clone()))
                .unwrap();
            match response.provenance.snapshot_origin {
                SnapshotOrigin::Transferred { source, .. } => {
                    assert_eq!(source, env_a.fingerprint())
                }
                other => panic!("expected a transfer, got {other:?}"),
            }
            assert!(!response.provenance.refined);
            response.cost_ms
        })
        .collect();

    // Phase 2: stream B's own observed executions. Provenance must flip
    // exactly once across the whole stream.
    let mut refits = 0;
    let mut promotions = 0;
    for executed in &b_queries {
        let outcome = gateway.record_execution(KIND, &env_b, executed).unwrap();
        assert_eq!(outcome.shards, 1, "the resident shard owns the labels");
        refits += outcome.refits;
        promotions += outcome.promotions;
    }
    assert!(refits >= 1, "the label stream must trigger a refit");
    assert_eq!(promotions, 1, "provenance flips exactly once");
    let stats = gateway.stats();
    assert_eq!(stats.promotions, 1);
    assert_eq!(stats.refits as usize, refits);

    // Phase 3: the same shard — not restarted — now serves refined,
    // locally-fitted estimates.
    let after: Vec<f64> = eval_plans
        .iter()
        .map(|plan| {
            let response = gateway
                .estimate(EstimateRequest::new(KIND, env_b.clone(), plan.clone()))
                .unwrap();
            assert_eq!(
                response.provenance.snapshot_origin,
                SnapshotOrigin::TrainedHere,
                "promoted shard serves as trained-here"
            );
            assert!(response.provenance.refined);
            assert!(!response.provenance.cold_start, "no restart involved");
            response.cost_ms
        })
        .collect();

    // Convergence, in snapshot space: the persisted refit snapshot is
    // closer to the from-scratch baseline than the transferred one was.
    let refit_snapshot = gateway
        .store()
        .load(KIND, env_b.fingerprint())
        .unwrap()
        .expect("refit snapshot persisted under B's own fingerprint");
    assert!(refit_snapshot.refined, "persisted provenance bit");
    let transferred_gap = snapshot_a.relative_difference(&baseline);
    let refined_gap = refit_snapshot.relative_difference(&baseline);
    assert!(
        refined_gap < transferred_gap,
        "refit snapshot must move toward the local baseline \
         (refined gap {refined_gap:.4} vs transferred gap {transferred_gap:.4})"
    );

    // Convergence, in estimate space: post-refit estimates sit closer to
    // the baseline-model predictions than the transferred ones did.
    let before_gap = mean_log_gap(&before, &baseline_preds);
    let after_gap = mean_log_gap(&after, &baseline_preds);
    assert!(
        after_gap < before_gap,
        "estimates must converge toward the from-scratch baseline \
         (after {after_gap:.4} vs before {before_gap:.4})"
    );

    // Phase 4: restart. The rebuilt gateway serves B bit-identically from
    // the persisted refit snapshot + QCFW weights, with the disk-load and
    // refinement provenance intact.
    drop(gateway);
    let restarted = QcfeGateway::builder(&dir).build().unwrap();
    for (plan, &expected) in eval_plans.iter().zip(&after) {
        let response = restarted
            .estimate(EstimateRequest::new(KIND, env_b.clone(), plan.clone()))
            .unwrap();
        assert_eq!(
            response.cost_ms.to_bits(),
            expected.to_bits(),
            "restart must serve the refit snapshot bit-identically"
        );
        assert!(
            response.provenance.snapshot_origin.is_from_disk(),
            "weights and snapshot both come from disk, got {:?}",
            response.provenance.snapshot_origin
        );
        assert!(
            response.provenance.refined,
            "the refined bit must survive the restart"
        );
        assert!(response.provenance.model_from_disk);
    }
    assert_eq!(restarted.stats().model_loads, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A deterministic stub whose prediction is the snapshot's SeqScan formula
/// applied to the plan's `est_rows`: the race test can check every served
/// estimate against the only two snapshots that ever existed, bit-exactly.
#[derive(Debug)]
struct SnapshotSlope;

impl CostModel for SnapshotSlope {
    fn name(&self) -> &'static str {
        "SnapshotSlope"
    }
    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        snapshot.map_or(-1.0, |s| {
            s.predict(OperatorKind::SeqScan, root.est_rows, 0.0)
        })
    }
}

fn scan_plan(rows: f64) -> PlanNode {
    let mut node = PlanNode::new(PhysicalOp::SeqScan { table: "t".into() }, vec![]);
    node.est_rows = rows;
    node.est_cost = rows * 0.01;
    node
}

fn executed_scan(rows: f64, slope: f64, intercept: f64) -> ExecutedQuery {
    let mut node = scan_plan(rows);
    node.actual_rows = rows;
    node.actual_self_ms = slope * rows + intercept;
    ExecutedQuery {
        total_ms: node.actual_self_ms,
        root: node,
    }
}

fn line_snapshot(slope: f64, intercept: f64) -> FeatureSnapshot {
    let samples: Vec<qcfe::core::snapshot::OperatorSample> = (1..=40)
        .map(|i| qcfe::core::snapshot::OperatorSample {
            kind: OperatorKind::SeqScan,
            n1: (i * 50) as f64,
            n2: 0.0,
            self_ms: slope * (i * 50) as f64 + intercept,
        })
        .collect();
    FeatureSnapshot::fit(&samples)
}

/// Satellite acceptance: 8 estimate threads race concurrent feedback
/// writers on one transferred shard. Invariants under the race:
///
/// * provenance never regresses `TrainedHere → Transferred` (per-thread
///   observation order);
/// * no torn snapshot is ever served — every estimate matches the
///   transferred snapshot or the refit snapshot bit-exactly, and once a
///   thread sees the refit snapshot it never sees the old one again;
/// * the single trigger refits at most once (fewer than two thresholds of
///   labels are streamed), and exactly one promotion happens.
#[test]
fn promotion_race_never_regresses_or_serves_torn_snapshots() {
    let dir = temp_dir("race");
    let mut neighbour = DbEnvironment::reference();
    neighbour.os_overhead = 1.05;
    let mut cold = DbEnvironment::reference();
    cold.os_overhead = 1.0501;
    let snapshot_a = line_snapshot(0.002, 0.25);

    const THRESHOLD: usize = 64;
    const WRITERS: usize = 4;
    const EXECUTIONS_PER_WRITER: usize = 24; // 96 samples: one trigger, never two
    const {
        assert!(WRITERS * EXECUTIONS_PER_WRITER >= THRESHOLD);
        assert!(WRITERS * EXECUTIONS_PER_WRITER < 2 * THRESHOLD);
    }

    let key = ModelKey::new(KIND, EstimatorKind::Mscn, cold.fingerprint());
    let gateway = Arc::new(
        QcfeGateway::builder(&dir)
            .with_model(key, Arc::new(SnapshotSlope))
            .refinement(RefinementConfig {
                refit_threshold: THRESHOLD,
                min_drift: 0.0,
                buffer_capacity: 1024,
            })
            .build()
            .unwrap(),
    );
    gateway
        .publish_snapshot(KIND, &neighbour, &snapshot_a)
        .unwrap();

    // Cold-start the shard before the race so every feedback write has an
    // owner.
    let first = gateway
        .estimate(
            EstimateRequest::new(KIND, cold.clone(), scan_plan(50.0))
                .with_estimator(EstimatorKind::Mscn),
        )
        .unwrap();
    assert!(first.provenance.snapshot_origin.is_transferred());

    const ESTIMATORS: usize = 8;
    const ESTIMATES_PER_THREAD: usize = 60;
    // Each estimate thread uses its own fixed plan so its expected
    // predictions under either snapshot are two known constants.
    let thread_rows = |t: usize| (t as f64 + 1.0) * 50.0;

    let observations: Vec<Vec<(bool, u64)>> = std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let gateway = Arc::clone(&gateway);
            let cold = cold.clone();
            scope.spawn(move || {
                for j in 0..EXECUTIONS_PER_WRITER {
                    // Every label sits on one line, at varying cardinality.
                    let n = 10.0 * ((w * EXECUTIONS_PER_WRITER + j) % 37 + 1) as f64;
                    gateway
                        .record_execution(KIND, &cold, &executed_scan(n, 0.02, 0.5))
                        .unwrap();
                }
            });
        }
        let estimators: Vec<_> = (0..ESTIMATORS)
            .map(|t| {
                let gateway = Arc::clone(&gateway);
                let cold = cold.clone();
                scope.spawn(move || {
                    let mut seen = Vec::with_capacity(ESTIMATES_PER_THREAD);
                    for _ in 0..ESTIMATES_PER_THREAD {
                        let response = gateway
                            .estimate(
                                EstimateRequest::new(KIND, cold.clone(), scan_plan(thread_rows(t)))
                                    .with_estimator(EstimatorKind::Mscn),
                            )
                            .unwrap();
                        seen.push((
                            response.provenance.snapshot_origin == SnapshotOrigin::TrainedHere,
                            response.cost_ms.to_bits(),
                        ));
                    }
                    seen
                })
            })
            .collect();
        estimators.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = gateway.stats();
    assert_eq!(stats.refits, 1, "one trigger, at most one refit");
    assert_eq!(stats.promotions, 1, "exactly one promotion");
    assert_eq!(
        stats.labels_recorded as usize,
        WRITERS * EXECUTIONS_PER_WRITER
    );

    // Post-race ground truth: the only two snapshots that ever served.
    let snapshot_b = gateway
        .store()
        .load(KIND, cold.fingerprint())
        .unwrap()
        .expect("refit persisted");
    assert!(snapshot_b.refined);
    let final_estimate = gateway
        .estimate(
            EstimateRequest::new(KIND, cold.clone(), scan_plan(thread_rows(0)))
                .with_estimator(EstimatorKind::Mscn),
        )
        .unwrap();
    assert_eq!(
        final_estimate.provenance.snapshot_origin,
        SnapshotOrigin::TrainedHere
    );
    assert!(final_estimate.provenance.refined);

    for (t, thread) in observations.iter().enumerate() {
        let pred_a = SnapshotSlope
            .predict_plan(&scan_plan(thread_rows(t)), Some(&snapshot_a))
            .to_bits();
        let pred_b = SnapshotSlope
            .predict_plan(&scan_plan(thread_rows(t)), Some(&snapshot_b))
            .to_bits();
        assert_ne!(pred_a, pred_b, "the refit must actually move estimates");
        let mut promoted_seen = false;
        let mut refit_served = false;
        for &(trained_here, bits) in thread {
            assert!(
                bits == pred_a || bits == pred_b,
                "thread {t}: torn estimate {bits:#x} matches neither snapshot"
            );
            if promoted_seen {
                assert!(
                    trained_here,
                    "thread {t}: provenance regressed TrainedHere -> Transferred"
                );
            }
            promoted_seen |= trained_here;
            if refit_served {
                assert_eq!(
                    bits, pred_b,
                    "thread {t}: old snapshot served after the swap"
                );
            }
            refit_served |= bits == pred_b;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite acceptance (deadline gap): a deadline that is effectively
/// already spent fails typed and *promptly* while the shard's only worker
/// is wedged in slow inference — the caller is never queued behind it.
#[test]
fn exhausted_deadline_fails_promptly_while_the_shard_is_wedged() {
    #[derive(Debug)]
    struct SlowModel;
    impl CostModel for SlowModel {
        fn name(&self) -> &'static str {
            "SlowModel"
        }
        fn predict_plan(&self, _: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
            std::thread::sleep(Duration::from_millis(400));
            1.0
        }
    }
    let dir = temp_dir("deadline");
    let env = DbEnvironment::reference();
    let key = ModelKey::new(KIND, EstimatorKind::Mscn, env.fingerprint());
    let gateway = Arc::new(
        QcfeGateway::builder(&dir)
            .service_config(ServiceConfig {
                workers: 1,
                queue_capacity: 16,
                max_batch: 1,
                encoding_cache_capacity: 16,
            })
            .with_model(key, Arc::new(SlowModel))
            .build()
            .unwrap(),
    );
    // Wedge the single worker with a background request.
    let background = {
        let gateway = Arc::clone(&gateway);
        let env = env.clone();
        std::thread::spawn(move || {
            gateway
                .estimate(
                    EstimateRequest::new(KIND, env, scan_plan(1.0))
                        .with_estimator(EstimatorKind::Mscn),
                )
                .unwrap()
        })
    };
    // Give the worker time to pick the background request up.
    std::thread::sleep(Duration::from_millis(50));

    for deadline in [Duration::ZERO, Duration::from_millis(5)] {
        let waited = Instant::now();
        let request = EstimateRequest::new(KIND, env.clone(), scan_plan(2.0))
            .with_estimator(EstimatorKind::Mscn)
            .with_deadline(deadline);
        match gateway.estimate(request) {
            Err(QcfeError::DeadlineExceeded {
                deadline: reported, ..
            }) => assert_eq!(reported, deadline),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            waited.elapsed() < Duration::from_millis(100),
            "deadline {deadline:?} must fail promptly, not queue behind the \
             wedged worker ({:?})",
            waited.elapsed()
        );
    }
    assert_eq!(background.join().unwrap().cost_ms, 1.0);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Cross-crate integration tests: benchmark generation → planning →
//! execution simulation → feature engineering → learned estimation.

use qcfe::core::pipeline::{
    prepare_context, run_method, ContextConfig, EstimatorKind, RunConfig, SnapshotSource,
};
use qcfe::core::reduction::ReductionMethod;
use qcfe::db::prelude::*;
use qcfe::workloads::BenchmarkKind;
use rand::SeedableRng;

fn quick_ctx(kind: BenchmarkKind) -> qcfe::core::pipeline::ExperimentContext {
    let cfg = ContextConfig {
        environments: 2,
        queries_per_env: 50,
        template_scale: 1,
        seed: 77,
        data_scale: kind.quick_scale(),
    };
    prepare_context(kind, &cfg)
}

#[test]
fn every_benchmark_template_plans_and_executes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for kind in BenchmarkKind::ALL {
        let bench = kind.build(kind.quick_scale() / 2.0, 3);
        let db = bench.build_database(DbEnvironment::reference());
        for template in &bench.templates {
            let q = template.instantiate(&mut rng);
            let plan = db
                .plan(&q)
                .unwrap_or_else(|e| panic!("{}: {e}", template.name));
            assert!(plan.est_cost > 0.0);
            let executed = db.execute(&q, &mut rng).unwrap();
            assert!(executed.total_ms > 0.0);
            assert!(executed.root.node_count() >= plan.node_count());
        }
    }
}

#[test]
fn environment_changes_shift_simulated_costs() {
    let kind = BenchmarkKind::Sysbench;
    let bench = kind.build(kind.quick_scale(), 5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let query = bench.templates[1].instantiate(&mut rng);

    // A slow environment (HDD, tiny cache) vs a fast one (NVMe, big cache).
    let mut slow_env = DbEnvironment::reference();
    slow_env.hardware = HardwareProfile::cloud_small();
    slow_env.knobs.shared_buffers_mb = 16;
    let fast_env = DbEnvironment {
        hardware: HardwareProfile::h2(),
        ..DbEnvironment::reference()
    };

    let run_avg = |env: DbEnvironment| {
        let db = bench.build_database(env);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut total = 0.0;
        for _ in 0..10 {
            total += db.execute(&query, &mut rng).unwrap().total_ms;
        }
        total / 10.0
    };
    let slow = run_avg(slow_env);
    let fast = run_avg(fast_env);
    assert!(
        slow > fast * 1.3,
        "slow environment ({slow:.3} ms) should be clearly slower than fast ({fast:.3} ms)"
    );
}

#[test]
fn qcfe_pipeline_beats_postgres_baseline_on_sysbench() {
    let ctx = quick_ctx(BenchmarkKind::Sysbench);
    // 100 samples / 60 iterations gives the learned model a comfortable
    // margin over the analytical baseline across PRNG seeds.
    let run = RunConfig::new(100, 60, 11);
    let pg = run_method(&ctx, EstimatorKind::Pgsql, &run);
    let qcfe = run_method(&ctx, EstimatorKind::QcfeMscn, &run);
    assert!(
        qcfe.accuracy.mean_q_error < pg.accuracy.mean_q_error,
        "QCFE(mscn) q-error {} must beat PGSQL {}",
        qcfe.accuracy.mean_q_error,
        pg.accuracy.mean_q_error
    );
    assert!(qcfe.accuracy.pearson.is_finite());
    assert!(qcfe.accuracy.median_q_error <= pg.accuracy.median_q_error);
}

#[test]
fn snapshot_sources_and_reductions_compose() {
    let ctx = quick_ctx(BenchmarkKind::Sysbench);
    for (source, reduction) in [
        (SnapshotSource::Original, ReductionMethod::DiffProp),
        (SnapshotSource::Template, ReductionMethod::None),
        (SnapshotSource::Original, ReductionMethod::Gradient),
    ] {
        let run = RunConfig {
            snapshot_source: source,
            reduction,
            ..RunConfig::new(80, 10, 13)
        };
        let result = run_method(&ctx, EstimatorKind::QcfeMscn, &run);
        assert!(result.accuracy.mean_q_error.is_finite());
        assert!(result.accuracy.mean_q_error >= 1.0);
    }
}

#[test]
fn simulated_collection_cost_favours_simplified_templates() {
    let ctx = quick_ctx(BenchmarkKind::Tpch);
    assert!(ctx.fst_collection_ms < ctx.fso_collection_ms);
    assert!(ctx.simplified_template_count > 0);
    // both snapshot flavours must cover the scan operators
    for snap in ctx.snapshots_fst.iter().flatten() {
        assert!(!snap.covered_operators().is_empty());
    }
}

//! Acceptance tests of the `qcfe-net` front end: the `QCFP` wire codec
//! under a seeded 1000-case round-trip/corruption property sweep, and the
//! reactor server driven live over Unix-domain and TCP sockets — ≥64
//! concurrent pipelined clients, responses bit-identical to in-process
//! `QcfeGateway::estimate` calls, typed rejection of malformed frames,
//! the wire-level deadline clamp, and graceful shutdown draining
//! in-flight requests.

use qcfe::core::cost_model::CostModel;
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::MscnEstimator;
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind, ExperimentContext};
use qcfe::db::env::{DbEnvironment, EnvFingerprint, HardwareProfile};
use qcfe::db::expr::{ColumnRef, CompareOp, JoinCondition, Predicate};
use qcfe::db::plan::{PhysicalOp, PlanNode};
use qcfe::db::query::Aggregate;
use qcfe::db::types::Value;
use qcfe::net::client::{ClientError, QcfeClient};
use qcfe::net::server::NetServerBuilder;
use qcfe::net::wire::{
    self, Frame, WireError, WireEstimate, WireFault, WireRequest, WireResponse, MAX_DEADLINE_US,
    PRELUDE_LEN,
};
use qcfe::nn::codec::crc32;
use qcfe::serve::prelude::*;
use qcfe::serve::SnapshotOrigin;
use qcfe::workloads::BenchmarkKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const KIND: BenchmarkKind = BenchmarkKind::Sysbench;

/// The codec property sweep runs the same case count as the `QCFW`
/// weight-codec properties: the acceptance bar for the wire format is
/// "any frame, bit-exact; any corruption, typed rejection".
const QCFP_CASES: usize = 1000;

// ---------------------------------------------------------------------------
// Seeded generators for the property sweep.
// ---------------------------------------------------------------------------

/// Full-width draws (the workspace `rand` shim has no `gen()`; an
/// inclusive full range falls through to the raw 64-bit stream).
fn any_u64(rng: &mut StdRng) -> u64 {
    rng.gen_range(0..=u64::MAX)
}

fn any_u32(rng: &mut StdRng) -> u32 {
    rng.gen_range(0..=u32::MAX)
}

fn any_i64(rng: &mut StdRng) -> i64 {
    any_u64(rng) as i64
}

fn random_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0u8..26)))
        .collect()
}

fn random_column(rng: &mut StdRng) -> ColumnRef {
    ColumnRef::new(random_string(rng), random_string(rng))
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u8..6) {
        0 => Value::Int(any_i64(rng)),
        1 => Value::Float(rng.gen_range(-1e9f64..1e9)),
        2 => Value::Text(random_string(rng)),
        3 => Value::Date(rng.gen_range(-100_000i64..100_000)),
        4 => Value::Bool(rng.gen_bool(0.5)),
        _ => Value::Null,
    }
}

fn random_predicate(rng: &mut StdRng) -> Predicate {
    match rng.gen_range(0u8..4) {
        0 => Predicate::Compare {
            column: random_column(rng),
            op: CompareOp::ALL[rng.gen_range(0..CompareOp::ALL.len())],
            value: random_value(rng),
        },
        1 => Predicate::Between {
            column: random_column(rng),
            low: random_value(rng),
            high: random_value(rng),
        },
        2 => Predicate::InList {
            column: random_column(rng),
            values: (0..rng.gen_range(0usize..5))
                .map(|_| random_value(rng))
                .collect(),
        },
        _ => Predicate::Like {
            column: random_column(rng),
            pattern: format!("%{}%", random_string(rng)),
        },
    }
}

fn random_join(rng: &mut StdRng) -> JoinCondition {
    JoinCondition {
        left: random_column(rng),
        right: random_column(rng),
    }
}

fn random_plan(rng: &mut StdRng, depth: usize) -> PlanNode {
    let leaf = depth == 0 || rng.gen_bool(0.4);
    let (op, children) = if leaf {
        let op = if rng.gen_bool(0.5) {
            PhysicalOp::SeqScan {
                table: random_string(rng),
            }
        } else {
            PhysicalOp::IndexScan {
                table: random_string(rng),
                column: random_string(rng),
            }
        };
        (op, vec![])
    } else {
        match rng.gen_range(0u8..7) {
            0 => (
                PhysicalOp::Sort {
                    keys: (0..rng.gen_range(0usize..4))
                        .map(|_| random_column(rng))
                        .collect(),
                },
                vec![random_plan(rng, depth - 1)],
            ),
            1 => (
                PhysicalOp::Aggregate {
                    group_by: (0..rng.gen_range(0usize..3))
                        .map(|_| random_column(rng))
                        .collect(),
                    functions: (0..rng.gen_range(0usize..3))
                        .map(|_| match rng.gen_range(0u8..5) {
                            0 => Aggregate::CountStar,
                            1 => Aggregate::Sum(random_column(rng)),
                            2 => Aggregate::Avg(random_column(rng)),
                            3 => Aggregate::Min(random_column(rng)),
                            _ => Aggregate::Max(random_column(rng)),
                        })
                        .collect(),
                },
                vec![random_plan(rng, depth - 1)],
            ),
            2 => (
                PhysicalOp::HashJoin {
                    condition: random_join(rng),
                },
                vec![random_plan(rng, depth - 1), random_plan(rng, depth - 1)],
            ),
            3 => (
                PhysicalOp::MergeJoin {
                    condition: random_join(rng),
                },
                vec![random_plan(rng, depth - 1), random_plan(rng, depth - 1)],
            ),
            4 => (
                PhysicalOp::NestedLoop {
                    condition: rng.gen_bool(0.5).then(|| random_join(rng)),
                },
                vec![random_plan(rng, depth - 1), random_plan(rng, depth - 1)],
            ),
            5 => (PhysicalOp::Materialize, vec![random_plan(rng, depth - 1)]),
            _ => (
                PhysicalOp::Limit {
                    count: any_u64(rng),
                },
                vec![random_plan(rng, depth - 1)],
            ),
        }
    };
    let mut node = PlanNode::new(op, children);
    node.predicates = (0..rng.gen_range(0usize..3))
        .map(|_| random_predicate(rng))
        .collect();
    node.est_rows = rng.gen_range(0.0f64..1e8);
    node.est_width = rng.gen_range(1.0f64..512.0);
    node.est_cost = rng.gen_range(0.0f64..1e9);
    node.actual_rows = rng.gen_range(0.0f64..1e8);
    node.actual_self_ms = rng.gen_range(0.0f64..1e5);
    node.actual_total_ms = rng.gen_range(0.0f64..1e6);
    node
}

fn random_environment(rng: &mut StdRng) -> DbEnvironment {
    let hardware = HardwareProfile::sample(rng);
    DbEnvironment::sample_knob_configs(1, hardware, rng)
        .pop()
        .expect("one environment")
}

fn random_request(rng: &mut StdRng) -> WireRequest {
    WireRequest {
        request_id: any_u64(rng),
        benchmark: BenchmarkKind::ALL[rng.gen_range(0..BenchmarkKind::ALL.len())],
        estimator: EstimatorKind::ALL[rng.gen_range(0..EstimatorKind::ALL.len())],
        allow_transfer: rng.gen_bool(0.5),
        shed_load: rng.gen_bool(0.5),
        deadline_us: rng
            .gen_bool(0.5)
            .then(|| rng.gen_range(0..=MAX_DEADLINE_US)),
        tenant: if rng.gen_bool(0.5) {
            rng.gen_range(1..=u32::MAX)
        } else {
            0
        },
        environment: random_environment(rng),
        plan: random_plan(rng, 3),
    }
}

fn random_response(rng: &mut StdRng) -> WireResponse {
    let outcome = if rng.gen_bool(0.6) {
        // Special float shapes (infinities, signed zero, subnormals) mixed
        // with ordinary magnitudes: the codec must carry each bit pattern.
        let cost_ms = match rng.gen_range(0u8..5) {
            0 => f64::INFINITY,
            1 => -0.0,
            2 => f64::MIN_POSITIVE / 2.0,
            _ => rng.gen_range(-1e6f64..1e6),
        };
        Ok(WireEstimate {
            cost_ms,
            batch_size: any_u32(rng),
            encoding_cache_hit: rng.gen_bool(0.5),
            model_from_disk: rng.gen_bool(0.5),
            refined: rng.gen_bool(0.5),
            cold_start: rng.gen_bool(0.5),
            benchmark: BenchmarkKind::ALL[rng.gen_range(0..BenchmarkKind::ALL.len())],
            estimator: EstimatorKind::ALL[rng.gen_range(0..EstimatorKind::ALL.len())],
            fingerprint: any_u64(rng),
            origin: match rng.gen_range(0u8..4) {
                0 => SnapshotOrigin::TrainedHere,
                1 => SnapshotOrigin::Transferred {
                    source: EnvFingerprint(any_u64(rng)),
                    distance: rng.gen_range(0.0f64..10.0),
                },
                2 => SnapshotOrigin::LoadedFromDisk,
                _ => SnapshotOrigin::None,
            },
            service_us: any_u64(rng),
            total_us: any_u64(rng),
        })
    } else {
        Err(match rng.gen_range(0u8..7) {
            0 => WireFault::ServiceClosed,
            1 => WireFault::QueueFull {
                depth: any_u64(rng),
                limit: any_u64(rng),
            },
            2 => WireFault::SnapshotMissing {
                benchmark: BenchmarkKind::ALL[rng.gen_range(0..BenchmarkKind::ALL.len())],
                fingerprint: any_u64(rng),
            },
            3 => WireFault::ModelMissing {
                benchmark: BenchmarkKind::ALL[rng.gen_range(0..BenchmarkKind::ALL.len())],
                estimator: EstimatorKind::ALL[rng.gen_range(0..EstimatorKind::ALL.len())],
                fingerprint: any_u64(rng),
            },
            4 => WireFault::DeadlineExceeded {
                elapsed_us: any_u64(rng),
                deadline_us: any_u64(rng),
            },
            5 => WireFault::Store {
                message: random_string(rng),
            },
            _ => WireFault::BadRequest {
                message: random_string(rng),
            },
        })
    };
    WireResponse {
        request_id: any_u64(rng),
        outcome,
    }
}

// ---------------------------------------------------------------------------
// Property sweep: 1000 seeded round-trip + corruption cases.
// ---------------------------------------------------------------------------

/// Every random frame decodes back to an equal value AND re-encodes to the
/// identical byte string (bit identity — raw `f64` bits, not semantic
/// equality); every corruption — truncation, flipped magic, unknown
/// version, a random single-byte flip — is rejected with a typed error,
/// never a panic.
#[test]
fn qcfp_frames_round_trip_bit_exactly_and_reject_corruption() {
    let mut rng = StdRng::seed_from_u64(0xC0FE);
    for case in 0..QCFP_CASES {
        let bytes = if case % 2 == 0 {
            let request = random_request(&mut rng);
            let bytes = wire::encode_request(&request).expect("encodable");
            match wire::decode_frame(&bytes).expect("decodable") {
                Frame::Request(decoded) => {
                    assert_eq!(*decoded, request, "case {case}: structural round-trip");
                    assert_eq!(
                        wire::encode_request(&decoded).expect("re-encodable"),
                        bytes,
                        "case {case}: bit-identical re-encode"
                    );
                }
                other => panic!("case {case}: wrong frame kind {other:?}"),
            }
            bytes
        } else {
            let response = random_response(&mut rng);
            let bytes = wire::encode_response(&response).expect("encodable");
            match wire::decode_frame(&bytes).expect("decodable") {
                Frame::Response(decoded) => {
                    assert_eq!(
                        wire::encode_response(&decoded).expect("re-encodable"),
                        bytes,
                        "case {case}: bit-identical re-encode"
                    );
                }
                other => panic!("case {case}: wrong frame kind {other:?}"),
            }
            bytes
        };
        assert_eq!(
            wire::frame_length(&bytes).expect("well-formed"),
            Some(bytes.len()),
            "case {case}: frame length self-describes"
        );

        match case % 4 {
            0 => {
                // Truncation at a random point is "incomplete", and a
                // truncated decode is a typed Truncated error.
                let cut = rng.gen_range(0..bytes.len());
                assert_eq!(
                    wire::frame_length(&bytes[..cut]).expect("prefix stays valid"),
                    None,
                    "case {case}: truncated frame reads as incomplete"
                );
                assert!(
                    wire::decode_frame(&bytes[..cut]).is_err(),
                    "case {case}: truncated frame must not decode"
                );
            }
            1 => {
                let mut corrupt = bytes.clone();
                let i = rng.gen_range(0usize..4);
                corrupt[i] ^= 1u8 << rng.gen_range(0u8..8);
                assert!(
                    matches!(wire::frame_length(&corrupt), Err(WireError::BadMagic(_))),
                    "case {case}: flipped magic must reject"
                );
            }
            2 => {
                let mut corrupt = bytes.clone();
                let version = rng.gen_range(2u32..u32::MAX);
                corrupt[4..8].copy_from_slice(&version.to_le_bytes());
                assert_eq!(
                    wire::frame_length(&corrupt),
                    Err(WireError::UnsupportedVersion(version)),
                    "case {case}: unknown version must reject"
                );
            }
            _ => {
                // A single flipped bit anywhere must yield a typed error
                // (CRC-32 catches every single-byte body corruption; the
                // prelude fields each have their own check).
                let mut corrupt = bytes.clone();
                let i = rng.gen_range(0..corrupt.len());
                corrupt[i] ^= 1u8 << rng.gen_range(0u8..8);
                assert!(
                    wire::decode_frame(&corrupt).is_err(),
                    "case {case}: single-byte flip at {i} must not decode"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Live-server fixtures.
// ---------------------------------------------------------------------------

fn ctx_with_envs(environments: usize) -> ExperimentContext {
    prepare_context(
        KIND,
        &ContextConfig {
            environments,
            queries_per_env: 30,
            template_scale: 1,
            seed: 91,
            data_scale: KIND.quick_scale(),
        },
    )
}

fn train_mscn(ctx: &ExperimentContext) -> Arc<dyn CostModel> {
    let mut rng = StdRng::seed_from_u64(8);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, _) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        12,
        &mut rng,
    );
    Arc::new(model)
}

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("qcfe-net-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::remove_file(&path);
    path
}

/// A gateway with every context environment published and served by one
/// deterministic MSCN model.
fn served_gateway(ctx: &ExperimentContext, dir: &PathBuf) -> Arc<QcfeGateway> {
    let model = train_mscn(ctx);
    let gateway = Arc::new(
        QcfeGateway::builder(dir)
            .service_config(ServiceConfig {
                workers: 2,
                queue_capacity: 256,
                max_batch: 16,
                encoding_cache_capacity: 1024,
            })
            .build()
            .unwrap(),
    );
    for (env, snapshot) in ctx
        .workload
        .environments
        .iter()
        .zip(ctx.snapshots_fso.iter())
    {
        gateway
            .publish_snapshot(KIND, env, snapshot.as_ref().expect("fitted"))
            .unwrap();
        gateway.register_model(
            ModelKey::new(KIND, EstimatorKind::QcfeMscn, env.fingerprint()),
            Arc::clone(&model),
        );
    }
    gateway
}

/// Tentpole acceptance criterion: `qcfe-net` serves ≥64 concurrent
/// pipelined Unix-domain clients from one reactor thread, and every
/// remote estimate is bit-identical to the same request made in-process
/// on the same gateway.
#[test]
fn uds_server_is_bit_identical_to_in_process_gateway_for_64_pipelined_clients() {
    const CLIENTS: usize = 64;
    const REQUESTS_PER_CLIENT: usize = 4;

    let ctx = ctx_with_envs(2);
    let dir = temp_path("uds-store");
    let gateway = served_gateway(&ctx, &dir);
    let socket = temp_path("uds.sock");
    let server = NetServerBuilder::new(Arc::clone(&gateway))
        .uds(&socket)
        .max_connections(CLIENTS + 8)
        .start()
        .unwrap();

    // Expected values straight from the in-process front door, same
    // gateway, same shards.
    let environments: Vec<Arc<DbEnvironment>> = ctx
        .workload
        .environments
        .iter()
        .map(|e| Arc::new(e.clone()))
        .collect();
    let plans: Vec<PlanNode> = ctx
        .workload
        .queries
        .iter()
        .take(REQUESTS_PER_CLIENT)
        .map(|q| q.executed.root.clone())
        .collect();
    let requests: Vec<EstimateRequest> = (0..CLIENTS)
        .flat_map(|c| {
            let env = Arc::clone(&environments[c % environments.len()]);
            plans
                .iter()
                .map(move |plan| EstimateRequest::new(KIND, Arc::clone(&env), plan.clone()))
        })
        .collect();
    let expected: Vec<EstimateResponse> = requests
        .iter()
        .map(|r| gateway.estimate(r.clone()).unwrap())
        .collect();

    std::thread::scope(|scope| {
        for client_index in 0..CLIENTS {
            let socket = &socket;
            let requests = &requests[client_index * REQUESTS_PER_CLIENT..][..REQUESTS_PER_CLIENT];
            let expected = &expected[client_index * REQUESTS_PER_CLIENT..][..REQUESTS_PER_CLIENT];
            scope.spawn(move || {
                let mut client = QcfeClient::connect_uds(socket).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                // Pipeline the whole batch before reaping anything.
                let ids: Vec<u64> = requests.iter().map(|r| client.send(r).unwrap()).collect();
                let mut answered = 0usize;
                while answered < requests.len() {
                    let response = client.recv().unwrap();
                    let slot = ids
                        .iter()
                        .position(|id| *id == response.request_id)
                        .expect("response id matches a sent request");
                    let estimate = response.outcome.expect("estimate, not a fault");
                    let want = &expected[slot];
                    assert_eq!(
                        estimate.cost_ms.to_bits(),
                        want.cost_ms.to_bits(),
                        "remote estimate must be bit-identical to in-process"
                    );
                    assert_eq!(
                        EnvFingerprint(estimate.fingerprint),
                        want.provenance.model_key.fingerprint,
                        "served by the same shard key"
                    );
                    assert_eq!(estimate.benchmark, want.provenance.model_key.benchmark);
                    assert_eq!(estimate.estimator, want.provenance.model_key.estimator);
                    answered += 1;
                }
            });
        }
    });

    let stats = server.join().unwrap();
    assert_eq!(stats.connections_accepted, CLIENTS as u64);
    assert_eq!(stats.responses_ok, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert_eq!(stats.responses_fault, 0);
    assert_eq!(stats.protocol_errors, 0);
    assert!(!socket.exists(), "socket file cleaned up on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same reactor serves TCP: a loopback round trip is bit-identical to
/// the in-process estimate, and a graceful shutdown drains before the
/// handle's join returns.
#[test]
fn tcp_round_trip_matches_in_process_and_shuts_down_gracefully() {
    let ctx = ctx_with_envs(1);
    let dir = temp_path("tcp-store");
    let gateway = served_gateway(&ctx, &dir);
    let server = NetServerBuilder::new(Arc::clone(&gateway))
        .tcp("127.0.0.1:0")
        .start()
        .unwrap();
    let addr = server.tcp_addrs()[0];

    let env = ctx.workload.environments[0].clone();
    let plan = ctx.workload.queries[0].executed.root.clone();
    let request = EstimateRequest::new(KIND, env, plan);
    let expected = gateway.estimate(request.clone()).unwrap();

    let mut client = QcfeClient::connect_tcp(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let response = client.estimate(&request).unwrap();
    assert_eq!(response.cost_ms.to_bits(), expected.cost_ms.to_bits());
    assert_eq!(response.provenance.model_key, expected.provenance.model_key);

    let stats = server.join().unwrap();
    assert_eq!(stats.responses_ok, 1);
    // The listener is gone after a graceful shutdown.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "no listener after shutdown"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed input over a live connection: a broken envelope gets a
/// best-effort error frame and the connection closes; a verified envelope
/// with an invalid payload gets a typed `BadRequest` with the authentic
/// request id and the connection survives to serve real traffic.
#[test]
fn malformed_frames_are_rejected_typed_over_the_wire() {
    let ctx = ctx_with_envs(1);
    let dir = temp_path("malformed-store");
    let gateway = served_gateway(&ctx, &dir);
    let socket = temp_path("malformed.sock");
    let server = NetServerBuilder::new(Arc::clone(&gateway))
        .uds(&socket)
        .start()
        .unwrap();

    let env = ctx.workload.environments[0].clone();
    let plan = ctx.workload.queries[0].executed.root.clone();
    let request = EstimateRequest::new(KIND, env, plan);

    // 1. Garbage bytes: error frame with id 0, then the server hangs up.
    {
        use std::io::{Read, Write};
        let mut raw = std::os::unix::net::UnixStream::connect(&socket).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        raw.write_all(b"definitely not a QCFP frame").unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match raw.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read error before close: {e}"),
            }
        }
        match wire::decode_frame(&buf).unwrap() {
            Frame::Response(response) => {
                assert_eq!(response.request_id, 0, "stream desync answers id 0");
                assert!(
                    matches!(response.outcome, Err(WireFault::BadRequest { .. })),
                    "expected BadRequest, got {:?}",
                    response.outcome
                );
            }
            other => panic!("expected a response frame, got {other:?}"),
        }
    }

    // 2. Valid envelope, hostile payload: patch the wire deadline beyond
    //    the 60 s clamp and re-seal the CRC. The server must answer a
    //    typed BadRequest naming the deadline, with the authentic id, and
    //    keep the connection serving.
    {
        let mut wire_request = WireRequest::from_estimate_request(77, &request).unwrap();
        wire_request.deadline_us = Some(1);
        let mut bytes = wire::encode_request(&wire_request).unwrap();
        // kind(1) + flags(1) + id(8) + benchmark(1) + estimator(1) +
        // options(1) + has_deadline(1) puts the micros field at body
        // offset 14.
        let offset = PRELUDE_LEN + 14;
        bytes[offset..offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&bytes[PRELUDE_LEN..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());

        use std::io::{Read, Write};
        let mut raw = std::os::unix::net::UnixStream::connect(&socket).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        raw.write_all(&bytes).unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let fault_frame = loop {
            if let Some(len) = wire::frame_length(&buf).unwrap() {
                break buf.drain(..len).collect::<Vec<u8>>();
            }
            let n = raw.read(&mut chunk).unwrap();
            assert!(n > 0, "server must answer, not hang up");
            buf.extend_from_slice(&chunk[..n]);
        };
        match wire::decode_frame(&fault_frame).unwrap() {
            Frame::Response(response) => {
                assert_eq!(response.request_id, 77, "authentic id echoed");
                match response.outcome {
                    Err(WireFault::BadRequest { message }) => {
                        assert!(
                            message.contains("deadline"),
                            "fault must name the deadline clamp: {message}"
                        );
                    }
                    other => panic!("expected BadRequest, got {other:?}"),
                }
            }
            other => panic!("expected a response frame, got {other:?}"),
        }

        // The connection survived: a well-formed request on the same
        // socket is answered normally.
        let good = wire::encode_request(&WireRequest::from_estimate_request(78, &request).unwrap())
            .unwrap();
        raw.write_all(&good).unwrap();
        let good_frame = loop {
            if let Some(len) = wire::frame_length(&buf).unwrap() {
                break buf.drain(..len).collect::<Vec<u8>>();
            }
            let n = raw.read(&mut chunk).unwrap();
            assert!(n > 0, "server must answer the follow-up");
            buf.extend_from_slice(&chunk[..n]);
        };
        match wire::decode_frame(&good_frame).unwrap() {
            Frame::Response(response) => {
                assert_eq!(response.request_id, 78);
                let estimate = response.outcome.expect("real estimate after a BadRequest");
                assert!(estimate.cost_ms.is_finite() && estimate.cost_ms > 0.0);
            }
            other => panic!("expected a response frame, got {other:?}"),
        }
    }

    // 3. The client-side half of the deadline clamp refuses to encode.
    let hostile = request
        .clone()
        .with_deadline(Duration::from_micros(MAX_DEADLINE_US + 1));
    let mut client = QcfeClient::connect_uds(&socket).unwrap();
    match client.estimate(&hostile) {
        Err(ClientError::Wire(WireError::DeadlineOutOfRange { .. })) => {}
        other => panic!("expected the encode-side clamp, got {other:?}"),
    }
    // An in-range deadline sails through.
    let bounded = request.with_deadline(Duration::from_secs(30));
    let response = client.estimate(&bounded).unwrap();
    assert!(response.cost_ms.is_finite() && response.cost_ms > 0.0);

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Listener tokens live below the connection token base (64); a builder
/// configured with more listeners than that is rejected up front —
/// otherwise the overflowing listener's token would collide with
/// connection slot 0 and its readiness events would be misdispatched.
#[test]
fn builder_rejects_more_listeners_than_the_token_space() {
    let dir = temp_path("listener-cap-store");
    let gateway = Arc::new(QcfeGateway::builder(&dir).build().unwrap());
    let mut builder = NetServerBuilder::new(gateway);
    for i in 0..65 {
        builder = builder.uds(temp_path(&format!("listener-cap-{i}.sock")));
    }
    match builder.start() {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("65 listeners must be rejected"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A request naming an unknown environment comes back as the typed
/// `SnapshotMissing` fault — the gateway's error taxonomy crosses the
/// wire intact.
#[test]
fn gateway_faults_cross_the_wire_typed() {
    let ctx = ctx_with_envs(1);
    let dir = temp_path("fault-store");
    let gateway = served_gateway(&ctx, &dir);
    let socket = temp_path("fault.sock");
    let server = NetServerBuilder::new(Arc::clone(&gateway))
        .uds(&socket)
        .start()
        .unwrap();

    // An environment nobody published, with transfer disabled: the gateway
    // fails with SnapshotMissing, and the client sees exactly that.
    let mut unseen = DbEnvironment::reference();
    unseen.os_overhead += 0.125;
    let plan = ctx.workload.queries[0].executed.root.clone();
    let request = EstimateRequest::new(KIND, unseen.clone(), plan).with_options(RequestOptions {
        estimator: EstimatorKind::QcfeMscn,
        allow_transfer: false,
        ..RequestOptions::default()
    });

    let mut client = QcfeClient::connect_uds(&socket).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match client.estimate(&request) {
        Err(ClientError::Fault(WireFault::SnapshotMissing {
            benchmark,
            fingerprint,
        })) => {
            assert_eq!(benchmark, KIND);
            assert_eq!(fingerprint, unseen.fingerprint().0);
        }
        other => panic!("expected a typed SnapshotMissing fault, got {other:?}"),
    }

    let stats = server.join().unwrap();
    assert_eq!(stats.responses_fault, 1);
    assert_eq!(stats.responses_ok, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Acceptance tests of the `qcfe-sched` subsystem: a seeded 1000-case
//! property sweep of the EDF queue + admission control against an
//! independent sorted reference model, the gateway-level multi-tenant
//! pipeline (typed quota sheds, typed deadline expiry, untouched
//! FIFO-default behaviour), and the client's opt-in shed-backoff /
//! reconnect retry loop over live sockets.

use qcfe::core::cost_model::CostModel;
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::MscnEstimator;
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind, ExperimentContext};
use qcfe::core::snapshot::FeatureSnapshot;
use qcfe::db::env::DbEnvironment;
use qcfe::db::plan::{PhysicalOp, PlanNode};
use qcfe::net::client::{ClientError, QcfeClient, RetryPolicy};
use qcfe::net::server::NetServerBuilder;
use qcfe::net::wire::{self, Frame, WireEstimate, WireFault, WireResponse};
use qcfe::serve::prelude::*;
use qcfe::serve::sched::{AdmissionControl, EdfQueue, Popped};
use qcfe::serve::SnapshotOrigin;
use qcfe::workloads::{run_multi_tenant_mix, BenchmarkKind, SubmitError, TenantLoad};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const KIND: BenchmarkKind = BenchmarkKind::Sysbench;

/// Same case count as the `QCFP` and `QCFW` codec sweeps: the acceptance
/// bar for the scheduler is "any interleaving, the reference model's
/// order; any quota, never exceeded; any expiry, typed".
const SCHED_CASES: usize = 1000;

// ---------------------------------------------------------------------------
// Property sweep: EDF pop order + admission shares vs a reference model.
// ---------------------------------------------------------------------------

/// The reference model: plain sorted lists, re-deriving the documented
/// pop contract independently of the heap + ring-buffer implementation.
struct ReferenceQueue {
    /// `(deadline, seq)`-sorted deadline-carrying entries.
    deadlined: Vec<(Duration, u64)>,
    /// seq-ordered deadline-less entries with their enqueue offsets.
    fifo: Vec<(Duration, u64)>,
}

enum ExpectedPop {
    Ready(u64),
    Expired(u64),
    Empty,
}

impl ReferenceQueue {
    fn push(&mut self, seq: u64, deadline: Option<Duration>, at: Duration) {
        match deadline {
            Some(deadline) => {
                self.deadlined.push((deadline, seq));
                self.deadlined.sort();
            }
            None => self.fifo.push((at, seq)),
        }
    }

    /// The documented contract: an aged FIFO entry first, then the
    /// earliest `(deadline, seq)` (expired if its deadline passed), then
    /// the oldest FIFO entry.
    fn pop(&mut self, now: Duration, age_after: Duration) -> ExpectedPop {
        if let Some(&(enqueued_at, seq)) = self.fifo.first() {
            let aged = now.saturating_sub(enqueued_at) >= age_after;
            if aged || self.deadlined.is_empty() {
                self.fifo.remove(0);
                return ExpectedPop::Ready(seq);
            }
        }
        if !self.deadlined.is_empty() {
            let (deadline, seq) = self.deadlined.remove(0);
            if deadline <= now {
                return ExpectedPop::Expired(seq);
            }
            return ExpectedPop::Ready(seq);
        }
        ExpectedPop::Empty
    }
}

/// 1000 seeded interleavings of pushes, pops and quota churn: every pop
/// matches the sorted reference model (EDF order, FIFO-last, aging bound,
/// expired surfaced typed, never served silently), and no tenant's
/// queued share ever exceeds its configured bound.
#[test]
fn edf_queue_and_admission_match_the_reference_model_for_1000_seeded_cases() {
    let mut rng = StdRng::seed_from_u64(0x5CED);
    for case in 0..SCHED_CASES {
        let base = Instant::now();
        let age_after = Duration::from_millis(rng.gen_range(1..=50));
        // Four tenants with random queue shares; rate limiting is exercised
        // separately below (its f64 token arithmetic has no independent
        // integer model).
        let shares: Vec<usize> = (0..4).map(|_| rng.gen_range(0..=5)).collect();
        let quotas: Vec<TenantQuota> = shares
            .iter()
            .map(|&s| TenantQuota::new(f64::INFINITY, f64::INFINITY, s))
            .collect();

        let mut queue: EdfQueue<()> = EdfQueue::new();
        let mut admission = AdmissionControl::new();
        let mut reference = ReferenceQueue {
            deadlined: Vec::new(),
            fifo: Vec::new(),
        };
        let mut queued_by_tenant = [0usize; 4];
        let mut clock = Duration::ZERO;
        let mut tenant_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();

        for _ in 0..rng.gen_range(1usize..=40) {
            clock += Duration::from_micros(rng.gen_range(0..=5_000));
            let now = base + clock;
            if rng.gen_bool(0.6) {
                // Push through admission, mirroring the share bound.
                let t = rng.gen_range(0usize..4);
                let admit = admission.try_admit(TenantId(t as u32 + 1), &quotas[t], now);
                if queued_by_tenant[t] >= shares[t] {
                    let err = admit.expect_err("share exhausted must reject");
                    assert_eq!(err.depth(), queued_by_tenant[t], "case {case}");
                    assert_eq!(err.limit(), shares[t], "case {case}");
                    continue;
                }
                admit.expect("under-share submission must admit");
                queued_by_tenant[t] += 1;
                let deadline = rng
                    .gen_bool(0.7)
                    .then(|| clock + Duration::from_micros(rng.gen_range(0..=20_000)));
                let seq = queue.push((), TenantId(t as u32 + 1), deadline.map(|d| base + d), now);
                tenant_of.insert(seq, t);
                reference.push(seq, deadline, clock);
            } else {
                let popped = queue.pop(now, age_after);
                match (popped, reference.pop(clock, age_after)) {
                    (None, ExpectedPop::Empty) => {}
                    (Some(Popped::Ready(e)), ExpectedPop::Ready(seq)) => {
                        assert_eq!(e.seq, seq, "case {case}: pop order diverged");
                        if let Some(deadline) = e.deadline {
                            assert!(deadline > now, "case {case}: expired entry served");
                        }
                        release(&mut admission, &mut queued_by_tenant, &tenant_of, e.seq);
                    }
                    (Some(Popped::Expired(e)), ExpectedPop::Expired(seq)) => {
                        assert_eq!(e.seq, seq, "case {case}: expired order diverged");
                        let deadline = e.deadline.expect("expired entries carry deadlines");
                        assert!(deadline <= now, "case {case}: live entry expired");
                        release(&mut admission, &mut queued_by_tenant, &tenant_of, e.seq);
                    }
                    (got, _) => panic!("case {case}: pop kind diverged from reference: {got:?}"),
                }
            }
            for (t, &queued) in queued_by_tenant.iter().enumerate() {
                assert!(
                    queued <= shares[t] && admission.queued(TenantId(t as u32 + 1)) == queued,
                    "case {case}: tenant {t} share overrun"
                );
            }
        }

        // Drain with the clock far past every deadline and aging bound:
        // queue and reference must agree to the end, and end empty.
        clock += Duration::from_secs(120);
        loop {
            match (
                queue.pop(base + clock, age_after),
                reference.pop(clock, age_after),
            ) {
                (None, ExpectedPop::Empty) => break,
                (Some(Popped::Ready(e)), ExpectedPop::Ready(seq))
                | (Some(Popped::Expired(e)), ExpectedPop::Expired(seq)) => {
                    assert_eq!(e.seq, seq, "case {case}: drain order diverged")
                }
                (got, _) => panic!("case {case}: drain kind diverged: {got:?}"),
            }
        }
        assert!(queue.is_empty(), "case {case}: queue must drain dry");
    }

    // Rate limiting, deterministically: a zero-rate bucket admits exactly
    // its burst, ever, no matter how far the clock advances.
    let base = Instant::now();
    let quota = TenantQuota::new(0.0, 3.0, usize::MAX);
    let mut admission = AdmissionControl::new();
    for i in 0..10u64 {
        let now = base + Duration::from_secs(i);
        let admit = admission.try_admit(TenantId(9), &quota, now);
        if i < 3 {
            admit.expect("burst admissions");
        } else {
            let err = admit.expect_err("empty zero-rate bucket must reject");
            assert_eq!(err.limit(), 3, "limit reports the burst capacity");
        }
    }
}

fn release(
    admission: &mut AdmissionControl,
    queued_by_tenant: &mut [usize; 4],
    tenant_of: &std::collections::HashMap<u64, usize>,
    seq: u64,
) {
    let t = tenant_of[&seq];
    admission.release(TenantId(t as u32 + 1));
    queued_by_tenant[t] -= 1;
}

// ---------------------------------------------------------------------------
// Live-gateway fixtures (same shapes as tests/net_online.rs).
// ---------------------------------------------------------------------------

fn ctx_with_envs(environments: usize) -> ExperimentContext {
    prepare_context(
        KIND,
        &ContextConfig {
            environments,
            queries_per_env: 30,
            template_scale: 1,
            seed: 91,
            data_scale: KIND.quick_scale(),
        },
    )
}

fn train_mscn(ctx: &ExperimentContext) -> Arc<dyn CostModel> {
    let mut rng = StdRng::seed_from_u64(8);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, _) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        12,
        &mut rng,
    );
    Arc::new(model)
}

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("qcfe-sched-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::remove_file(&path);
    path
}

/// A gateway under `policy` with every context environment published and
/// `model` registered for it.
fn policied_gateway(
    ctx: &ExperimentContext,
    dir: &PathBuf,
    policy: SchedPolicy,
    model: Arc<dyn CostModel>,
    config: ServiceConfig,
) -> Arc<QcfeGateway> {
    let gateway = Arc::new(
        QcfeGateway::builder(dir)
            .service_config(config)
            .scheduling(policy)
            .build()
            .unwrap(),
    );
    for (env, snapshot) in ctx
        .workload
        .environments
        .iter()
        .zip(ctx.snapshots_fso.iter())
    {
        gateway
            .publish_snapshot(KIND, env, snapshot.as_ref().expect("fitted"))
            .unwrap();
        gateway.register_model(
            ModelKey::new(KIND, EstimatorKind::QcfeMscn, env.fingerprint()),
            Arc::clone(&model),
        );
    }
    gateway
}

fn default_service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 256,
        max_batch: 16,
        encoding_cache_capacity: 1024,
    }
}

/// A cost model that serves each plan slowly — queue pressure on demand.
struct SlowModel {
    per_plan: Duration,
}

impl CostModel for SlowModel {
    fn name(&self) -> &'static str {
        "slow"
    }

    fn predict_plan(&self, _root: &PlanNode, _snapshot: Option<&FeatureSnapshot>) -> f64 {
        std::thread::sleep(self.per_plan);
        1.0
    }
}

// ---------------------------------------------------------------------------
// Gateway-level scheduling behaviour.
// ---------------------------------------------------------------------------

/// Tentpole acceptance criterion: under an adversarial mix, a greedy
/// tenant's flood is shed typed by its token-bucket quota — never parked,
/// never hung — while compliant tenants keep full goodput, and the
/// gateway's per-tenant metric lanes attribute every outcome.
#[test]
fn gateway_sheds_the_greedy_tenant_typed_and_keeps_compliant_goodput() {
    const GREEDY: u32 = 7;
    const COMPLIANT: [u32; 2] = [21, 22];

    let ctx = ctx_with_envs(1);
    let dir = temp_path("mix-store");
    // A zero-sustained-rate bucket with burst 4: at most 4 greedy
    // admissions per ~second of wall clock regardless of thread timing,
    // so the 100-request flood must shed.
    let policy =
        SchedPolicy::edf().with_quota(TenantId(GREEDY), TenantQuota::new(1.0, 4.0, usize::MAX));
    let gateway = policied_gateway(
        &ctx,
        &dir,
        policy,
        train_mscn(&ctx),
        default_service_config(),
    );
    let env = Arc::new(ctx.workload.environments[0].clone());
    let db = ctx
        .benchmark
        .build_database(ctx.workload.environments[0].clone());

    let lanes = [
        TenantLoad::greedy(GREEDY, 4, 25),
        TenantLoad::compliant(COMPLIANT[0], 2, 25, Duration::from_secs(10)),
        TenantLoad::compliant(COMPLIANT[1], 2, 25, Duration::from_secs(10)),
    ];
    let mix = run_multi_tenant_mix(&ctx.benchmark, &lanes, 17, |tenant, deadline, query| {
        let plan = db
            .plan(&query)
            .map_err(|e| SubmitError::Other(e.to_string()))?;
        let mut request =
            EstimateRequest::new(KIND, Arc::clone(&env), plan).with_tenant(TenantId(tenant));
        request.options.shed_load = true;
        if let Some(deadline) = deadline {
            request = request.with_deadline(deadline);
        }
        match gateway.estimate(request) {
            Ok(response) => Ok(response.cost_ms),
            Err(QcfeError::Service(ServiceError::QueueFull { limit, .. })) => {
                // Satellite criterion: the shed fault names the limit that
                // tripped (here the bucket's burst capacity).
                assert_eq!(limit, 4, "shed fault must carry the configured limit");
                Err(SubmitError::Shed)
            }
            Err(QcfeError::DeadlineExceeded { .. }) => Err(SubmitError::DeadlineExceeded),
            Err(other) => Err(SubmitError::Other(other.to_string())),
        }
    });

    for lane in &mix.lanes {
        assert_eq!(
            lane.completed + lane.shed + lane.deadline_failures + lane.other_errors,
            lane.attempted,
            "tenant {} lost requests",
            lane.tenant
        );
        assert_eq!(
            lane.other_errors, 0,
            "tenant {} untyped errors",
            lane.tenant
        );
    }
    let greedy = mix.lane(GREEDY).expect("greedy lane reported");
    assert!(greedy.shed > 0, "the greedy flood must shed");
    assert!(greedy.completed > 0, "the greedy burst must be served");
    for tenant in COMPLIANT {
        let lane = mix.lane(tenant).expect("compliant lane reported");
        assert_eq!(
            lane.completed, lane.attempted,
            "compliant tenant {tenant} impeded"
        );
    }

    // The per-tenant metric lanes crossed the gateway merge intact.
    let stats = gateway.stats();
    let greedy_lane = stats
        .tenants
        .iter()
        .find(|lane| lane.tenant == TenantId(GREEDY))
        .expect("greedy tenant lane in gateway stats");
    assert!(greedy_lane.shed_quota >= greedy.shed as u64);
    assert!(greedy_lane.admitted >= greedy.completed as u64);
    assert!(greedy_lane.batches_formed > 0);
    for tenant in COMPLIANT {
        let lane = stats
            .tenants
            .iter()
            .find(|lane| lane.tenant == TenantId(tenant))
            .expect("compliant tenant lane in gateway stats");
        assert_eq!(lane.shed_quota, 0, "compliant tenant {tenant} was shed");
        assert!(
            lane.admitted >= 50,
            "compliant tenant {tenant} undercounted"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A deadline that expires while the request is parked behind a slow
/// shard surfaces as the typed `DeadlineExceeded` fault — and the
/// tenant's metric lane records the drop.
#[test]
fn queued_deadline_expiry_is_typed_through_the_gateway() {
    let ctx = ctx_with_envs(1);
    let dir = temp_path("expiry-store");
    let gateway = policied_gateway(
        &ctx,
        &dir,
        SchedPolicy::edf(),
        Arc::new(SlowModel {
            per_plan: Duration::from_millis(80),
        }),
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 1,
            encoding_cache_capacity: 16,
        },
    );
    let env = Arc::new(ctx.workload.environments[0].clone());
    let plan = ctx.workload.queries[0].executed.root.clone();

    std::thread::scope(|scope| {
        // Occupy the single worker.
        let blocker = scope.spawn(|| {
            gateway
                .estimate(EstimateRequest::new(KIND, Arc::clone(&env), plan.clone()))
                .expect("the slow request itself succeeds")
        });
        std::thread::sleep(Duration::from_millis(20));
        // Parked behind the blocker with a 5 ms budget: it cannot make it.
        let doomed = EstimateRequest::new(KIND, Arc::clone(&env), plan.clone())
            .with_tenant(TenantId(3))
            .with_deadline(Duration::from_millis(5));
        match gateway.estimate(doomed) {
            Err(QcfeError::DeadlineExceeded { deadline, .. }) => {
                assert_eq!(deadline, Duration::from_millis(5));
            }
            other => panic!("expected a typed deadline fault, got {other:?}"),
        }
        blocker.join().unwrap();
    });

    // The expired entry is popped (not served) shortly after the worker
    // frees up; its drop lands in tenant 3's metric lane.
    let deadline_lane_recorded = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(10));
        gateway
            .stats()
            .tenants
            .iter()
            .any(|lane| lane.tenant == TenantId(3) && lane.shed_deadline >= 1)
    });
    assert!(
        deadline_lane_recorded,
        "the expired request must be recorded as a deadline shed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The default (no `scheduling` call) gateway still runs the legacy blind
/// FIFO: anonymous single-tenant callers are served unchanged and no
/// per-tenant metric lanes appear.
#[test]
fn default_fifo_gateway_serves_anonymous_callers_without_tenant_lanes() {
    let ctx = ctx_with_envs(1);
    let dir = temp_path("fifo-store");
    let gateway = policied_gateway(
        &ctx,
        &dir,
        SchedPolicy::default(),
        train_mscn(&ctx),
        default_service_config(),
    );
    let env = Arc::new(ctx.workload.environments[0].clone());
    for query in ctx.workload.queries.iter().take(8) {
        let request = EstimateRequest::new(KIND, Arc::clone(&env), query.executed.root.clone());
        let response = gateway.estimate(request).expect("anonymous FIFO service");
        assert!(response.cost_ms.is_finite() && response.cost_ms > 0.0);
    }
    assert!(
        gateway.stats().tenants.is_empty(),
        "anonymous traffic under the disabled policy must not grow tenant lanes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Client retry loop over live sockets.
// ---------------------------------------------------------------------------

/// `estimate_with_retry` is a drop-in for `estimate` on the happy path,
/// and survives the server restarting under it: the broken connection is
/// transparently re-dialed once and the request re-sent.
#[test]
fn estimate_with_retry_round_trips_and_reconnects_across_a_server_restart() {
    let ctx = ctx_with_envs(1);
    let dir = temp_path("retry-store");
    let gateway = policied_gateway(
        &ctx,
        &dir,
        SchedPolicy::default(),
        train_mscn(&ctx),
        default_service_config(),
    );
    let socket = temp_path("retry.sock");
    let server = NetServerBuilder::new(Arc::clone(&gateway))
        .uds(&socket)
        .start()
        .unwrap();

    let env = ctx.workload.environments[0].clone();
    let plan = ctx.workload.queries[0].executed.root.clone();
    let request = EstimateRequest::new(KIND, env, plan);
    let expected = gateway.estimate(request.clone()).unwrap();

    let mut client = QcfeClient::connect_uds(&socket).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let response = client
        .estimate_with_retry(&request, RetryPolicy::default())
        .expect("happy-path retry wrapper");
    assert_eq!(response.cost_ms.to_bits(), expected.cost_ms.to_bits());

    // Restart the server on the same socket path. The client's old
    // connection is dead; the retry wrapper must re-dial it.
    let stats = server.join().unwrap();
    assert_eq!(stats.responses_ok, 1, "the happy-path retry call");
    let server = NetServerBuilder::new(Arc::clone(&gateway))
        .uds(&socket)
        .start()
        .unwrap();
    let response = client
        .estimate_with_retry(&request, RetryPolicy::default())
        .expect("reconnect across restart");
    assert_eq!(response.cost_ms.to_bits(), expected.cost_ms.to_bits());

    // Reconnect is opt-out: with it disabled, the same broken-socket
    // condition surfaces as the I/O error.
    let stats = server.join().unwrap();
    assert_eq!(stats.responses_ok, 1);
    match client.estimate_with_retry(
        &request,
        RetryPolicy {
            reconnect: false,
            ..RetryPolicy::default()
        },
    ) {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected the raw I/O error with reconnect off, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shed-backoff against a scripted server: two `QueueFull` faults then an
/// estimate yields success (after the backoff sleeps); a persistent flood
/// of `QueueFull` exhausts `max_retries` and surfaces the typed fault
/// with its depth/limit payload intact.
#[test]
fn estimate_with_retry_backs_off_on_queue_full_and_surfaces_the_enriched_fault() {
    let socket = temp_path("backoff.sock");
    let listener = std::os::unix::net::UnixListener::bind(&socket).unwrap();
    let script = std::thread::spawn(move || {
        use std::io::{Read, Write};
        let (mut stream, _) = listener.accept().unwrap();
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 65536];
        for served in 1usize..=7 {
            let frame = loop {
                if let Some(len) = wire::frame_length(&buf).unwrap() {
                    break buf.drain(..len).collect::<Vec<u8>>();
                }
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "client hung up mid-script");
                buf.extend_from_slice(&chunk[..n]);
            };
            let request = match wire::decode_frame(&frame).unwrap() {
                Frame::Request(request) => request,
                other => panic!("expected a request frame, got {other:?}"),
            };
            // Responses 1, 2 shed; 3 answers; 4..=7 shed the second call
            // until its retries run out.
            let outcome = if served == 3 {
                Ok(WireEstimate {
                    cost_ms: 42.5,
                    batch_size: 1,
                    encoding_cache_hit: false,
                    model_from_disk: false,
                    refined: false,
                    cold_start: false,
                    benchmark: KIND,
                    estimator: EstimatorKind::QcfeMscn,
                    fingerprint: 0,
                    origin: SnapshotOrigin::TrainedHere,
                    service_us: 10,
                    total_us: 20,
                })
            } else {
                Err(WireFault::QueueFull { depth: 7, limit: 9 })
            };
            let bytes = wire::encode_response(&WireResponse {
                request_id: request.request_id,
                outcome,
            })
            .unwrap();
            stream.write_all(&bytes).unwrap();
        }
    });

    let request = EstimateRequest::new(
        KIND,
        DbEnvironment::reference(),
        PlanNode::new(
            PhysicalOp::SeqScan {
                table: "sbtest".into(),
            },
            vec![],
        ),
    );
    let policy = RetryPolicy {
        max_retries: 3,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
        reconnect: false,
    };
    let mut client = QcfeClient::connect_uds(&socket).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Call 1: shed, shed, served — with the 5 ms + 10 ms backoffs slept.
    let started = Instant::now();
    let response = client
        .estimate_with_retry(&request, policy)
        .expect("third attempt succeeds");
    assert_eq!(response.cost_ms.to_bits(), 42.5f64.to_bits());
    assert!(
        started.elapsed() >= Duration::from_millis(15),
        "two backoff sleeps must have elapsed"
    );

    // Call 2: four sheds exhaust max_retries; the typed fault surfaces
    // with the wire-carried queue depth and limit.
    match client.estimate_with_retry(&request, policy) {
        Err(ClientError::Fault(WireFault::QueueFull { depth, limit })) => {
            assert_eq!((depth, limit), (7, 9), "enriched payload must survive");
        }
        other => panic!("expected the typed QueueFull fault, got {other:?}"),
    }
    script.join().unwrap();
    let _ = std::fs::remove_file(&socket);
}

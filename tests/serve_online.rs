//! Integration tests of the online estimation service layer: train →
//! persist snapshot → simulated restart → identical estimates, plus a
//! concurrent closed-loop smoke test against the running service.

use qcfe::core::cost_model::CostModel;
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::{MscnEstimator, QppNetEstimator};
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind, ExperimentContext};
use qcfe::serve::prelude::*;
use qcfe::serve::ServiceError;
use qcfe::workloads::{run_closed_loop, BenchmarkKind, ClosedLoopConfig};
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

fn quick_ctx() -> ExperimentContext {
    let kind = BenchmarkKind::Sysbench;
    let cfg = ContextConfig {
        environments: 2,
        queries_per_env: 50,
        template_scale: 1,
        seed: 21,
        data_scale: kind.quick_scale(),
    };
    prepare_context(kind, &cfg)
}

fn train_mscn(ctx: &ExperimentContext) -> MscnEstimator {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, _) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        20,
        &mut rng,
    );
    model
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qcfe-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance criterion: a snapshot persisted by `SnapshotStore` is
/// reloaded after a simulated restart and produces identical estimates.
#[test]
fn snapshot_survives_restart_with_identical_estimates() {
    let ctx = quick_ctx();
    let kind = BenchmarkKind::Sysbench;
    let env = &ctx.workload.environments[0];
    let snapshot = ctx.snapshots_fso[0].clone().expect("fitted");
    let model = Arc::new(train_mscn(&ctx));
    let dir = temp_dir("restart");

    // "Process 1": persist the snapshot and record estimates.
    let before: Vec<f64> = {
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(kind, env.fingerprint(), &snapshot).unwrap();
        ctx.workload
            .queries
            .iter()
            .take(20)
            .map(|q| model.predict_plan(&q.executed.root, Some(&snapshot)))
            .collect()
    };

    // "Process 2" (after restart): a fresh store handle over the same
    // directory, snapshot loaded from disk.
    let store = SnapshotStore::open(&dir).unwrap();
    let reloaded = store
        .load(kind, env.fingerprint())
        .unwrap()
        .expect("snapshot persisted across restart");
    assert_eq!(
        reloaded.relative_difference(&snapshot),
        0.0,
        "round-trip must be exact"
    );

    let service = EstimationService::start(model.clone(), Some(reloaded), ServiceConfig::default());
    let handle = service.handle();
    for (q, expected) in ctx.workload.queries.iter().take(20).zip(&before) {
        let estimate = handle.estimate(q.executed.root.clone()).unwrap();
        assert_eq!(
            estimate.cost_ms.to_bits(),
            expected.to_bits(),
            "reloaded snapshot must give bit-identical estimates"
        );
    }
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion: the service sustains a closed-loop load test of
/// ≥ 8 concurrent clients with micro-batching enabled, every request
/// getting a finite estimate.
#[test]
fn concurrent_closed_loop_load_with_micro_batching() {
    let ctx = quick_ctx();
    let env = ctx.workload.environments[0].clone();
    let snapshot = ctx.snapshots_fso[0].clone().expect("fitted");
    let model: Arc<dyn CostModel> = Arc::new(train_mscn(&ctx));
    assert!(
        model.has_flat_encoding(),
        "MSCN serves through the cached encoding path"
    );

    let service = EstimationService::start(
        model,
        Some(snapshot),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            encoding_cache_capacity: 1024,
        },
    );
    let handle = service.handle();
    let db = ctx.benchmark.build_database(env);

    let config = ClosedLoopConfig::new(8, 40, 5);
    let report = run_closed_loop(&ctx.benchmark, &config, |query| {
        let plan = db.plan(&query).map_err(|e| e.to_string())?;
        let estimate = handle.estimate(plan).map_err(|e| e.to_string())?;
        Ok(estimate.cost_ms)
    });

    assert_eq!(report.errors, 0, "no request may fail");
    assert_eq!(report.completed, 8 * 40);
    assert!(
        report.estimates.iter().all(|e| e.is_finite() && *e > 0.0),
        "every estimate must be finite and positive"
    );
    let metrics = service.shutdown();
    assert_eq!(metrics.completed, 320);
    assert!(metrics.throughput_qps > 0.0);
    assert!(metrics.mean_batch_size >= 1.0);
    assert!(metrics.p50_latency_us <= metrics.p99_latency_us);
}

/// Acceptance criterion of the unified batching refactor: routing every
/// model through the service's uniform batch API leaves the results
/// unchanged — each served estimate equals the model's direct per-plan
/// prediction, for both the flat (MSCN) and the tree-structured (QPPNet)
/// estimator.
#[test]
fn service_routing_preserves_direct_predictions() {
    let ctx = quick_ctx();
    let snapshot = ctx.snapshots_fso[0].clone().expect("fitted");
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let mut qpp = QppNetEstimator::new(encoder, None, &mut rng);
    qpp.train(&ctx.workload, Some(&ctx.snapshots_fso), 2, &mut rng);

    let models: Vec<Arc<dyn CostModel>> = vec![Arc::new(train_mscn(&ctx)), Arc::new(qpp)];
    for model in models {
        let direct: Vec<f64> = ctx
            .workload
            .queries
            .iter()
            .take(40)
            .map(|q| model.predict_plan(&q.executed.root, Some(&snapshot)))
            .collect();
        let service = EstimationService::start(
            Arc::clone(&model),
            Some(snapshot.clone()),
            ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 16,
                encoding_cache_capacity: 1024,
            },
        );
        let handle = service.handle();
        for (q, expected) in ctx.workload.queries.iter().take(40).zip(&direct) {
            let estimate = handle.estimate(q.executed.root.clone()).unwrap();
            assert!(
                (estimate.cost_ms - expected).abs() <= 1e-9,
                "{}: served {} deviates from direct {expected}",
                model.name(),
                estimate.cost_ms
            );
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.completed, 40);
    }
}

/// The registry serves models by key and keeps serving after eviction of
/// cold entries.
#[test]
fn registry_integrates_with_the_service() {
    let ctx = quick_ctx();
    let kind = BenchmarkKind::Sysbench;
    let fp0 = ctx.workload.environments[0].fingerprint();
    let fp1 = ctx.workload.environments[1].fingerprint();
    assert_ne!(fp0, fp1, "sampled environments fingerprint distinctly");

    let registry = ModelRegistry::new(1);
    let model: Arc<dyn CostModel> = Arc::new(train_mscn(&ctx));
    registry.insert(
        ModelKey::new(kind, EstimatorKind::QcfeMscn, fp0),
        Arc::clone(&model),
    );
    // Over-capacity insert evicts the first environment's model …
    registry.insert(
        ModelKey::new(kind, EstimatorKind::QcfeMscn, fp1),
        Arc::clone(&model),
    );
    assert!(registry
        .get(&ModelKey::new(kind, EstimatorKind::QcfeMscn, fp0))
        .is_none());

    // … but the resident one still serves requests.
    let resident = registry
        .get(&ModelKey::new(kind, EstimatorKind::QcfeMscn, fp1))
        .expect("resident model");
    let service = EstimationService::start(
        resident,
        ctx.snapshots_fso[1].clone(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let estimate = handle
        .estimate(ctx.workload.queries[0].executed.root.clone())
        .unwrap();
    assert!(estimate.cost_ms.is_finite() && estimate.cost_ms > 0.0);
    drop(service);
    assert_eq!(
        handle.estimate(ctx.workload.queries[0].executed.root.clone()),
        Err(ServiceError::Closed)
    );
}

//! Integration tests of the online estimation layer through the serving
//! front door: train → publish through one gateway → simulated restart →
//! identical estimates, plus a concurrent closed-loop smoke test against
//! the routed gateway.

use qcfe::core::cost_model::CostModel;
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::{MscnEstimator, QppNetEstimator};
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind, ExperimentContext};
use qcfe::serve::prelude::*;
use qcfe::workloads::{run_closed_loop, BenchmarkKind, ClosedLoopConfig};
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

fn quick_ctx() -> ExperimentContext {
    let kind = BenchmarkKind::Sysbench;
    let cfg = ContextConfig {
        environments: 2,
        queries_per_env: 50,
        template_scale: 1,
        seed: 21,
        data_scale: kind.quick_scale(),
    };
    prepare_context(kind, &cfg)
}

fn train_mscn(ctx: &ExperimentContext) -> MscnEstimator {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, _) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        20,
        &mut rng,
    );
    model
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qcfe-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance criterion: an environment published through one gateway is
/// served — from disk, with identical estimates — by a *fresh* gateway
/// over the same store root (a simulated restart).
#[test]
fn published_snapshot_survives_restart_with_identical_estimates() {
    let ctx = quick_ctx();
    let kind = BenchmarkKind::Sysbench;
    let env = ctx.workload.environments[0].clone();
    let snapshot = ctx.snapshots_fso[0].clone().expect("fitted");
    let model = Arc::new(train_mscn(&ctx));
    let key = ModelKey::new(kind, EstimatorKind::QcfeMscn, env.fingerprint());
    let dir = temp_dir("restart");

    // "Process 1": publish the environment and record direct estimates.
    let before: Vec<f64> = {
        let gateway = QcfeGateway::builder(&dir).build().unwrap();
        gateway.publish_snapshot(kind, &env, &snapshot).unwrap();
        ctx.workload
            .queries
            .iter()
            .take(20)
            .map(|q| model.predict_plan(&q.executed.root, Some(&snapshot)))
            .collect()
    };

    // "Process 2" (after restart): a fresh gateway over the same root. The
    // model is re-registered (weights are not persisted yet — see
    // ROADMAP), the snapshot comes from disk.
    let gateway = QcfeGateway::builder(&dir)
        .with_model(key, model.clone() as Arc<dyn CostModel>)
        .build()
        .unwrap();
    for (q, expected) in ctx.workload.queries.iter().take(20).zip(&before) {
        let response = gateway
            .estimate(EstimateRequest::new(
                kind,
                env.clone(),
                q.executed.root.clone(),
            ))
            .unwrap();
        assert_eq!(
            response.cost_ms.to_bits(),
            expected.to_bits(),
            "reloaded snapshot must give bit-identical estimates"
        );
        assert_eq!(
            response.provenance.snapshot_origin,
            SnapshotOrigin::TrainedHere,
            "own fingerprint must not transfer"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion: the gateway sustains a closed-loop load test of
/// ≥ 8 concurrent clients with micro-batching enabled, every request
/// getting a finite estimate.
#[test]
fn concurrent_closed_loop_load_with_micro_batching() {
    let ctx = quick_ctx();
    let kind = BenchmarkKind::Sysbench;
    let env = ctx.workload.environments[0].clone();
    let snapshot = ctx.snapshots_fso[0].clone().expect("fitted");
    let model: Arc<dyn CostModel> = Arc::new(train_mscn(&ctx));
    assert!(
        model.has_flat_encoding(),
        "MSCN serves through the cached encoding path"
    );
    let key = ModelKey::new(kind, EstimatorKind::QcfeMscn, env.fingerprint());
    let dir = temp_dir("closedloop");

    let gateway = QcfeGateway::builder(&dir)
        .service_config(ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            encoding_cache_capacity: 1024,
        })
        .with_model(key, model)
        .build()
        .unwrap();
    gateway.publish_snapshot(kind, &env, &snapshot).unwrap();
    let db = ctx.benchmark.build_database(env.clone());

    let config = ClosedLoopConfig::new(8, 40, 5);
    let report = run_closed_loop(&ctx.benchmark, &config, |query| {
        let plan = db.plan(&query).map_err(|e| e.to_string())?;
        let request = EstimateRequest::new(kind, env.clone(), plan);
        let response = gateway.estimate(request).map_err(|e| e.to_string())?;
        Ok(response.cost_ms)
    });

    assert_eq!(report.errors, 0, "no request may fail");
    assert_eq!(report.completed, 8 * 40);
    assert!(
        report.estimates.iter().all(|e| e.is_finite() && *e > 0.0),
        "every estimate must be finite and positive"
    );
    let stats = gateway.stats();
    assert_eq!(stats.shard_starts, 1, "one environment, one shard");
    let metrics = gateway.shard_metrics(&key).expect("shard resident");
    assert_eq!(metrics.completed, 320);
    assert!(metrics.throughput_qps > 0.0);
    assert!(metrics.mean_batch_size >= 1.0);
    assert!(metrics.p50_latency_us <= metrics.p99_latency_us);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Routing every model family through the gateway leaves the results
/// unchanged — each served estimate equals the model's direct per-plan
/// prediction, for both the flat (MSCN) and the tree-structured (QPPNet)
/// estimator.
#[test]
fn gateway_routing_preserves_direct_predictions() {
    let ctx = quick_ctx();
    let kind = BenchmarkKind::Sysbench;
    let env = ctx.workload.environments[0].clone();
    let snapshot = ctx.snapshots_fso[0].clone().expect("fitted");
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let mut qpp = QppNetEstimator::new(encoder, None, &mut rng);
    qpp.train(&ctx.workload, Some(&ctx.snapshots_fso), 2, &mut rng);

    let models: Vec<(EstimatorKind, Arc<dyn CostModel>)> = vec![
        (EstimatorKind::QcfeMscn, Arc::new(train_mscn(&ctx))),
        (EstimatorKind::QcfeQpp, Arc::new(qpp)),
    ];
    for (estimator, model) in models {
        let direct: Vec<f64> = ctx
            .workload
            .queries
            .iter()
            .take(40)
            .map(|q| model.predict_plan(&q.executed.root, Some(&snapshot)))
            .collect();
        let dir = temp_dir(&format!("routing-{estimator:?}"));
        let key = ModelKey::new(kind, estimator, env.fingerprint());
        let gateway = QcfeGateway::builder(&dir)
            .service_config(ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 16,
                encoding_cache_capacity: 1024,
            })
            .with_model(key, Arc::clone(&model))
            .build()
            .unwrap();
        gateway.publish_snapshot(kind, &env, &snapshot).unwrap();
        for (q, expected) in ctx.workload.queries.iter().take(40).zip(&direct) {
            let response = gateway
                .estimate(
                    EstimateRequest::new(kind, env.clone(), q.executed.root.clone())
                        .with_estimator(estimator),
                )
                .unwrap();
            assert!(
                (response.cost_ms - expected).abs() <= 1e-9,
                "{}: served {} deviates from direct {expected}",
                model.name(),
                response.cost_ms
            );
        }
        let metrics = gateway.shard_metrics(&key).expect("shard resident");
        assert_eq!(metrics.completed, 40);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The gateway's owned registry serves models by key and keeps serving
/// after eviction of cold entries, with evictions observable in
/// `GatewayStats`.
#[test]
fn registry_eviction_is_observable_and_survivable() {
    let ctx = quick_ctx();
    let kind = BenchmarkKind::Sysbench;
    let env0 = ctx.workload.environments[0].clone();
    let env1 = ctx.workload.environments[1].clone();
    assert_ne!(
        env0.fingerprint(),
        env1.fingerprint(),
        "sampled environments fingerprint distinctly"
    );
    let model: Arc<dyn CostModel> = Arc::new(train_mscn(&ctx));
    let key0 = ModelKey::new(kind, EstimatorKind::QcfeMscn, env0.fingerprint());
    let key1 = ModelKey::new(kind, EstimatorKind::QcfeMscn, env1.fingerprint());
    let dir = temp_dir("eviction");

    let gateway = QcfeGateway::builder(&dir)
        .registry_capacity(1)
        .build()
        .unwrap();
    gateway
        .publish_snapshot(kind, &env1, &ctx.snapshots_fso[1].clone().expect("fitted"))
        .unwrap();
    assert!(gateway.register_model(key0, Arc::clone(&model)).is_none());
    // Over-capacity insert evicts the first environment's model and
    // reports it — the satellite API under test.
    let evicted = gateway.register_model(key1, Arc::clone(&model));
    assert_eq!(evicted.map(|(k, _)| k), Some(key0));
    assert_eq!(gateway.stats().model_evictions, 1);
    assert_eq!(gateway.stats().registry.evictions, 1);

    // … but the resident one still serves requests.
    let response = gateway
        .estimate(EstimateRequest::new(
            kind,
            env1.clone(),
            ctx.workload.queries[0].executed.root.clone(),
        ))
        .unwrap();
    assert!(response.cost_ms.is_finite() && response.cost_ms > 0.0);
    // The evicted key's model is gone and nothing can provide it.
    match gateway.estimate(EstimateRequest::new(
        kind,
        env0.clone(),
        ctx.workload.queries[0].executed.root.clone(),
    )) {
        Err(QcfeError::ModelMissing { key }) => assert_eq!(key, key0),
        other => panic!("expected ModelMissing, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

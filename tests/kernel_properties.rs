//! Property-style tests over the pluggable matmul kernels and the int8
//! quantized weight path (seeded loops, same offline-proptest idiom as
//! `properties.rs`).
//!
//! Acceptance bars:
//!
//! * the portable kernel is **bit-identical** to the scalar kernel on every
//!   tested shape (same fixed accumulation order);
//! * the AVX2 kernel (when the CPU has it) agrees with scalar within a
//!   documented FMA tolerance, never bit-garbage;
//! * int8 quantize→dequantize is bounded by half a quantization step;
//! * quantized models round-trip the `QCFW` v2 codec bit-exactly and
//!   corrupt buffers die with typed errors — while v1 frames still decode.

use qcfe::nn::codec::{
    frame, unframe, WeightsCodecError, FRAME_HEADER_LEN, PAYLOAD_QUANT_MLP, QUANT_LAYER_TAG_INT8,
    WEIGHTS_CODEC_VERSION,
};
use qcfe::nn::kernel::{matmul_f64_with, matmul_i8_with, MatmulKernel};
use qcfe::nn::{Activation, Mlp, QuantizedMlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kernel-equivalence and codec properties run the full acceptance count.
const CASES: usize = 1000;

/// Adversarial matmul shapes exercised before random sampling takes over:
/// degenerate 1×1, tall/skinny, single-row/column, and widths straddling
/// the 4-lane AVX2 boundary (n = 3, 4, 5, 7, 8, 9) plus the MR=4 row
/// blocking boundary (m = 3, 4, 5).
const ADVERSARIAL: [(usize, usize, usize); 14] = [
    (1, 1, 1),
    (1, 1, 8),
    (8, 1, 1),
    (1, 8, 1),
    (64, 2, 1),
    (1, 2, 64),
    (3, 5, 3),
    (4, 5, 4),
    (5, 5, 5),
    (4, 7, 7),
    (5, 3, 8),
    (3, 9, 9),
    (33, 17, 31),
    (32, 24, 32),
];

fn case_shape(case: usize, rng: &mut StdRng) -> (usize, usize, usize) {
    if case < ADVERSARIAL.len() {
        ADVERSARIAL[case]
    } else {
        (
            rng.gen_range(1usize..=33),
            rng.gen_range(1usize..=40),
            rng.gen_range(1usize..=33),
        )
    }
}

fn random_activations(rng: &mut StdRng, m: usize, k: usize) -> Vec<f64> {
    (0..m * k).map(|_| rng.gen_range(-2.0f64..2.0)).collect()
}

/// The portable kernel promises the *same* fixed accumulation order as the
/// scalar kernel, so it must match bit for bit on every shape — including
/// the shapes whose k-remainder and column tails exercise every unroll
/// branch.
#[test]
fn portable_kernel_is_bit_identical_to_scalar() {
    let mut rng = StdRng::seed_from_u64(0x5EED_51D0);
    for case in 0..CASES {
        let (m, k, n) = case_shape(case, &mut rng);
        let a = random_activations(&mut rng, m, k);
        let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-2.0f64..2.0)).collect();
        let mut scalar = vec![0.0; m * n];
        let mut portable = vec![0.0; m * n];
        matmul_f64_with(MatmulKernel::Scalar, &a, m, k, &b, n, &mut scalar);
        matmul_f64_with(MatmulKernel::Portable, &a, m, k, &b, n, &mut portable);
        for (i, (s, p)) in scalar.iter().zip(&portable).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "case {case} ({m}x{k}x{n}) element {i}: portable {p} != scalar {s}"
            );
        }

        // Same contract for the int8 kernels.
        let q: Vec<i8> = (0..k * n).map(|_| rng.gen_range(-127i8..=127)).collect();
        let mut scalar_q = vec![0.0; m * n];
        let mut portable_q = vec![0.0; m * n];
        matmul_i8_with(MatmulKernel::Scalar, &a, m, k, &q, n, &mut scalar_q);
        matmul_i8_with(MatmulKernel::Portable, &a, m, k, &q, n, &mut portable_q);
        for (i, (s, p)) in scalar_q.iter().zip(&portable_q).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "case {case} ({m}x{k}x{n}) int8 element {i}"
            );
        }
    }
}

/// The AVX2 kernel fuses each multiply-add into one rounding, so it cannot
/// be bit-identical — but it must stay within an accumulated-FMA bound of
/// the scalar result on every adversarial shape. On machines without AVX2
/// the request falls back to the portable kernel, which makes this test a
/// second (free) bit-identity check there.
#[test]
fn avx2_kernel_matches_scalar_within_fma_tolerance() {
    let mut rng = StdRng::seed_from_u64(0x5EED_51D1);
    let native = MatmulKernel::Avx2.is_supported();
    for case in 0..CASES {
        let (m, k, n) = case_shape(case, &mut rng);
        let a = random_activations(&mut rng, m, k);
        let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-2.0f64..2.0)).collect();
        let mut scalar = vec![0.0; m * n];
        let mut simd = vec![0.0; m * n];
        matmul_f64_with(MatmulKernel::Scalar, &a, m, k, &b, n, &mut scalar);
        matmul_f64_with(MatmulKernel::Avx2, &a, m, k, &b, n, &mut simd);
        // Each of the k steps can shift by ~1 ulp of the running partials,
        // all bounded by k * max|a| * max|b| = 4k here.
        let tol = 1e-12 * (1.0 + 4.0 * k as f64);
        for (i, (s, v)) in scalar.iter().zip(&simd).enumerate() {
            if native {
                assert!(
                    (s - v).abs() <= tol,
                    "case {case} ({m}x{k}x{n}) element {i}: avx2 {v} vs scalar {s} (tol {tol})"
                );
            } else {
                assert_eq!(
                    s.to_bits(),
                    v.to_bits(),
                    "case {case}: fallback must be exact"
                );
            }
        }
    }
}

fn random_mlp(rng: &mut StdRng) -> Mlp {
    let layer_count = rng.gen_range(2usize..=4);
    let sizes: Vec<usize> = (0..=layer_count)
        .map(|_| rng.gen_range(1usize..=10))
        .collect();
    let hidden = Activation::ALL[rng.gen_range(0..Activation::ALL.len())];
    let output = Activation::ALL[rng.gen_range(0..Activation::ALL.len())];
    Mlp::with_output_activation(&sizes, hidden, output, rng)
}

/// Symmetric int8 quantization reconstructs every weight within half a
/// quantization step (scale/2), and biases/dims/activations are carried
/// over untouched.
#[test]
fn int8_quantization_roundtrip_error_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0x5EED_51D2);
    for case in 0..CASES {
        let mlp = random_mlp(&mut rng);
        let quantized = QuantizedMlp::quantize(&mlp);
        assert_eq!(quantized.layer_count(), mlp.layer_count());
        for (layer, qlayer) in mlp.layers().iter().zip(quantized.layers()) {
            assert_eq!(layer.input_dim(), qlayer.input_dim(), "case {case}");
            assert_eq!(layer.output_dim(), qlayer.output_dim(), "case {case}");
            assert_eq!(layer.activation(), qlayer.activation(), "case {case}");
            for (b, qb) in layer.biases().iter().zip(qlayer.biases()) {
                assert_eq!(b.to_bits(), qb.to_bits(), "case {case}: bias bits");
            }
            let bound = qlayer.scale() / 2.0 + 1e-12;
            for r in 0..layer.input_dim() {
                for c in 0..layer.output_dim() {
                    let w = layer.weights().get(r, c);
                    let dq = qlayer.dequantized_weight(r, c);
                    assert!(
                        (w - dq).abs() <= bound,
                        "case {case}: weight ({r},{c}) {w} reconstructs to {dq}, \
                         over the scale/2 bound {bound}"
                    );
                }
            }
        }
    }
}

/// Quantized models survive the `QCFW` v2 codec bit-exactly: every int8
/// weight, scale, zero point, bias and activation — and therefore every
/// prediction — and the serialization is deterministic.
#[test]
fn qcfw_v2_quantized_roundtrip_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x5EED_51D3);
    for case in 0..CASES {
        let quantized = QuantizedMlp::quantize(&random_mlp(&mut rng));
        let bytes = quantized.to_weight_bytes();
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            WEIGHTS_CODEC_VERSION,
            "case {case}: quantized frames are written at version 2"
        );
        let back = QuantizedMlp::from_weight_bytes(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: valid buffer rejected: {e}"));
        assert_eq!(back.layer_count(), quantized.layer_count(), "case {case}");
        for (la, lb) in quantized.layers().iter().zip(back.layers()) {
            assert_eq!(la.input_dim(), lb.input_dim(), "case {case}");
            assert_eq!(la.output_dim(), lb.output_dim(), "case {case}");
            assert_eq!(la.activation(), lb.activation(), "case {case}");
            assert_eq!(la.scale().to_bits(), lb.scale().to_bits(), "case {case}");
            assert_eq!(la.zero_point(), lb.zero_point(), "case {case}");
            assert_eq!(la.weights_q(), lb.weights_q(), "case {case}: int8 bits");
            for (ba, bb) in la.biases().iter().zip(lb.biases()) {
                assert_eq!(ba.to_bits(), bb.to_bits(), "case {case}: bias bits");
            }
        }
        let input: Vec<f64> = (0..quantized.input_dim())
            .map(|_| rng.gen_range(-3.0f64..3.0))
            .collect();
        assert_eq!(
            quantized.predict_one(&input).to_bits(),
            back.predict_one(&input).to_bits(),
            "case {case}: prediction must be bit-identical"
        );
        assert_eq!(back.to_weight_bytes(), bytes, "case {case}: deterministic");
    }
}

/// Corrupt quantized buffers are rejected with *typed* errors — truncation,
/// flipped magic, an unknown per-layer record tag (behind a valid
/// checksum), arbitrary byte flips — and never panic. Version-1 frames
/// (the f64-only era) still decode under the v2 reader.
#[test]
fn qcfw_v2_rejects_corruption_and_still_reads_v1() {
    let mut rng = StdRng::seed_from_u64(0x5EED_51D4);
    for case in 0..CASES {
        let quantized = QuantizedMlp::quantize(&random_mlp(&mut rng));
        let bytes = quantized.to_weight_bytes();
        match case % 5 {
            0 => {
                let cut = rng.gen_range(0..bytes.len());
                let err = QuantizedMlp::from_weight_bytes(&bytes[..cut])
                    .expect_err("truncated buffer must not decode");
                assert!(
                    matches!(
                        err,
                        WeightsCodecError::Truncated | WeightsCodecError::BadMagic
                    ),
                    "case {case}: cut {cut} gave {err:?}"
                );
            }
            1 => {
                let mut corrupt = bytes.clone();
                corrupt[rng.gen_range(0usize..4)] ^= 0xFF;
                assert_eq!(
                    QuantizedMlp::from_weight_bytes(&corrupt)
                        .expect_err("bad magic must not decode"),
                    WeightsCodecError::BadMagic,
                    "case {case}"
                );
            }
            2 => {
                // An unknown record tag must be a typed rejection even when
                // the frame checksum is valid, so rig the tag and re-frame.
                let (kind, payload) = unframe(&bytes).expect("valid frame");
                assert_eq!(kind, PAYLOAD_QUANT_MLP, "case {case}");
                let mut rigged = payload.to_vec();
                // Layout: u32 layer count, then the first layer's tag byte.
                assert_eq!(rigged[4], QUANT_LAYER_TAG_INT8, "case {case}");
                rigged[4] = rng.gen_range(2u8..=u8::MAX);
                let expected = rigged[4];
                assert_eq!(
                    QuantizedMlp::from_weight_bytes(&frame(PAYLOAD_QUANT_MLP, &rigged))
                        .expect_err("unknown record tag must not decode"),
                    WeightsCodecError::UnknownRecordTag(expected),
                    "case {case}"
                );
            }
            3 => {
                // Any single flipped byte anywhere: typed error, no panic.
                let mut corrupt = bytes.clone();
                let index = rng.gen_range(0..corrupt.len());
                corrupt[index] ^= rng.gen_range(1u8..=255);
                if let Err(err) = QuantizedMlp::from_weight_bytes(&corrupt) {
                    assert!(!err.to_string().is_empty(), "case {case}");
                } else {
                    // The only flip that can still decode is one that turns
                    // the version field into another *supported* version
                    // (the CRC covers kind + payload, not the header).
                    assert_eq!(&corrupt[..4], &bytes[..4], "case {case}: flip at {index}");
                    assert_eq!(&corrupt[8..], &bytes[8..], "case {case}: flip at {index}");
                }
            }
            _ => {
                // A v1 frame (f64 Mlp payload, version field rewritten to 1
                // — the CRC covers kind + payload, not the version) still
                // decodes; versions 0 and 3 are typed rejections.
                let mlp = random_mlp(&mut rng);
                let mut old = mlp.to_weight_bytes();
                old[4..8].copy_from_slice(&1u32.to_le_bytes());
                let back = Mlp::from_weight_bytes(&old)
                    .unwrap_or_else(|e| panic!("case {case}: v1 frame rejected: {e}"));
                let input: Vec<f64> = (0..mlp.input_dim())
                    .map(|_| rng.gen_range(-3.0f64..3.0))
                    .collect();
                assert_eq!(
                    mlp.predict_one(&input).to_bits(),
                    back.predict_one(&input).to_bits(),
                    "case {case}"
                );
                for bad in [0u32, 3] {
                    let mut unsupported = old.clone();
                    unsupported[4..8].copy_from_slice(&bad.to_le_bytes());
                    assert_eq!(
                        Mlp::from_weight_bytes(&unsupported)
                            .expect_err("unknown version must not decode"),
                        WeightsCodecError::UnsupportedVersion(bad),
                        "case {case}"
                    );
                }
            }
        }
        // The header length sanity-checks above rely on this constant not
        // drifting silently.
        assert_eq!(FRAME_HEADER_LEN, 21, "frame header layout changed");
    }
}

//! Acceptance tests of the `QcfeGateway` front door: one gateway serving
//! many distinct `(benchmark, fingerprint)` environments concurrently,
//! shard reuse across requests, and warm-starting an unseen environment
//! from its nearest persisted fingerprint — asserted through
//! `EstimateResponse` provenance, per the issue's acceptance criteria.

use qcfe::core::cost_model::CostModel;
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::MscnEstimator;
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind, ExperimentContext};
use qcfe::serve::prelude::*;
use qcfe::workloads::BenchmarkKind;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

const KIND: BenchmarkKind = BenchmarkKind::Sysbench;

/// Four published environments plus enough queries to drive them all.
fn four_env_ctx() -> ExperimentContext {
    let cfg = ContextConfig {
        environments: 4,
        queries_per_env: 40,
        template_scale: 1,
        seed: 77,
        data_scale: KIND.quick_scale(),
    };
    prepare_context(KIND, &cfg)
}

fn train_mscn(ctx: &ExperimentContext) -> Arc<dyn CostModel> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, _) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        15,
        &mut rng,
    );
    Arc::new(model)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qcfe-gateway-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Publish every context environment through the gateway and register the
/// model under each serving key.
fn publish_all(gateway: &QcfeGateway, ctx: &ExperimentContext, model: &Arc<dyn CostModel>) {
    for (env, snapshot) in ctx
        .workload
        .environments
        .iter()
        .zip(ctx.snapshots_fso.iter())
    {
        gateway
            .publish_snapshot(KIND, env, snapshot.as_ref().expect("fitted"))
            .unwrap();
        gateway.register_model(
            ModelKey::new(KIND, EstimatorKind::QcfeMscn, env.fingerprint()),
            Arc::clone(model),
        );
    }
}

/// Acceptance criterion: a single `QcfeGateway` serves requests for ≥4
/// distinct `(benchmark, fingerprint)` environments concurrently — one
/// client thread per environment — with per-environment provenance and
/// exactly one shard start per fingerprint.
#[test]
fn one_gateway_serves_four_environments_concurrently() {
    let ctx = four_env_ctx();
    let model = train_mscn(&ctx);
    let dir = temp_dir("fourenv");
    let gateway = Arc::new(
        QcfeGateway::builder(&dir)
            .service_config(ServiceConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 16,
                encoding_cache_capacity: 512,
            })
            .build()
            .unwrap(),
    );
    publish_all(&gateway, &ctx, &model);

    let environments = ctx.workload.environments.clone();
    let fingerprints: std::collections::HashSet<_> =
        environments.iter().map(|e| e.fingerprint()).collect();
    assert_eq!(fingerprints.len(), 4, "4 distinct fingerprints");

    const REQUESTS_PER_CLIENT: usize = 25;
    std::thread::scope(|scope| {
        for env in &environments {
            let gateway = Arc::clone(&gateway);
            let queries = &ctx.workload.queries;
            scope.spawn(move || {
                for q in queries.iter().take(REQUESTS_PER_CLIENT) {
                    let response = gateway
                        .estimate(EstimateRequest::new(
                            KIND,
                            env.clone(),
                            q.executed.root.clone(),
                        ))
                        .unwrap();
                    assert!(response.cost_ms.is_finite() && response.cost_ms > 0.0);
                    assert_eq!(
                        response.provenance.model_key.fingerprint,
                        env.fingerprint(),
                        "routed to the right environment's shard"
                    );
                    assert_eq!(
                        response.provenance.snapshot_origin,
                        SnapshotOrigin::TrainedHere,
                        "published environments serve their own snapshot"
                    );
                }
            });
        }
    });

    let stats = gateway.stats();
    assert_eq!(stats.requests as usize, 4 * REQUESTS_PER_CLIENT);
    assert_eq!(stats.shard_starts, 4, "one shard per fingerprint");
    assert_eq!(stats.shards_resident, 4);
    assert_eq!(stats.snapshot_transfers, 0);
    for env in &environments {
        let key = ModelKey::new(KIND, EstimatorKind::QcfeMscn, env.fingerprint());
        let metrics = gateway.shard_metrics(&key).expect("shard resident");
        assert_eq!(metrics.completed as usize, REQUESTS_PER_CLIENT);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion: an unseen fingerprint warm-starts from its
/// nearest persisted neighbour, asserted via `EstimateResponse`
/// provenance; repeated requests reuse the warm shard.
#[test]
fn unseen_environment_warm_starts_from_nearest_fingerprint() {
    let ctx = four_env_ctx();
    let model = train_mscn(&ctx);
    let dir = temp_dir("warmstart");
    let gateway = QcfeGateway::builder(&dir).build().unwrap();
    publish_all(&gateway, &ctx, &model);

    // An unseen environment derived from environment 1 by a knob nudge:
    // new fingerprint, but nearest-in-knob-space to its origin.
    let origin = &ctx.workload.environments[1];
    let mut unseen = origin.clone();
    unseen.os_overhead += 0.0005;
    assert!(!ctx
        .workload
        .environments
        .iter()
        .any(|e| e.fingerprint() == unseen.fingerprint()));
    gateway.register_model(
        ModelKey::new(KIND, EstimatorKind::QcfeMscn, unseen.fingerprint()),
        Arc::clone(&model),
    );

    let plan = ctx.workload.queries[0].executed.root.clone();
    let response = gateway
        .estimate(EstimateRequest::new(KIND, unseen.clone(), plan.clone()))
        .unwrap();
    match response.provenance.snapshot_origin {
        SnapshotOrigin::Transferred { source, distance } => {
            assert_eq!(
                source,
                origin.fingerprint(),
                "the knob-nudged environment must transfer from its origin"
            );
            assert!(distance > 0.0);
            for other in ctx.workload.environments.iter() {
                if other.fingerprint() != origin.fingerprint() {
                    assert!(
                        distance < unseen.distance_to(other),
                        "source must be the *nearest* persisted fingerprint"
                    );
                }
            }
        }
        other => panic!("expected a transferred snapshot, got {other:?}"),
    }
    assert!(response.provenance.cold_start);
    assert_eq!(gateway.stats().snapshot_transfers, 1);

    // The transferred estimate equals a direct prediction under the
    // origin's snapshot: the transfer really did reuse that snapshot.
    let origin_snapshot = ctx.snapshots_fso[1].as_ref().expect("fitted");
    let direct = model.predict_plan(&plan, Some(origin_snapshot));
    assert_eq!(response.cost_ms.to_bits(), direct.to_bits());

    // Second request: same fingerprint, warm shard, no new transfer.
    let again = gateway
        .estimate(EstimateRequest::new(KIND, unseen.clone(), plan))
        .unwrap();
    assert!(!again.provenance.cold_start, "shard must be reused");
    assert!(again.provenance.snapshot_origin.is_transferred());
    let stats = gateway.stats();
    assert_eq!(stats.shard_starts, 1);
    assert_eq!(stats.snapshot_transfers, 1, "transfer happened once");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Knob-tuning scenario from the paper's introduction: the same workload
//! costs wildly different amounts under different knob configurations, and a
//! cost model that ignores the environment cannot tell them apart. The
//! feature snapshot exposes the difference.
//!
//! Run with: `cargo run --release --example knob_tuning`

use qcfe::core::collect::collect_workload;
use qcfe::core::snapshot::FeatureSnapshot;
use qcfe::db::plan::OperatorKind;
use qcfe::db::prelude::*;
use qcfe::workloads::BenchmarkKind;
use rand::SeedableRng;

fn main() {
    let kind = BenchmarkKind::Sysbench;
    let bench = kind.build(kind.quick_scale(), 11);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    // Five random knob configurations, as in Figure 1.
    let envs = DbEnvironment::sample_knob_configs(5, HardwareProfile::h1(), &mut rng);
    let workload = collect_workload(&bench, &envs, 80, 11);
    let averages = workload.average_cost_per_environment();

    println!("Average cost of the same 80-query workload under 5 knob configurations:");
    for (env, avg) in envs.iter().zip(&averages) {
        println!(
            "  {:<8} shared_buffers={:>5} MB  work_mem={:>7} kB  random_page_cost={:>4.1}  -> {:>9.3} ms/query",
            env.name,
            env.knobs.shared_buffers_mb,
            env.knobs.work_mem_kb,
            env.knobs.random_page_cost,
            avg
        );
    }
    let min = averages.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = averages.iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "  spread: {:.2}x between the cheapest and the most expensive configuration\n",
        max / min
    );

    // The per-environment feature snapshots make that spread visible to the model.
    println!("Fitted seq-scan snapshot coefficients (c0 = ms/tuple-ish slope, c1 = intercept):");
    for (i, env) in envs.iter().enumerate() {
        let execs: Vec<_> = workload
            .for_environment(i)
            .iter()
            .map(|q| q.executed.clone())
            .collect();
        let snapshot = FeatureSnapshot::fit_from_executions(&execs);
        let c = snapshot.coefficients(OperatorKind::SeqScan);
        println!("  {:<8} c0={:+.6}  c1={:+.4}", env.name, c[0], c[1]);
    }
    println!("\nDifferent environments yield visibly different coefficients — that is the feature snapshot.");
}

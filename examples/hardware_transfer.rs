//! Hardware transfer: train a QCFE(qpp) model on one machine profile (h1),
//! then move to a faster machine (h2) by recomputing only the feature
//! snapshot and fine-tuning briefly — Section V-E of the paper.
//!
//! Run with: `cargo run --release --example hardware_transfer`

use qcfe::core::collect::collect_workload;
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::{EnvSnapshots, QppNetEstimator};
use qcfe::core::pipeline::{prepare_context, ContextConfig};
use qcfe::core::snapshot::FeatureSnapshot;
use qcfe::db::prelude::*;
use qcfe::workloads::BenchmarkKind;
use rand::SeedableRng;

fn main() {
    let kind = BenchmarkKind::Sysbench;
    let ctx = prepare_context(kind, &ContextConfig::quick(kind));
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);

    println!("Training the basis QCFE(qpp) model on h1 environments...");
    let (h1_train, _) = ctx.workload.split(0.8, 1);
    let mut basis = QppNetEstimator::new(encoder.clone(), None, &mut rng);
    basis.train(&h1_train, Some(&ctx.snapshots_fso), 12, &mut rng);

    println!("Moving to hardware h2 (faster CPU, NVMe disk, more memory)...");
    let h2_env = DbEnvironment {
        name: "env-h2".into(),
        hardware: HardwareProfile::h2(),
        ..DbEnvironment::reference()
    };
    let h2 = collect_workload(&ctx.benchmark, &[h2_env], 100, 23);
    let (h2_train, h2_test) = h2.split(0.8, 2);
    let h2_snapshot: EnvSnapshots = vec![Some(FeatureSnapshot::fit_from_executions(
        &h2_train
            .queries
            .iter()
            .map(|q| q.executed.clone())
            .collect::<Vec<_>>(),
    ))];

    let zero_shot = basis.evaluate(&h2_test, Some(&h2_snapshot));
    println!(
        "Zero-shot on h2 (snapshot swapped, no fine-tuning): mean q-error {:.3}",
        zero_shot.mean_q_error
    );

    let mut transferred = basis.clone();
    transferred.train(&h2_train, Some(&h2_snapshot), 3, &mut rng);
    let after = transferred.evaluate(&h2_test, Some(&h2_snapshot));
    println!(
        "After 3 fine-tuning iterations: mean q-error {:.3}",
        after.mean_q_error
    );

    let mut direct = QppNetEstimator::new(encoder, None, &mut rng);
    direct.train(&h2_train, Some(&h2_snapshot), 12, &mut rng);
    let scratch = direct.evaluate(&h2_test, Some(&h2_snapshot));
    println!(
        "Training from scratch on h2 (12 iterations): mean q-error {:.3}",
        scratch.mean_q_error
    );
    println!("\nThe transferred model reaches comparable accuracy with a quarter of the training.");
}

//! Feature-reduction demo: compare the greedy, gradient and
//! difference-propagation strategies on a real operator-level dataset and
//! show which features each one keeps.
//!
//! Run with: `cargo run --release --example feature_reduction_demo`

use qcfe::core::collect::collect_workload;
use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::QppNetEstimator;
use qcfe::core::reduction::{reduce, ReductionMethod};
use qcfe::db::plan::OperatorKind;
use qcfe::db::prelude::*;
use qcfe::nn::{Activation, Loss, Mlp, Optimizer, TrainConfig};
use qcfe::workloads::BenchmarkKind;
use rand::SeedableRng;

fn main() {
    let kind = BenchmarkKind::Tpch;
    let bench = kind.build(kind.quick_scale(), 19);
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let envs = DbEnvironment::sample_knob_configs(2, HardwareProfile::h1(), &mut rng);
    let workload = collect_workload(&bench, &envs, 120, 19);

    let encoder = FeatureEncoder::new(&bench.catalog, true);
    let datasets = QppNetEstimator::operator_datasets(&encoder, &workload, None);
    let Some(data) = datasets.get(&OperatorKind::SeqScan) else {
        println!("no seq-scan samples collected");
        return;
    };
    println!(
        "Seq Scan operator dataset: {} samples x {} features",
        data.len(),
        data.dim()
    );

    // The learned cost model the reduction methods interrogate.
    let mut model = Mlp::new(&[data.dim(), 16, 1], Activation::Relu, &mut rng);
    let cfg = TrainConfig {
        epochs: 60,
        batch_size: 32,
        optimizer: Optimizer::adam(0.01),
        loss: Loss::LogMse,
        shuffle: true,
    };
    model.train(data, &cfg, &mut rng);

    let names = encoder.feature_names();
    for method in [
        ReductionMethod::Greedy,
        ReductionMethod::Gradient,
        ReductionMethod::DiffProp,
    ] {
        let outcome = reduce(method, &model, data, 100, &mut rng);
        println!(
            "\n{:<8} kept {:>3}/{:<3} features ({:.1}% reduced) in {:.1} ms",
            method.name(),
            outcome.kept.len(),
            outcome.original_dim,
            outcome.reduction_ratio() * 100.0,
            outcome.runtime_ms
        );
        let mut top: Vec<(usize, f64)> = outcome
            .kept
            .iter()
            .map(|&k| (k, outcome.scores[k]))
            .collect();
        top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        println!("  most important kept features:");
        for (idx, score) in top.into_iter().take(5) {
            println!("    {:<28} score {:.5}", names[idx], score);
        }
    }
}

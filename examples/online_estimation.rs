//! Online estimation walkthrough: train a QCFE(mscn) estimator, persist its
//! environment's feature snapshot, then serve concurrent estimation traffic
//! through the micro-batching service.
//!
//! ```sh
//! cargo run --release --example online_estimation
//! ```

use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::MscnEstimator;
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind};
use qcfe::serve::prelude::*;
use qcfe::workloads::{run_closed_loop, BenchmarkKind, ClosedLoopConfig};
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // 1. Offline phase: label a workload, fit snapshots, train the model.
    let kind = BenchmarkKind::Sysbench;
    println!("== offline phase: preparing {} context ==", kind.name());
    let ctx = prepare_context(kind, &ContextConfig::quick(kind));
    let env = ctx.workload.environments[0].clone();
    let snapshot = ctx.snapshots_fso[0].clone().expect("snapshot fitted");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, stats) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        30,
        &mut rng,
    );
    println!(
        "trained QCFE(mscn) in {:.2}s (final loss {:.4})",
        stats.train_time_s, stats.final_loss
    );

    // 2. Persist the snapshot under the environment's fingerprint so a
    //    restarted node (or another machine with the same configuration)
    //    reuses it without re-running the labeling queries.
    let store = SnapshotStore::open("target/snapshots").expect("store opens");
    let fingerprint = env.fingerprint();
    let path = store
        .save(kind, fingerprint, &snapshot)
        .expect("snapshot saved");
    println!(
        "persisted snapshot for env fingerprint {fingerprint} at {}",
        path.display()
    );

    // 3. Register the trained model under its serving key.
    let registry = ModelRegistry::new(8);
    let key = ModelKey::new(kind, EstimatorKind::QcfeMscn, fingerprint);
    registry.insert(key, Arc::new(model));

    // 4. Online phase: start the service and drive it with 8 closed-loop
    //    clients planning fresh template queries.
    let reloaded = store
        .load(kind, fingerprint)
        .expect("load ok")
        .expect("present");
    assert_eq!(reloaded.relative_difference(&snapshot), 0.0);
    let service = EstimationService::start(
        registry.get(&key).expect("registered"),
        Some(reloaded),
        ServiceConfig {
            workers: 2,
            queue_capacity: 128,
            max_batch: 16,
            encoding_cache_capacity: 2048,
        },
    );
    let handle = service.handle();
    let db = ctx.benchmark.build_database(env);
    let report = run_closed_loop(&ctx.benchmark, &ClosedLoopConfig::new(8, 50, 9), |query| {
        let plan = db.plan(&query).map_err(|e| e.to_string())?;
        Ok(handle.estimate(plan).map_err(|e| e.to_string())?.cost_ms)
    });

    let metrics = service.shutdown();
    println!("\n== online phase: 8 closed-loop clients x 50 requests ==");
    println!(
        "completed        {} requests ({} errors)",
        report.completed, report.errors
    );
    println!(
        "throughput       {:.0} estimates/s",
        report.throughput_qps()
    );
    println!(
        "client latency   p50 {:.3} ms   p99 {:.3} ms",
        report.latency_percentile_ms(50.0),
        report.latency_percentile_ms(99.0)
    );
    println!(
        "service          mean batch {:.2} (max {}), cache hit rate {:.1}%",
        metrics.mean_batch_size,
        metrics.max_batch_size,
        100.0 * metrics.cache_hit_rate
    );
    println!(
        "service latency  p50 {:.0} us   p95 {:.0} us   p99 {:.0} us",
        metrics.p50_latency_us, metrics.p95_latency_us, metrics.p99_latency_us
    );
}

//! Online estimation walkthrough through the serving front door: train a
//! QCFE(mscn) estimator, publish its environment through the
//! [`QcfeGateway`], serve concurrent typed requests, then watch an
//! *unseen* environment warm-start from the nearest persisted fingerprint
//! (the paper's snapshot-transfer workflow, online).
//!
//! ```sh
//! cargo run --release --example online_estimation
//! ```

use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::MscnEstimator;
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind};
use qcfe::serve::prelude::*;
use qcfe::workloads::{run_closed_loop, BenchmarkKind, ClosedLoopConfig};
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // 1. Offline phase: label a workload, fit snapshots, train the model.
    let kind = BenchmarkKind::Sysbench;
    println!("== offline phase: preparing {} context ==", kind.name());
    let ctx = prepare_context(kind, &ContextConfig::quick(kind));
    let env = ctx.workload.environments[0].clone();
    let snapshot = ctx.snapshots_fso[0].clone().expect("snapshot fitted");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, stats) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        30,
        &mut rng,
    );
    println!(
        "trained QCFE(mscn) in {:.2}s (final loss {:.4})",
        stats.train_time_s, stats.final_loss
    );

    // 2. One gateway instead of hand-wired store + registry + service:
    //    publish the environment (snapshot + knob vector) and register the
    //    trained model under its serving key.
    let gateway = QcfeGateway::builder("target/snapshots")
        .service_config(ServiceConfig {
            workers: 2,
            queue_capacity: 128,
            max_batch: 16,
            encoding_cache_capacity: 2048,
        })
        .build()
        .expect("gateway builds");
    let fingerprint = env.fingerprint();
    let path = gateway
        .publish_snapshot(kind, &env, &snapshot)
        .expect("snapshot published");
    println!(
        "published environment {fingerprint} (snapshot + knob vector) at {}",
        path.display()
    );
    let model: Arc<dyn qcfe::core::cost_model::CostModel> = Arc::new(model);
    gateway.register_model(
        ModelKey::new(kind, EstimatorKind::QcfeMscn, fingerprint),
        Arc::clone(&model),
    );

    // 3. Online phase: 8 closed-loop clients submit typed requests; the
    //    gateway routes them all to the environment's shard.
    let db = ctx.benchmark.build_database(env.clone());
    let report = run_closed_loop(&ctx.benchmark, &ClosedLoopConfig::new(8, 50, 9), |query| {
        let plan = db.plan(&query).map_err(|e| e.to_string())?;
        let request = EstimateRequest::new(kind, env.clone(), plan);
        Ok(gateway
            .estimate(request)
            .map_err(|e| e.to_string())?
            .cost_ms)
    });

    println!("\n== online phase: 8 closed-loop clients x 50 requests ==");
    println!(
        "completed        {} requests ({} errors)",
        report.completed, report.errors
    );
    println!(
        "throughput       {:.0} estimates/s",
        report.throughput_qps()
    );
    println!(
        "client latency   p50 {:.3} ms   p99 {:.3} ms",
        report.latency_percentile_ms(50.0),
        report.latency_percentile_ms(99.0)
    );
    let key = ModelKey::new(kind, EstimatorKind::QcfeMscn, fingerprint);
    if let Some(metrics) = gateway.shard_metrics(&key) {
        println!(
            "shard            mean batch {:.2} (max {}), cache hit rate {:.1}%",
            metrics.mean_batch_size,
            metrics.max_batch_size,
            100.0 * metrics.cache_hit_rate
        );
        println!(
            "shard latency    p50 {:.0} us   p95 {:.0} us   p99 {:.0} us",
            metrics.p50_latency_us, metrics.p95_latency_us, metrics.p99_latency_us
        );
    }

    // 4. Transfer: a machine with a slightly different configuration — an
    //    unseen fingerprint — asks the same gateway. Its shard warm-starts
    //    from the nearest published knob vector.
    let mut unseen = env.clone();
    unseen.os_overhead *= 1.002;
    assert_ne!(unseen.fingerprint(), fingerprint);
    gateway.register_model(
        ModelKey::new(kind, EstimatorKind::QcfeMscn, unseen.fingerprint()),
        model,
    );
    let plan = db
        .plan(&ctx.benchmark.random_query(&mut rng))
        .expect("plannable");
    let response = gateway
        .estimate(EstimateRequest::new(kind, unseen.clone(), plan))
        .expect("transferred estimate");
    println!("\n== unseen environment {} ==", unseen.fingerprint());
    match response.provenance.snapshot_origin {
        SnapshotOrigin::Transferred { source, distance } => println!(
            "warm-started from nearest fingerprint {source} (knob distance {distance:.4}); \
             estimate {:.3} ms in {} us",
            response.cost_ms, response.provenance.total_us
        ),
        other => println!("unexpected snapshot origin {other:?}"),
    }

    let stats = gateway.stats();
    println!(
        "\ngateway          {} requests, {} shards started ({} resident), {} transfers",
        stats.requests, stats.shard_starts, stats.shards_resident, stats.snapshot_transfers
    );
}

//! Online estimation walkthrough through the serving front door: train a
//! QCFE(mscn) estimator, publish its environment *and its weights* through
//! the [`QcfeGateway`], serve concurrent typed requests, watch an *unseen*
//! environment warm-start from the nearest persisted fingerprint (the
//! paper's snapshot-transfer workflow, online), **refine** that transferred
//! shard from its own observed executions until it is promoted
//! `Transferred → TrainedHere` (the full Table VII loop), then simulate a
//! process restart — the rebuilt gateway answers from the persisted `QCFW`
//! weight sidecars and the refit snapshot, bit-identically, without
//! retraining.
//!
//! ```sh
//! cargo run --release --example online_estimation
//! ```

use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::MscnEstimator;
use qcfe::core::model_codec::PersistedModel;
use qcfe::core::pipeline::{prepare_context, ContextConfig, EstimatorKind};
use qcfe::serve::prelude::*;
use qcfe::workloads::{
    run_closed_loop, run_feedback_loop, BenchmarkKind, ClosedLoopConfig, ObservedEstimate,
};
use rand::SeedableRng;
use std::sync::Arc;
use std::sync::Mutex;

fn main() {
    // The walkthrough's story starts from an empty store: the "unseen"
    // environment must warm-start by *transfer* from its nearest
    // neighbour. A previous run's refinement loop persisted that
    // environment's own refit snapshot here, which would short-circuit
    // the transfer (exact-fingerprint hit, origin TrainedHere, no
    // promotion) — so wipe the directory and make the demo re-runnable.
    let _ = std::fs::remove_dir_all("target/snapshots");

    // 1. Offline phase: label a workload, fit snapshots, train the model.
    let kind = BenchmarkKind::Sysbench;
    println!("== offline phase: preparing {} context ==", kind.name());
    let ctx = prepare_context(kind, &ContextConfig::quick(kind));
    let env = ctx.workload.environments[0].clone();
    let snapshot = ctx.snapshots_fso[0].clone().expect("snapshot fitted");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (model, stats) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        30,
        &mut rng,
    );
    println!(
        "trained QCFE(mscn) in {:.2}s (final loss {:.4})",
        stats.train_time_s, stats.final_loss
    );

    // 2. One gateway instead of hand-wired store + registry + service:
    //    publish the environment (snapshot + knob vector) and the trained
    //    model's weights (QCFW sidecar + in-memory registration) under its
    //    serving key.
    let gateway = QcfeGateway::builder("target/snapshots")
        .service_config(ServiceConfig {
            workers: 2,
            queue_capacity: 128,
            max_batch: 16,
            encoding_cache_capacity: 2048,
        })
        // Online refinement: refit a shard's snapshot once 64 observed
        // operator labels accumulate (the demo streams ~200 executions).
        .refinement(RefinementConfig {
            refit_threshold: 64,
            min_drift: 0.0,
            buffer_capacity: 4096,
        })
        .build()
        .expect("gateway builds");
    let fingerprint = env.fingerprint();
    let path = gateway
        .publish_snapshot(kind, &env, &snapshot)
        .expect("snapshot published");
    println!(
        "published environment {fingerprint} (snapshot + knob vector) at {}",
        path.display()
    );
    let key = ModelKey::new(kind, EstimatorKind::QcfeMscn, fingerprint);
    let weights_path = gateway
        .publish_model(key, PersistedModel::Mscn(model.clone()))
        .expect("weights published");
    println!(
        "published QCFE(mscn) weights ({} bytes) at {}",
        std::fs::metadata(&weights_path)
            .map(|m| m.len())
            .unwrap_or(0),
        weights_path.display()
    );
    let model: Arc<dyn qcfe::core::cost_model::CostModel> = Arc::new(model);

    // 3. Online phase: 8 closed-loop clients submit typed requests; the
    //    gateway routes them all to the environment's shard.
    let db = ctx.benchmark.build_database(env.clone());
    let report = run_closed_loop(&ctx.benchmark, &ClosedLoopConfig::new(8, 50, 9), |query| {
        let plan = db.plan(&query).map_err(|e| e.to_string())?;
        let request = EstimateRequest::new(kind, env.clone(), plan);
        Ok(gateway
            .estimate(request)
            .map_err(|e| e.to_string())?
            .cost_ms)
    });

    println!("\n== online phase: 8 closed-loop clients x 50 requests ==");
    println!(
        "completed        {} requests ({} errors)",
        report.completed, report.errors
    );
    println!(
        "throughput       {:.0} estimates/s",
        report.throughput_qps()
    );
    println!(
        "client latency   p50 {:.3} ms   p99 {:.3} ms",
        report.latency_percentile_ms(50.0),
        report.latency_percentile_ms(99.0)
    );
    if let Some(metrics) = gateway.shard_metrics(&key) {
        println!(
            "shard            mean batch {:.2} (max {}), cache hit rate {:.1}%",
            metrics.mean_batch_size,
            metrics.max_batch_size,
            100.0 * metrics.cache_hit_rate
        );
        println!(
            "shard latency    p50 {:.0} us   p95 {:.0} us   p99 {:.0} us",
            metrics.p50_latency_us, metrics.p95_latency_us, metrics.p99_latency_us
        );
    }

    // 4. Transfer: a machine with a different configuration — an unseen
    //    fingerprint — asks the same gateway. Its shard warm-starts from
    //    the nearest published knob vector. (The 15% OS-overhead gap makes
    //    the borrowed snapshot visibly wrong, which step 5 will fix.)
    let mut unseen = env.clone();
    unseen.os_overhead *= 1.15;
    assert_ne!(unseen.fingerprint(), fingerprint);
    gateway.register_model(
        ModelKey::new(kind, EstimatorKind::QcfeMscn, unseen.fingerprint()),
        model,
    );
    let plan = db
        .plan(&ctx.benchmark.random_query(&mut rng))
        .expect("plannable");
    let response = gateway
        .estimate(EstimateRequest::new(kind, unseen.clone(), plan))
        .expect("transferred estimate");
    println!("\n== unseen environment {} ==", unseen.fingerprint());
    match response.provenance.snapshot_origin {
        SnapshotOrigin::Transferred { source, distance } => println!(
            "warm-started from nearest fingerprint {source} (knob distance {distance:.4}); \
             estimate {:.3} ms in {} us",
            response.cost_ms, response.provenance.total_us
        ),
        other => println!("unexpected snapshot origin {other:?}"),
    }

    // 5. Refinement: the unseen environment executes queries of its own;
    //    each observed execution streams back through record_execution.
    //    Once enough labels accumulate the gateway refits the shard's
    //    snapshot from them, persists it, swaps it live, and promotes the
    //    provenance Transferred -> TrainedHere — the full Table VII loop.
    let unseen_env = Arc::new(unseen.clone());
    let unseen_db = ctx.benchmark.build_database(unseen.clone());
    let feedback_rng = Mutex::new(rand::rngs::StdRng::seed_from_u64(17));
    let feedback = run_feedback_loop(
        &ctx.benchmark,
        &ClosedLoopConfig::new(2, 100, 21),
        |query| {
            let executed = unseen_db
                .execute(&query, &mut *feedback_rng.lock().expect("rng"))
                .map_err(|e| e.to_string())?;
            let estimate = gateway
                .estimate(EstimateRequest::new(
                    kind,
                    Arc::clone(&unseen_env),
                    executed.root.clone(),
                ))
                .map_err(|e| e.to_string())?
                .cost_ms;
            gateway
                .record_execution(kind, &unseen_env, &executed)
                .map_err(|e| e.to_string())?;
            Ok(ObservedEstimate {
                estimate_ms: estimate,
                observed_ms: executed.total_ms,
            })
        },
    );
    let promoted = gateway
        .estimate(EstimateRequest::new(
            kind,
            Arc::clone(&unseen_env),
            unseen_db
                .plan(&ctx.benchmark.random_query(&mut rng))
                .expect("plannable"),
        ))
        .expect("refined estimate");
    let stats = gateway.stats();
    println!(
        "\n== refinement: {} observed executions streamed back ==",
        feedback.completed()
    );
    println!(
        "labels           {} operator samples, {} refits, {} promotion(s)",
        stats.labels_recorded, stats.refits, stats.promotions
    );
    println!(
        "provenance       {:?} (refined: {}) — the transfer loop is closed",
        promoted.provenance.snapshot_origin, promoted.provenance.refined
    );
    assert_eq!(
        promoted.provenance.snapshot_origin,
        SnapshotOrigin::TrainedHere,
        "streamed labels must promote the transferred shard"
    );
    assert!(promoted.provenance.refined);
    assert!(stats.refits >= 1 && stats.promotions == 1);

    println!(
        "\ngateway          {} requests, {} shards started ({} resident), {} transfers",
        stats.requests, stats.shard_starts, stats.shards_resident, stats.snapshot_transfers
    );

    // 6. Restart: drop the gateway (process exit) and rebuild it on the
    //    same store directory with nothing registered. The QCFW weight
    //    sidecar brings the model back — same bits, no retraining.
    let reference_plan = db
        .plan(&ctx.benchmark.random_query(&mut rng))
        .expect("plannable");
    let before_restart = gateway
        .estimate(EstimateRequest::new(
            kind,
            env.clone(),
            reference_plan.clone(),
        ))
        .expect("pre-restart estimate");
    drop(gateway);

    let restarted = QcfeGateway::builder("target/snapshots")
        .build()
        .expect("gateway rebuilds");
    let after_restart = restarted
        .estimate(EstimateRequest::new(kind, env.clone(), reference_plan))
        .expect("post-restart estimate");
    println!("\n== restart: same store directory, empty registry ==");
    println!(
        "pre-restart      {:.6} ms   post-restart {:.6} ms   bit-identical: {}",
        before_restart.cost_ms,
        after_restart.cost_ms,
        before_restart.cost_ms.to_bits() == after_restart.cost_ms.to_bits()
    );
    println!(
        "provenance       {:?} (cold start: {}, {} model loads, zero retrains)",
        after_restart.provenance.snapshot_origin,
        after_restart.provenance.cold_start,
        restarted.stats().model_loads
    );
    assert!(
        after_restart.provenance.snapshot_origin.is_from_disk(),
        "restart must serve from persisted weights"
    );
    assert_eq!(
        before_restart.cost_ms.to_bits(),
        after_restart.cost_ms.to_bits(),
        "persisted weights must reproduce the estimate bit-for-bit"
    );
}

//! Quickstart: build a small benchmark, collect labeled queries under a few
//! knob configurations, and compare QCFE(mscn) against plain MSCN and the
//! PostgreSQL baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use qcfe::core::pipeline::{prepare_context, run_method, ContextConfig, EstimatorKind, RunConfig};
use qcfe::workloads::BenchmarkKind;

fn main() {
    let kind = BenchmarkKind::Sysbench;
    println!(
        "Preparing {} context (data, environments, labels, snapshots)...",
        kind.name()
    );
    let ctx = prepare_context(kind, &ContextConfig::quick(kind));
    println!(
        "Collected {} labeled queries under {} environments.",
        ctx.workload.len(),
        ctx.workload.environments.len()
    );
    println!(
        "Snapshot collection cost: original workload {:.1} ms vs simplified templates {:.1} ms (simulated).",
        ctx.fso_collection_ms, ctx.fst_collection_ms
    );

    let run = RunConfig::new(150, 25, 42);
    for est in [
        EstimatorKind::Pgsql,
        EstimatorKind::Mscn,
        EstimatorKind::QcfeMscn,
    ] {
        let result = run_method(&ctx, est, &run);
        println!(
            "{:<12} pearson {:>6.3}  mean q-error {:>10.3}  train {:>6.2}s",
            est.name(),
            result.accuracy.pearson,
            result.accuracy.mean_q_error,
            result.train.train_time_s
        );
    }
    println!(
        "\nQCFE should match or beat plain MSCN while the PostgreSQL baseline trails far behind."
    );
}

//! TPC-H cost estimation end to end: generate the benchmark, run a query
//! through the planner and the execution simulator, inspect the EXPLAIN
//! output, then train a QCFE(qpp) estimator and predict latencies for fresh
//! queries.
//!
//! Run with: `cargo run --release --example tpch_cost_estimation`

use qcfe::core::encoding::FeatureEncoder;
use qcfe::core::estimators::QppNetEstimator;
use qcfe::core::pipeline::{prepare_context, ContextConfig};
use qcfe::db::prelude::*;
use qcfe::workloads::BenchmarkKind;
use rand::SeedableRng;

fn main() {
    let kind = BenchmarkKind::Tpch;
    let bench = kind.build(kind.quick_scale(), 7);
    let db = bench.build_database(DbEnvironment::reference());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // Show one query and its simulated execution.
    let query = bench.templates[2].instantiate(&mut rng); // Q3: shipping priority
    println!("SQL: {}\n", query.to_sql());
    let executed = db.execute(&query, &mut rng).expect("query runs");
    println!("Simulated EXPLAIN ANALYZE:\n{}", executed.root.explain());
    println!("Total simulated latency: {:.3} ms\n", executed.total_ms);

    // Train a QCFE(qpp) estimator on labeled data from several environments.
    println!("Collecting labels and training QCFE(qpp)...");
    let ctx = prepare_context(kind, &ContextConfig::quick(kind));
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (train, test) = ctx.workload.split(0.8, 1);
    let mut model = QppNetEstimator::new(encoder, None, &mut rng);
    model.train(&train, Some(&ctx.snapshots_fso), 10, &mut rng);
    let report = model.evaluate(&test, Some(&ctx.snapshots_fso));
    println!(
        "Held-out accuracy: pearson {:.3}, mean q-error {:.3} over {} queries",
        report.pearson, report.mean_q_error, report.samples
    );

    // Predict a brand-new query.
    let fresh = bench.templates[5].instantiate(&mut rng); // Q6: forecast revenue
    let plan = db.plan(&fresh).expect("plans");
    let predicted = model.predict(&plan, ctx.snapshots_fso[0].as_ref());
    let actual = db.execute(&fresh, &mut rng).expect("runs").total_ms;
    println!(
        "\nFresh query {}\n  predicted {:.3} ms vs simulated actual {:.3} ms",
        fresh.to_sql(),
        predicted,
        actual
    );
}
